//! Cross-crate integration tests of hot snapshot swapping: a `QueryService`
//! must survive full reloads and per-shard rebuilds under sustained
//! concurrent load with **zero dropped or errored queries**, every returned
//! page byte-identical to a single-threaded run against *some* published
//! generation, and coalesced requesters never crossing generations.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use soda::prelude::*;
use soda::warehouse::minibank;
use soda_core::SodaError;

/// Distinct lookup-layer partitions so per-shard rebuilds are meaningful.
const SHARDS: usize = 4;
/// Published generations beyond the boot snapshot.
const GENERATIONS: usize = 6;

fn admin(service: &QueryService) -> TenantAdmin<'_> {
    service
        .admin(TenantId::default())
        .expect("the default tenant always exists")
}

fn config() -> SodaConfig {
    SodaConfig {
        shards: SHARDS,
        ..SodaConfig::default()
    }
}

/// The database of generation `g`: the seeded mini-bank plus exactly one
/// extra address whose city embeds the generation number.  Each generation
/// derives from the *base*, so any two generations differ only in the
/// `addresses` table, and the marker query below gets a different — single,
/// distinct — matching cell value per generation.
fn generation_db(base: &Database, g: usize) -> Database {
    let mut db = base.clone();
    db.insert(
        "addresses",
        vec![
            Value::Int(900 + g as i64),
            Value::Int(1),
            Value::from("Swap Lane 1"),
            Value::from(format!("Reloadville Gen{g}")),
            Value::from("Switzerland"),
        ],
    )
    .expect("generation row inserts");
    db
}

/// The query whose answer identifies the generation that served it.
const MARKER_QUERY: &str = "Reloadville";
/// A query whose answer is generation-invariant (its tables never change).
const STABLE_QUERY: &str = "Sara Guttinger";

fn snapshot_over(db: Database, graph: &MetaGraph) -> EngineSnapshot {
    EngineSnapshot::build(Arc::new(db), Arc::new(graph.clone()), config())
}

/// Single-threaded reference pages, one per generation (index 0 = boot).
fn expected_pages(base: &Database, graph: &MetaGraph) -> Vec<ResultPage> {
    (0..=GENERATIONS)
        .map(|g| {
            let db = if g == 0 {
                base.clone()
            } else {
                generation_db(base, g)
            };
            snapshot_over(db, graph)
                .search_paged(MARKER_QUERY, 0, 10)
                .expect("reference query runs")
        })
        .collect()
}

/// N client threads hammer `submit` while a writer publishes generation
/// after generation — alternating full reloads and per-shard rebuilds.
/// Every page served must be byte-identical to the single-threaded answer
/// of *some* published generation; nothing may error or drop.
#[test]
fn concurrent_reloads_never_drop_or_corrupt_a_query() {
    let w = minibank::build(42);
    let expected = expected_pages(&w.database, &w.graph);
    // Sanity: the marker pages identify their generation unambiguously.
    for (i, a) in expected.iter().enumerate() {
        for b in expected.iter().skip(i + 1) {
            assert_ne!(a, b, "marker pages must differ between generations");
        }
    }
    let stable_expected = snapshot_over(w.database.clone(), &w.graph)
        .search_paged(STABLE_QUERY, 0, 10)
        .expect("stable query runs");

    let service = QueryService::start(
        Arc::new(snapshot_over(w.database.clone(), &w.graph)),
        ServiceConfig {
            workers: 4,
            queue_capacity: 32,
            cache_capacity: 64,
            ..ServiceConfig::default()
        },
    );

    let writer_done = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    std::thread::scope(|scope| {
        let service = &service;
        let expected = &expected;
        let stable_expected = &stable_expected;
        let writer_done = &writer_done;
        let served = &served;

        // The writer: publish every generation, alternating the full-swap
        // and the per-shard path, while the clients below keep submitting.
        scope.spawn(move || {
            for g in 1..=GENERATIONS {
                let db = generation_db(&w.database, g);
                let generation = if g % 2 == 0 {
                    admin(service).reload(snapshot_over(db, &w.graph))
                } else {
                    admin(service).rebuild_shards(Arc::new(db), &["addresses".to_string()])
                };
                assert_eq!(generation, g as u64);
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            writer_done.store(true, Ordering::Release);
        });

        for _ in 0..6 {
            scope.spawn(move || {
                // Keep querying until the writer finishes, then once more so
                // every thread provably observes the final generation path.
                loop {
                    let done = writer_done.load(Ordering::Acquire);
                    let marker = service
                        .query(QueryRequest::new(MARKER_QUERY))
                        .wait()
                        .expect("marker query must never error during a swap")
                        .page;
                    assert!(
                        expected.contains(&marker),
                        "page must match some published generation: {marker:?}"
                    );
                    let stable = service
                        .query(QueryRequest::new(STABLE_QUERY))
                        .wait()
                        .expect("stable query must never error during a swap")
                        .page;
                    assert_eq!(
                        &stable, stable_expected,
                        "untouched tables must answer identically in every generation"
                    );
                    served.fetch_add(2, Ordering::Relaxed);
                    if done {
                        break;
                    }
                }
            });
        }
    });

    // After the dust settles: the service serves exactly the final
    // generation, and bookkeeping is coherent.
    let final_page = service
        .query(QueryRequest::new(MARKER_QUERY))
        .wait()
        .expect("final query runs")
        .page;
    assert_eq!(final_page, expected[GENERATIONS]);
    let m = service.metrics();
    assert_eq!(m.generation, GENERATIONS as u64);
    assert_eq!(m.reloads, GENERATIONS as u64);
    assert_eq!(m.completed, served.load(Ordering::Relaxed) + 1);
    assert!(m.completed >= (GENERATIONS as u64) * 2);
    assert_eq!(m.shards.shards, SHARDS);
}

/// The coalescing map must be generation-scoped: a cold query pinned before
/// a swap may not hand its page to a requester that arrived after the swap,
/// even though both share the same normalized text.
#[test]
fn pending_cold_queries_do_not_leak_across_a_swap() {
    let w = minibank::build(42);
    let expected = expected_pages(&w.database, &w.graph);
    let service = QueryService::start(
        Arc::new(snapshot_over(w.database.clone(), &w.graph)),
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            cache_capacity: 16,
            ..ServiceConfig::default()
        },
    );

    // Occupy the single worker so both marker submissions below are still
    // pending when they land.
    let blocker = service.query(QueryRequest::new("financial instruments customers Zurich"));
    // Pinned to generation 0, queued behind the blocker.
    let old = service.query(QueryRequest::new(MARKER_QUERY));
    // Swap to generation 1 while that job is still queued…
    let generation = admin(&service).rebuild_shards(
        Arc::new(generation_db(&w.database, 1)),
        &["addresses".to_string()],
    );
    assert_eq!(generation, 1);
    // …then submit the identical text: it must NOT coalesce onto the old
    // pending job — different generation, different key.
    let new = service.query(QueryRequest::new(MARKER_QUERY));

    blocker.wait().expect("blocker serves");
    let old_page = old.wait().expect("pre-swap query serves").page;
    let new_page = new.wait().expect("post-swap query serves").page;
    assert_eq!(old_page, expected[0], "pre-swap submission serves gen 0");
    assert_eq!(new_page, expected[1], "post-swap submission serves gen 1");
    assert_ne!(old_page, new_page);

    let m = service.metrics();
    assert_eq!(
        m.coalesced, 0,
        "submissions from different generations must never coalesce"
    );
    assert_eq!(m.pipeline_executions, 3, "blocker + one run per generation");
    // Only the post-swap page is cacheable: the blocker and the pre-swap
    // marker completed under a superseded fingerprint, so their inserts are
    // skipped instead of evicting live entries.
    assert_eq!(
        m.cache.len, 1,
        "pages of superseded generations must not enter the cache: {m:?}"
    );
}

/// Within one generation, coalescing still works across a swap of *other*
/// shards: identical submissions pinned to the same generation share one
/// pipeline execution.
#[test]
fn same_generation_submissions_still_coalesce_after_swaps() {
    let w = minibank::build(42);
    let service = QueryService::start(
        Arc::new(snapshot_over(w.database.clone(), &w.graph)),
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            cache_capacity: 16,
            ..ServiceConfig::default()
        },
    );
    admin(&service).reload(snapshot_over(generation_db(&w.database, 1), &w.graph));

    let blocker = service.query(QueryRequest::new("wealthy customers"));
    let first = service.query(QueryRequest::new(MARKER_QUERY));
    let second = service.query(QueryRequest::new(MARKER_QUERY));
    blocker.wait().expect("blocker serves");
    assert_eq!(
        first.wait().expect("first serves"),
        second.wait().expect("second serves")
    );
    let m = service.metrics();
    assert_eq!(m.coalesced + m.cache.hits, 1);
    assert_eq!(m.pipeline_executions, 2);
    assert_eq!(m.generation, 1);
}

// ---------------------------------------------------------------------------
// Streaming ingestion: the reload guarantees must hold when generations are
// published by `ingest` (side logs) and background compaction instead of
// full reloads and per-shard rebuilds.
// ---------------------------------------------------------------------------

/// The ingestion marker feed of generation `g`: one appended address whose
/// city embeds the generation number plus a wholesale *replacement* of the
/// one-row `securities` table with a gen-stamped bond — appends and
/// replacements (log masking) both stay on the hot path, and the
/// replacement keeps the marker pages distinct even though the accumulated
/// address rows collapse into one `LIKE` filter.
fn marker_feed(g: usize) -> ChangeFeed {
    ChangeFeed::new()
        .append_row(
            "addresses",
            vec![
                Value::Int(900 + g as i64),
                Value::Int(1),
                Value::from("Swap Lane 1"),
                Value::from(format!("Reloadville Gen{g}")),
                Value::from("Switzerland"),
            ],
        )
        .replace(
            "securities",
            vec![vec![
                Value::Int(1),
                Value::from(format!("Reloadville Bond {g}")),
                Value::from("CH0000000042"),
            ]],
        )
}

/// Ingestion is cumulative (unlike `generation_db`, which derives each
/// generation from the base): the reference database after `g` ingests
/// carries the markers of every generation up to `g`.
fn cumulative_db(base: &Database, g: usize) -> Database {
    let mut db = base.clone();
    for i in 1..=g {
        Ingestor::new(1)
            .apply_only(&mut db, &marker_feed(i))
            .expect("marker feed applies");
    }
    db
}

/// Clients hammer `submit` while a writer ingests generation after
/// generation and a background compactor folds side logs past a tiny
/// budget.  Every served page must be byte-identical to a full-rebuild
/// reference of *some* ingested state; nothing may error or drop; the
/// compactor must actually fire.
#[test]
fn streaming_ingest_with_background_compaction_never_drops_or_corrupts() {
    let w = minibank::build(42);
    let expected: Vec<ResultPage> = (0..=GENERATIONS)
        .map(|g| {
            snapshot_over(cumulative_db(&w.database, g), &w.graph)
                .search_paged(MARKER_QUERY, 0, 10)
                .expect("reference query runs")
        })
        .collect();
    for (i, a) in expected.iter().enumerate() {
        for b in expected.iter().skip(i + 1) {
            assert_ne!(a, b, "marker pages must differ between ingest states");
        }
    }
    let stable_expected = snapshot_over(w.database.clone(), &w.graph)
        .search_paged(STABLE_QUERY, 0, 10)
        .expect("stable query runs");

    let service = QueryService::start(
        Arc::new(snapshot_over(w.database.clone(), &w.graph)),
        ServiceConfig {
            workers: 4,
            queue_capacity: 32,
            cache_capacity: 64,
            // Tiny budget + fast poll: compaction provably interleaves with
            // the ingests and the queries below.
            compaction: Some(CompactionConfig {
                policy: CompactionPolicy::eager(),
                poll_interval: Duration::from_millis(5),
            }),
            ..ServiceConfig::default()
        },
    );

    let writer_done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let service = &service;
        let expected = &expected;
        let stable_expected = &stable_expected;
        let writer_done = &writer_done;

        scope.spawn(move || {
            for g in 1..=GENERATIONS {
                admin(service)
                    .ingest(&marker_feed(g))
                    .expect("feed absorbs");
                std::thread::sleep(Duration::from_millis(5));
            }
            writer_done.store(true, Ordering::Release);
        });

        for _ in 0..6 {
            scope.spawn(move || loop {
                let done = writer_done.load(Ordering::Acquire);
                let marker = service
                    .query(QueryRequest::new(MARKER_QUERY))
                    .wait()
                    .expect("marker query must never error during ingestion")
                    .page;
                assert!(
                    expected.contains(&marker),
                    "page must match some ingested state: {marker:?}"
                );
                let stable = service
                    .query(QueryRequest::new(STABLE_QUERY))
                    .wait()
                    .expect("stable query must never error during ingestion")
                    .page;
                assert_eq!(
                    &stable, stable_expected,
                    "untouched tables must answer identically in every generation"
                );
                if done {
                    break;
                }
            });
        }
    });

    // After the dust settles: exactly the final ingested state serves.
    let final_page = service
        .query(QueryRequest::new(MARKER_QUERY))
        .wait()
        .expect("final query runs")
        .page;
    assert_eq!(final_page, expected[GENERATIONS]);
    // The compactor is still alive and may fold between any two reads, so
    // only race-free orderings are asserted: a fold counted by the *first*
    // read has certainly published its generation before the second read.
    let folds_before = service.metrics().ingest.compactions;
    let m = service.metrics();
    assert_eq!(m.ingest.ingests, GENERATIONS as u64);
    assert_eq!(m.ingest.events, 2 * GENERATIONS as u64);
    assert_eq!(m.ingest.rows, 2 * GENERATIONS as u64);
    assert!(
        m.ingest.compactions >= 1,
        "the eager budget must have forced at least one fold: {m:?}"
    );
    assert_eq!(m.reloads, 0, "no batch swap was involved");
    assert!(
        m.generation >= GENERATIONS as u64 + folds_before,
        "every ingest and every counted compaction has published a generation: {m:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleavings of appends, replacements, compactions and
    /// queries: after every step, every query served (fresh, coalesced,
    /// cached or swap-retained) is byte-identical to a snapshot fully
    /// rebuilt over a reference database that replayed the same events.
    #[test]
    fn interleaved_ingest_compact_query_is_byte_identical(
        ops in proptest::collection::vec(0usize..4, 1..7)
    ) {
        let w = minibank::build(42);
        let service = QueryService::start(
            Arc::new(snapshot_over(w.database.clone(), &w.graph)),
            ServiceConfig {
                workers: 2,
                queue_capacity: 16,
                cache_capacity: 32,
                compaction: None, // compaction is an explicit op here
                ..ServiceConfig::default()
            },
        );
        let mut reference = w.database.clone();
        let mut queries: Vec<String> =
            vec![STABLE_QUERY.to_string(), "customers Zurich".to_string()];
        for (i, &op) in ops.iter().enumerate() {
            let feed = match op {
                0 => {
                    queries.push(format!("Propville{i}"));
                    Some(ChangeFeed::new().append_row(
                        "addresses",
                        vec![
                            Value::Int(2_000 + i as i64),
                            Value::Int(1),
                            Value::from("Prop Lane 1"),
                            Value::from(format!("Propville{i}")),
                            Value::from("Switzerland"),
                        ],
                    ))
                }
                1 => {
                    let mut row = reference.table("individuals").unwrap().rows()[0].clone();
                    row[0] = Value::Int(20_000 + i as i64);
                    row[1] = Value::from(format!("Streamer{i}"));
                    queries.push(format!("Streamer{i}"));
                    Some(ChangeFeed::new().append_row("individuals", row))
                }
                2 => {
                    queries.push(format!("Goldbond{i}"));
                    Some(ChangeFeed::new().replace(
                        "securities",
                        vec![vec![
                            Value::Int(1),
                            Value::from(format!("Goldbond{i}")),
                            Value::from("CH0000000077"),
                        ]],
                    ))
                }
                _ => None, // compact
            };
            match feed {
                Some(feed) => {
                    admin(&service).ingest(&feed).expect("feed absorbs");
                    Ingestor::new(1)
                        .apply_only(&mut reference, &feed)
                        .expect("reference replays");
                }
                None => {
                    let _ = admin(&service).compact(&(0..SHARDS).collect::<Vec<_>>());
                }
            }
            let rebuilt = snapshot_over(reference.clone(), &w.graph);
            for query in &queries {
                let served = service
                    .query(QueryRequest::new(query.clone()))
                    .wait()
                    .expect("query serves").page;
                let direct = rebuilt
                    .search_paged(query, 0, 10)
                    .expect("reference query runs");
                prop_assert_eq!(
                    &served, &direct,
                    "'{}' diverged from the full-rebuild reference after op {} ({})",
                    query, i, op
                );
            }
            // The copy-on-write database behind the served snapshot holds
            // exactly the deep-clone reference's rows, table by table —
            // structural sharing never changes content.
            let live = service.engine();
            for name in reference.table_names() {
                prop_assert_eq!(
                    live.database().table(name).unwrap().rows().to_vec(),
                    reference.table(name).unwrap().rows().to_vec(),
                    "table '{}' diverged from the reference after op {} ({})",
                    name, i, op
                );
            }
        }
        // The tracked queries exercised the retention path: repeats of the
        // stable query across data-only swaps are served without
        // recomputation whenever provably safe — and the asserts above
        // guarantee those retained pages were still byte-correct.
        prop_assert!(service.metrics().completed >= (queries.len() as u64));
    }
}

/// Parse errors still resolve synchronously mid-swap, and a reload with an
/// *identical* warehouse changes no answers — only the generation.
#[test]
fn reload_with_identical_data_is_answer_invariant() {
    let w = minibank::build(42);
    let service = QueryService::start(
        Arc::new(snapshot_over(w.database.clone(), &w.graph)),
        ServiceConfig::default(),
    );
    let before = service
        .query(QueryRequest::new(STABLE_QUERY))
        .wait()
        .expect("serves");
    admin(&service).reload(snapshot_over(w.database.clone(), &w.graph));
    match service.query(QueryRequest::new("   ")).wait() {
        Err(e) => assert!(e.to_string().contains("engine error")),
        Ok(_) => panic!("blank query must fail"),
    }
    let after = service
        .query(QueryRequest::new(STABLE_QUERY))
        .wait()
        .expect("serves");
    assert_eq!(before, after);
    assert_eq!(service.metrics().generation, 1);
    // The blank query surfaced the engine's EmptyQuery — proving errors
    // flow through unchanged across generations.
    let direct = service.engine().search_paged("   ", 0, 10);
    assert!(matches!(direct, Err(SodaError::EmptyQuery)));
}
