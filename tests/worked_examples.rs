//! Cross-crate integration test: the four worked SODA-vs-SQL examples of
//! §4.4 of the paper (Query 1–4), executed on the mini-bank running example.
//!
//! The paper lists, for each example, the SODA input and the SQL a human
//! expert would write.  These tests check that the engine's best-ranked
//! statement is *equivalent* to the expert SQL — same result tuples when
//! projected onto the expert query's output columns — rather than comparing
//! SQL text, because the engine is free to order joins differently.

use std::collections::BTreeSet;

use soda::core::{SodaConfig, SodaEngine};
use soda::relation::{ResultSet, Value};
use soda::warehouse::minibank;
use soda::warehouse::Warehouse;

fn warehouse() -> Warehouse {
    minibank::build(42)
}

fn engine(warehouse: &Warehouse) -> SodaEngine<'_> {
    SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default())
}

/// Projects a result set onto the named columns (matched case-insensitively by
/// suffix, so `individuals.firstname` matches a gold column `firstname`) and
/// returns the rows as a set of printable tuples.
fn project(rs: &ResultSet, columns: &[&str]) -> BTreeSet<Vec<String>> {
    let indexes: Vec<usize> = columns
        .iter()
        .map(|wanted| {
            rs.columns()
                .iter()
                .position(|c| {
                    let c = c.to_ascii_lowercase();
                    let wanted = wanted.to_ascii_lowercase();
                    c == wanted || c.ends_with(&format!(".{wanted}"))
                })
                .unwrap_or_else(|| panic!("column {wanted} not in result {:?}", rs.columns()))
        })
        .collect();
    rs.rows()
        .iter()
        .map(|row| indexes.iter().map(|&i| format!("{}", row[i])).collect())
        .collect()
}

/// Runs a SODA query and an expert SQL statement and asserts that the
/// best-ranked SODA result covers exactly the expert's tuples on the expert's
/// output columns.  Returns the best result's SQL for further inspection.
fn assert_equivalent(
    warehouse: &Warehouse,
    engine: &SodaEngine<'_>,
    soda_input: &str,
    expert_sql: &str,
    compare_columns: &[&str],
) -> String {
    let expert = warehouse
        .database
        .run_sql(expert_sql)
        .unwrap_or_else(|e| panic!("expert SQL failed: {e}\n{expert_sql}"));
    let results = engine.search(soda_input).expect("SODA search failed");
    assert!(
        !results.is_empty(),
        "no results for SODA input '{soda_input}'"
    );
    // The best-ranked interpretation that covers the expert tuples must be
    // among the top results; the paper's UI shows the full first result page.
    let mut best_match: Option<(usize, String)> = None;
    for (i, result) in results.iter().enumerate() {
        let rs = engine.execute(result).expect("generated SQL must execute");
        if rs.row_count() == 0 {
            continue;
        }
        let produced = project(&rs, compare_columns);
        let gold = project(&expert, compare_columns);
        if produced == gold {
            best_match = Some((i, result.sql.clone()));
            break;
        }
    }
    let (rank, sql) = best_match.unwrap_or_else(|| {
        panic!(
            "no SODA result for '{soda_input}' is equivalent to the expert SQL;\n\
             produced: {:#?}",
            results.iter().map(|r| &r.sql).collect::<Vec<_>>()
        )
    });
    assert!(
        rank < 3,
        "the equivalent statement for '{soda_input}' is ranked too low ({rank})"
    );
    sql
}

/// Query 1 (§4.4.1): "Sara Guttinger" — the keyword pattern example.
///
/// Expert SQL: SELECT * FROM parties, individuals WHERE parties.id =
/// individuals.id AND firstName = 'Sara' AND lastName = 'Guttinger'.
#[test]
fn query1_keyword_pattern_sara_guttinger() {
    let w = warehouse();
    let e = engine(&w);
    let sql = assert_equivalent(
        &w,
        &e,
        "Sara Guttinger",
        "SELECT individuals.id, individuals.firstname, individuals.lastname \
         FROM parties, individuals \
         WHERE parties.id = individuals.id \
         AND individuals.firstname = 'Sara' AND individuals.lastname = 'Guttinger'",
        &["id", "firstname", "lastname"],
    );
    // The generated statement must filter on both name parts, not just one.
    let lower = sql.to_ascii_lowercase();
    assert!(lower.contains("sara"), "missing first-name filter: {sql}");
    assert!(
        lower.contains("guttinger"),
        "missing last-name filter: {sql}"
    );
}

/// Query 2 (§4.4.1): comparison operators and `date()` values.
///
/// Expert SQL: SELECT * FROM persons WHERE salary >= x AND birthday = d.  The
/// mini-bank stores persons in `individuals`; the salary threshold is chosen
/// low enough to keep the result non-trivial.
#[test]
fn query2_input_pattern_salary_and_birthday() {
    let w = warehouse();
    let e = engine(&w);

    // Pick an existing individual so the equality on the birthday matches.
    let probe = w
        .database
        .run_sql("SELECT individuals.birthday FROM individuals WHERE individuals.salary >= 500000")
        .unwrap();
    assert!(
        probe.row_count() > 0,
        "test data must contain wealthy individuals"
    );
    let birthday = format!("{}", probe.rows()[0][0]);

    let soda_input = format!("salary >= 500000 and birthday = date({birthday})");
    let expert_sql = format!(
        "SELECT individuals.id, individuals.salary, individuals.birthday FROM individuals \
         WHERE individuals.salary >= 500000 AND individuals.birthday = '{birthday}'"
    );
    assert_equivalent(
        &w,
        &e,
        &soda_input,
        &expert_sql,
        &["id", "salary", "birthday"],
    );
}

/// Query 3 (§4.4.2): "sum (amount) group by (transaction date)".
///
/// Expert SQL: SELECT sum(amount), transactiondate FROM fi_transactions GROUP
/// BY transactiondate — except that in the mini-bank's logical schema the
/// transaction date lives on the `transactions` super-type, so the expert
/// query joins the two, which is exactly the multi-table-join burden the paper
/// says SODA takes off the analyst.
#[test]
fn query3_aggregation_sum_amount_by_transaction_date() {
    let w = warehouse();
    let e = engine(&w);
    let results = e
        .search("sum (amount) group by (transaction date)")
        .expect("aggregation query must parse");
    assert!(!results.is_empty());

    let expert = w
        .database
        .run_sql(
            "SELECT transactions.transactiondate, sum(fi_transactions.amount) \
             FROM transactions, fi_transactions \
             WHERE transactions.id = fi_transactions.id \
             GROUP BY transactions.transactiondate",
        )
        .unwrap();

    // The best result whose grouping matches the expert aggregate must exist:
    // same number of groups and same total sum.
    let expert_groups = expert.row_count();
    let expert_total: f64 = expert
        .rows()
        .iter()
        .map(|row| match &row[1] {
            Value::Float(f) => *f,
            Value::Int(i) => *i as f64,
            _ => 0.0,
        })
        .sum();
    let mut matched = false;
    for result in &results {
        let lower = result.sql.to_ascii_lowercase();
        if !lower.contains("sum(") || !lower.contains("group by") {
            continue;
        }
        let rs = e.execute(result).expect("generated SQL must execute");
        if rs.row_count() != expert_groups {
            continue;
        }
        let total: f64 = rs
            .rows()
            .iter()
            .flat_map(|row| row.iter())
            .filter_map(|v| match v {
                Value::Float(f) => Some(*f),
                _ => None,
            })
            .sum();
        if (total - expert_total).abs() < 1e-6 {
            matched = true;
            break;
        }
    }
    assert!(
        matched,
        "no generated aggregate matches the expert grouping; produced: {:#?}",
        results.iter().map(|r| &r.sql).collect::<Vec<_>>()
    );
}

/// Query 4 (§4.4.2): "count (transactions) group by (company name)" — the
/// organizations-ranked-by-trading-volume example with an automatic
/// multi-table join.
#[test]
fn query4_count_transactions_by_company_name() {
    let w = warehouse();
    let e = engine(&w);
    let results = e
        .search("count (transactions) group by (company name)")
        .expect("aggregation query must parse");
    assert!(!results.is_empty());

    let expert = w
        .database
        .run_sql(
            "SELECT organizations.companyname, count(transactions.id) \
             FROM transactions, organizations \
             WHERE transactions.toparty = organizations.id \
             GROUP BY organizations.companyname",
        )
        .unwrap();
    let expert_groups = project(&expert, &["companyname"]);

    let mut matched = false;
    for result in &results {
        let lower = result.sql.to_ascii_lowercase();
        if !lower.contains("count(") || !lower.contains("companyname") {
            continue;
        }
        let rs = e.execute(result).expect("generated SQL must execute");
        if rs.row_count() == 0 {
            continue;
        }
        let produced_groups = project(&rs, &["companyname"]);
        if produced_groups == expert_groups {
            matched = true;
            // The statement must join transactions to organizations rather
            // than cross-producting them.
            assert!(
                lower.contains("toparty"),
                "missing join on toparty: {}",
                result.sql
            );
            break;
        }
    }
    assert!(
        matched,
        "no generated aggregate groups by the company names; produced: {:#?}",
        results.iter().map(|r| &r.sql).collect::<Vec<_>>()
    );
}

/// The metadata-defined business term of the introduction: "wealthy customers"
/// must translate into the salary filter stored in the domain ontology.
#[test]
fn metadata_defined_filter_wealthy_customers() {
    let w = warehouse();
    let e = engine(&w);
    let results = e.search("wealthy customers").expect("search failed");
    assert!(!results.is_empty());
    let top = &results[0];
    let lower = top.sql.to_ascii_lowercase();
    assert!(
        lower.contains("salary >= 500000"),
        "expected the metadata-defined salary filter, got: {}",
        top.sql
    );
    let rs = e.execute(top).unwrap();
    let expert = w
        .database
        .run_sql("SELECT individuals.id FROM individuals WHERE individuals.salary >= 500000")
        .unwrap();
    assert_eq!(project(&rs, &["id"]), project(&expert, &["id"]));
}

/// The introduction's third example query: "What is the address of Sara
/// Guttinger?" — keywords spanning base data and the addresses table.
#[test]
fn address_of_sara_guttinger() {
    let w = warehouse();
    let e = engine(&w);
    let results = e.search("addresses Sara Guttinger").expect("search failed");
    assert!(!results.is_empty());
    // At least one result must join through to the addresses table and return
    // Sara's Zurich address.
    let mut found_zurich = false;
    for result in &results {
        if !result.tables.iter().any(|t| t == "addresses") {
            continue;
        }
        let rs = e.execute(result).unwrap();
        if rs
            .rows()
            .iter()
            .any(|row| row.iter().any(|v| format!("{v}") == "Zurich"))
        {
            found_zurich = true;
            break;
        }
    }
    assert!(
        found_zurich,
        "no result returned Sara Guttinger's Zurich address"
    );
}
