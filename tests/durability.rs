//! Cross-crate fault-injection tests of the durable-restart layer: a
//! crashed `QueryService` must recover from its write-ahead feed journal
//! into **byte-identical answers** — torn tails truncated, corrupt frames
//! dropped, checkpoints applied — and a gracefully drained one must answer
//! its first repeated queries from the persisted warm cache.

use std::fs;
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use soda::journal::frame::write_frame_file;
use soda::journal::journal_path;
use soda::prelude::*;
use soda_service::ServiceError;

/// A unique scratch directory removed on drop (`std`-only — the workspace
/// has no tempfile crate).
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(label: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "soda-durability-{label}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("creating temp dir");
        Self { path }
    }

    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

fn minibank_parts() -> (Arc<Database>, Arc<MetaGraph>) {
    let w = soda::warehouse::minibank::build(42);
    (Arc::new(w.database), Arc::new(w.graph))
}

fn address_feed(id: i64, city: &str) -> ChangeFeed {
    ChangeFeed::new().append_row(
        "addresses",
        vec![
            Value::Int(id),
            Value::Int(1),
            Value::from("Journal Lane 1"),
            Value::from(city),
            Value::from("Switzerland"),
        ],
    )
}

fn recover_at(dir: &Path) -> (QueryService, RecoveryReport) {
    let (db, graph) = minibank_parts();
    QueryService::recover(
        db,
        graph,
        SodaConfig::default(),
        ServiceConfig::default(),
        DurabilityConfig::new(dir),
    )
    .expect("recovery must succeed")
}

fn page_for(service: &QueryService, query: &str) -> ResultPage {
    service
        .query(QueryRequest::new(query))
        .wait()
        .expect("query must succeed")
        .page
}

fn admin(service: &QueryService) -> TenantAdmin<'_> {
    service
        .admin(TenantId::default())
        .expect("the default tenant always exists")
}

#[test]
fn first_boot_creates_an_empty_journal_and_serves() {
    let dir = TempDir::new("first-boot");
    let (service, report) = recover_at(dir.path());
    assert!(report.journal_created);
    assert!(!report.checkpoint_applied);
    assert_eq!(report.replayed_feeds, 0);
    assert_eq!(report.truncated_bytes, 0);
    assert!(journal_path(dir.path()).exists());

    assert!(!page_for(&service, "Sara Guttinger").results.is_empty());
    let m = service.metrics();
    assert!(m.durability.enabled);
    assert_eq!(m.durability.journal_appends, 0);
    assert!(m.durability.journal_bytes > 0, "the header is on disk");
}

/// The acceptance scenario: kill a service after N ingested feeds — with a
/// mid-frame torn tail on top — and recovery must replay the journal into a
/// service whose every page is byte-identical to one that never crashed.
#[test]
fn crash_after_ingests_recovers_byte_identical_pages() {
    const FEEDS: usize = 5;
    let live_dir = TempDir::new("crash-live");
    let crash_dir = TempDir::new("crash-image");
    let queries = ["Sara Guttinger", "City0", "City3", "wealthy customers"];

    let (before, generation) = {
        let (service, _) = recover_at(live_dir.path());
        for i in 0..FEEDS {
            admin(&service)
                .ingest(&address_feed(900 + i as i64, &format!("City{i}")))
                .unwrap();
        }
        let pages: Vec<ResultPage> = queries.iter().map(|q| page_for(&service, q)).collect();
        assert!(!pages[1].results.is_empty(), "the ingested rows must serve");

        // Crash image: the journal is copied while the service is still
        // running (fsync=Always keeps it current), so the graceful-drain
        // cache persist below never reaches this copy — exactly the state a
        // kill -9 leaves behind.
        fs::copy(
            journal_path(live_dir.path()),
            journal_path(crash_dir.path()),
        )
        .unwrap();
        (pages, service.generation())
    };

    // The kill additionally lands mid-append: a frame header announcing 64
    // payload bytes with only 3 behind it.
    let torn = {
        let mut torn = Vec::new();
        torn.extend_from_slice(&64u32.to_le_bytes());
        torn.extend_from_slice(&0u32.to_le_bytes());
        torn.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        let mut file = OpenOptions::new()
            .append(true)
            .open(journal_path(crash_dir.path()))
            .unwrap();
        file.write_all(&torn).unwrap();
        torn.len() as u64
    };

    let (recovered, report) = recover_at(crash_dir.path());
    assert!(!report.journal_created);
    assert_eq!(report.replayed_feeds, FEEDS as u64);
    assert_eq!(report.rejected_feeds, 0);
    assert_eq!(report.truncated_bytes, torn);
    assert_eq!(report.cache_pages_restored, 0, "a crash persists no cache");
    assert_eq!(
        recovered.generation(),
        generation,
        "replay must reproduce the generation sequence"
    );

    // A reference service that never crashed: same base, same feeds.
    let (db, graph) = minibank_parts();
    let reference = QueryService::start(
        Arc::new(EngineSnapshot::build(db, graph, SodaConfig::default())),
        ServiceConfig::default(),
    );
    for i in 0..FEEDS {
        admin(&reference)
            .ingest(&address_feed(900 + i as i64, &format!("City{i}")))
            .unwrap();
    }

    for (query, before) in queries.iter().zip(&before) {
        let after = page_for(&recovered, query);
        assert_eq!(&after, before, "pre-crash page for '{query}' must match");
        assert_eq!(
            after,
            page_for(&reference, query),
            "never-crashed page for '{query}' must match"
        );
    }
    let m = recovered.metrics();
    assert_eq!(m.durability.replayed_feeds, FEEDS as u64);
    assert_eq!(m.durability.truncated_bytes, torn);
}

/// A flipped byte fails the frame checksum: the corrupt record and
/// everything behind it are dropped, the intact prefix replays.
#[test]
fn corrupt_tail_is_dropped_and_the_prefix_replays() {
    const FEEDS: usize = 4;
    let live_dir = TempDir::new("corrupt-live");
    let crash_dir = TempDir::new("corrupt-image");
    {
        let (service, _) = recover_at(live_dir.path());
        for i in 0..FEEDS {
            admin(&service)
                .ingest(&address_feed(900 + i as i64, &format!("City{i}")))
                .unwrap();
        }
        fs::copy(
            journal_path(live_dir.path()),
            journal_path(crash_dir.path()),
        )
        .unwrap();
    }
    let path = journal_path(crash_dir.path());
    let mut bytes = fs::read(&path).unwrap();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    fs::write(&path, &bytes).unwrap();

    let (recovered, report) = recover_at(crash_dir.path());
    assert_eq!(
        report.replayed_feeds,
        FEEDS as u64 - 1,
        "exactly the corrupted last feed is lost"
    );
    assert!(report.truncated_bytes > 0);
    assert!(!page_for(&recovered, "City0").results.is_empty());
    assert!(
        page_for(&recovered, &format!("City{}", FEEDS - 1))
            .results
            .is_empty(),
        "the corrupted feed's rows must not serve"
    );
}

/// Graceful drain → recover: the persisted warm pages answer the first
/// repeated queries without touching the pipeline.
#[test]
fn graceful_drain_restores_the_warm_cache() {
    let dir = TempDir::new("warm-cache");
    let queries = ["Sara Guttinger", "Streamville"];
    let before: Vec<ResultPage> = {
        let (service, _) = recover_at(dir.path());
        admin(&service)
            .ingest(&address_feed(900, "Streamville"))
            .unwrap();
        queries.iter().map(|q| page_for(&service, q)).collect()
        // Drop = graceful drain: the cache is serialized to pages.cache.
    };
    assert!(dir.path().join("pages.cache").exists());

    let (recovered, report) = recover_at(dir.path());
    assert_eq!(report.cache_pages_restored, queries.len() as u64);
    assert_eq!(report.cache_pages_stale, 0);
    assert_eq!(report.replayed_feeds, 1);

    for (query, before) in queries.iter().zip(&before) {
        assert_eq!(&page_for(&recovered, query), before);
    }
    let m = recovered.metrics();
    assert_eq!(
        m.cache.hits,
        queries.len() as u64,
        "every repeat must be a warm hit"
    );
    assert_eq!(m.pipeline_executions, 0, "no pipeline ran after recovery");
    assert_eq!(m.durability.cache_pages_restored, queries.len() as u64);
}

/// Compaction writes a checkpoint that truncates the journal; recovery then
/// applies the checkpoint instead of replaying the folded feeds.
#[test]
fn checkpoints_bound_replay_and_recover_exactly() {
    let dir = TempDir::new("checkpoint");
    {
        let (service, _) = recover_at(dir.path());
        for i in 0..3 {
            admin(&service)
                .ingest(&address_feed(900 + i, &format!("City{i}")))
                .unwrap();
        }
        let shards: Vec<usize> = (0..service.engine().shard_count()).collect();
        admin(&service).compact(&shards).expect("a log to fold");
        assert_eq!(service.metrics().durability.checkpoints, 1);
        // One more feed lands *after* the checkpoint.
        admin(&service)
            .ingest(&address_feed(950, "PostCheckpoint"))
            .unwrap();
    }

    let (recovered, report) = recover_at(dir.path());
    assert!(report.checkpoint_applied);
    assert!(report.checkpoint_rows > 0);
    assert_eq!(
        report.replayed_feeds, 1,
        "only the post-checkpoint feed replays"
    );
    for city in ["City0", "City1", "City2", "PostCheckpoint"] {
        assert!(
            !page_for(&recovered, city).results.is_empty(),
            "rows for {city} must survive"
        );
    }
}

/// Recovering the same directory twice (replay idempotence) changes nothing:
/// same pages, same generation, no duplicated rows.
#[test]
fn recovery_is_idempotent() {
    let dir = TempDir::new("idempotent");
    {
        let (service, _) = recover_at(dir.path());
        admin(&service)
            .ingest(&address_feed(900, "Onceville"))
            .unwrap();
        admin(&service)
            .ingest(&address_feed(901, "Onceville"))
            .unwrap();
    }
    let (first_page, generation) = {
        let (service, report) = recover_at(dir.path());
        assert_eq!(report.replayed_feeds, 2);
        (page_for(&service, "Onceville"), service.generation())
    };
    let (service, report) = recover_at(dir.path());
    assert_eq!(report.replayed_feeds, 2);
    assert_eq!(service.generation(), generation);
    let second_page = page_for(&service, "Onceville");
    assert_eq!(first_page, second_page, "twice must equal once");
}

/// A durability directory written **before tenancy existed** — version-1
/// journal magic, 16-byte frame header with no tenant field — recovers
/// losslessly: every acknowledged ingest replays, and the journal comes out
/// upgraded to the current format.  This pins the upgrade path the header
/// change introduced; without it a pre-tenancy journal would be misparsed
/// and truncated.
#[test]
fn pre_tenancy_durability_directory_recovers_losslessly() {
    let dir = TempDir::new("pre-tenancy");
    {
        let (service, _) = recover_at(dir.path());
        admin(&service)
            .ingest(&address_feed(900, "Legacyville"))
            .unwrap();
        admin(&service)
            .ingest(&address_feed(901, "Legacyville"))
            .unwrap();
    }
    // Rewrite the journal into the exact pre-tenancy layout: version-1
    // magic, config fingerprint, frames — no tenant field (bytes 16..24
    // removed).  Frame encoding is unchanged between the versions.
    let path = journal_path(dir.path());
    let current = fs::read(&path).unwrap();
    assert_eq!(&current[..8], b"SODAJNL2");
    let mut legacy = Vec::with_capacity(current.len() - 8);
    legacy.extend_from_slice(b"SODAJNL1");
    legacy.extend_from_slice(&current[8..16]);
    legacy.extend_from_slice(&current[24..]);
    fs::write(&path, &legacy).unwrap();

    let (service, report) = recover_at(dir.path());
    assert_eq!(
        report.replayed_feeds, 2,
        "acknowledged ingests must survive"
    );
    assert_eq!(report.truncated_bytes, 0);
    assert!(!page_for(&service, "Legacyville").results.is_empty());
    drop(service);
    assert_eq!(
        &fs::read(&path).unwrap()[..8],
        b"SODAJNL2",
        "the journal is upgraded to the current format"
    );
}

/// Page-cache files that do not fit — foreign fingerprint, wrong magic, or
/// written for engine state the journal no longer reproduces — are ignored,
/// never an error.
#[test]
fn stale_or_foreign_cache_files_are_ignored_not_fatal() {
    // A cache file stamped with a foreign config fingerprint.
    let dir = TempDir::new("foreign-cache");
    write_frame_file(
        &dir.path().join("pages.cache"),
        *b"SODACSH2",
        0xDEAD_BEEF,
        TenantId::default().fingerprint(),
        &[b"not a page".as_slice()],
    )
    .unwrap();
    let (service, report) = recover_at(dir.path());
    assert_eq!(report.cache_pages_restored, 0);
    assert_eq!(report.cache_pages_stale, 1);
    assert!(!page_for(&service, "Sara Guttinger").results.is_empty());
    drop(service);

    // A cache file with the wrong magic restores nothing (and counts
    // nothing — there is no way to know what it held).
    let dir = TempDir::new("wrong-magic-cache");
    fs::write(dir.path().join("pages.cache"), b"garbage").unwrap();
    let (_service, report) = recover_at(dir.path());
    assert_eq!(report.cache_pages_restored, 0);

    // A genuinely stale file: persisted after an ingest, but the journal is
    // deleted, so recovery rebuilds generation 0 and the persisted pages'
    // fingerprints no longer match.
    let dir = TempDir::new("stale-cache");
    {
        let (service, _) = recover_at(dir.path());
        admin(&service)
            .ingest(&address_feed(900, "Staleville"))
            .unwrap();
        page_for(&service, "Staleville");
    }
    fs::remove_file(journal_path(dir.path())).unwrap();
    let (service, report) = recover_at(dir.path());
    assert_eq!(report.cache_pages_restored, 0);
    assert!(report.cache_pages_stale > 0);
    assert!(
        page_for(&service, "Staleville").results.is_empty(),
        "without the journal the ingested row is gone — and so must be the page"
    );
}

/// A journal written under a different engine configuration is a hard error:
/// silently ignoring it would discard acknowledged ingests.
#[test]
fn journal_config_mismatch_is_a_hard_error() {
    let dir = TempDir::new("config-mismatch");
    {
        let (service, _) = recover_at(dir.path());
        admin(&service)
            .ingest(&address_feed(900, "Mismatchville"))
            .unwrap();
    }
    let (db, graph) = minibank_parts();
    let err = match QueryService::recover(
        db,
        graph,
        SodaConfig {
            shards: 2,
            ..SodaConfig::default()
        },
        ServiceConfig::default(),
        DurabilityConfig::new(dir.path()),
    ) {
        Ok(_) => panic!("a foreign journal must refuse to recover"),
        Err(err) => err,
    };
    match err {
        ServiceError::Durability(msg) => {
            assert!(
                msg.contains("config fingerprint"),
                "the error must name the mismatch: {msg}"
            );
        }
        other => panic!("expected a durability error, got {other:?}"),
    }
}

/// A header-only journal (boot, no ingests, drop) and a checkpoint-only
/// journal (every feed folded away) both recover cleanly.
#[test]
fn empty_and_checkpoint_only_journals_recover() {
    // Header-only: the file exists but holds no records.
    let dir = TempDir::new("empty-journal");
    drop(recover_at(dir.path()));
    let (service, report) = recover_at(dir.path());
    assert!(!report.journal_created, "the journal already existed");
    assert!(!report.checkpoint_applied);
    assert_eq!(report.replayed_feeds, 0);
    assert!(!page_for(&service, "Sara Guttinger").results.is_empty());
    drop(service);

    // Checkpoint-only: compaction folded every feed into the checkpoint.
    let dir = TempDir::new("checkpoint-only");
    let generation = {
        let (service, _) = recover_at(dir.path());
        admin(&service)
            .ingest(&address_feed(900, "Foldville"))
            .unwrap();
        let shards: Vec<usize> = (0..service.engine().shard_count()).collect();
        admin(&service).compact(&shards).expect("a log to fold");
        service.generation()
    };
    let (service, report) = recover_at(dir.path());
    assert!(report.checkpoint_applied);
    assert_eq!(
        report.replayed_feeds, 0,
        "everything lives in the checkpoint"
    );
    assert_eq!(service.generation(), generation);
    assert!(!page_for(&service, "Foldville").results.is_empty());
}

/// An ingest on a recovered service keeps journaling: a second crash after
/// further feeds still recovers everything.
#[test]
fn recovered_services_keep_journaling() {
    let dir = TempDir::new("rejournal");
    {
        let (service, _) = recover_at(dir.path());
        admin(&service)
            .ingest(&address_feed(900, "FirstLife"))
            .unwrap();
    }
    {
        let (service, report) = recover_at(dir.path());
        assert_eq!(report.replayed_feeds, 1);
        admin(&service)
            .ingest(&address_feed(901, "SecondLife"))
            .unwrap();
        assert_eq!(service.metrics().durability.journal_appends, 1);
    }
    let (service, report) = recover_at(dir.path());
    assert_eq!(report.replayed_feeds, 2);
    for city in ["FirstLife", "SecondLife"] {
        assert!(!page_for(&service, city).results.is_empty());
    }
}
