//! Cross-crate acceptance tests of multi-tenant hosting: tenants sharing
//! one `QueryService` (one worker pool, one queue, one cache) must answer
//! **byte-identically** to dedicated single-tenant services, never share a
//! cache key, keep their warm hits instant while another tenant floods the
//! queue with cold work, and — on a durable service — recover each from
//! their own write-ahead journal.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use soda::prelude::*;
use soda::warehouse::minibank;
use soda_core::TenantId as CoreTenantId;

const QUERIES: &[&str] = &[
    "Sara Guttinger",
    "wealthy customers",
    "financial instruments customers Zurich",
    "sum (amount) group by (transaction date)",
];

/// A unique scratch directory removed on drop (`std`-only — the workspace
/// has no tempfile crate).
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(label: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "soda-tenancy-{label}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("creating temp dir");
        Self { path }
    }

    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

fn snapshot_for_seed(seed: u64) -> Arc<EngineSnapshot> {
    let w = minibank::build(seed);
    Arc::new(EngineSnapshot::build(
        Arc::new(w.database),
        Arc::new(w.graph),
        SodaConfig::default(),
    ))
}

fn page_for(service: &QueryService, tenant: &str, query: &str) -> ResultPage {
    service
        .query(QueryRequest::new(query).tenant(tenant))
        .wait()
        .expect("query serves")
        .page
}

/// Two tenants with different warehouses on ONE shared service answer every
/// query byte-identically (SQL text included) to two dedicated
/// single-tenant services over the same warehouses — hosting is invisible.
#[test]
fn hosted_tenants_match_dedicated_services_byte_for_byte() {
    let shared = QueryService::start(snapshot_for_seed(42), ServiceConfig::default());
    shared
        .add_tenant("acme", snapshot_for_seed(7))
        .expect("acme registers");

    let solo_default = QueryService::start(snapshot_for_seed(42), ServiceConfig::default());
    let solo_acme = QueryService::start(snapshot_for_seed(7), ServiceConfig::default());

    // Two passes: the second is answered from the shared cache, and must
    // still match — per-tenant keys can never cross warehouses.
    for _pass in 0..2 {
        for query in QUERIES {
            let want_default = page_for(&solo_default, "default", query);
            let want_acme = page_for(&solo_acme, "default", query);
            assert_eq!(
                page_for(&shared, "default", query),
                want_default,
                "default tenant diverged on '{query}'"
            );
            assert_eq!(
                page_for(&shared, "acme", query),
                want_acme,
                "acme diverged on '{query}'"
            );
            // The two warehouses genuinely differ, so equality above is
            // meaningful per tenant.
            let d_sql: Vec<&str> = want_default
                .results
                .iter()
                .map(|r| r.sql.as_str())
                .collect();
            let a_sql: Vec<&str> = want_acme.results.iter().map(|r| r.sql.as_str()).collect();
            assert!(!d_sql.is_empty() || !a_sql.is_empty());
        }
    }

    let m = shared.metrics();
    // `>=`: the SODA_TEST_TENANTS CI knob may host extra shadow tenants.
    assert!(m.tenants.len() >= 2);
    let per_tenant_completed: u64 = m.tenants.iter().map(|t| t.completed).sum();
    assert_eq!(
        per_tenant_completed, m.completed,
        "tenant counters must partition the shared total: {m:?}"
    );
    // Pass two was all warm hits — across BOTH tenants in the one LRU.
    assert_eq!(m.cache.hits, 2 * QUERIES.len() as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cache keys can never collide across tenants: for any two distinct
    /// tenant names and any snapshot fingerprint, the tenant-folded
    /// fingerprints differ — even when both tenants serve the *identical*
    /// snapshot.
    #[test]
    fn tenant_folded_cache_keys_never_collide(
        a in "[a-z][a-z0-9-]{0,24}",
        b in "[a-z][a-z0-9-]{0,24}",
        fingerprint in any::<u64>(),
    ) {
        let ta = CoreTenantId::new(&a);
        let tb = CoreTenantId::new(&b);
        if ta != tb {
            prop_assert_ne!(
                ta.fold(fingerprint),
                tb.fold(fingerprint),
                "tenants '{}' and '{}' folded fingerprint {:#x} to one key",
                a, b, fingerprint
            );
        }
        // Folding is deterministic — the same tenant always lands on the
        // same key for the same snapshot.
        prop_assert_eq!(ta.fold(fingerprint), CoreTenantId::new(&a).fold(fingerprint));
    }
}

/// Admission control: tenant A flooding the queue with distinct cold
/// queries must not starve tenant B — B's warm hits are answered at
/// submission time (never queued behind A), and B's lane keeps its share
/// of the queue while A is forced to wait for admission.
#[test]
fn a_cold_storm_on_one_tenant_cannot_starve_anothers_warm_hits() {
    let service = QueryService::start(
        snapshot_for_seed(42),
        ServiceConfig::default()
            .workers(2)
            .queue_capacity(4) // tiny on purpose: A saturates it instantly
            // Roomier than the whole storm: B's warm page must stay because
            // of per-tenant keys, not because eviction happened to spare it.
            .cache_capacity(256),
    );
    service
        .add_tenant("bank-b", snapshot_for_seed(42))
        .expect("bank-b registers");

    // Prime tenant B's warm page before the storm.
    let warm_query = "Sara Guttinger";
    page_for(&service, "bank-b", warm_query);

    let storm_done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let service = &service;
        let storm_done = &storm_done;

        // Tenant A: a storm of *distinct* cold queries (every one a cache
        // miss) from two threads, far outnumbering the queue capacity.
        // Handles are collected in bursts — submission runs ahead of the
        // workers, so the storm provably presses against A's admission
        // quota instead of politely pacing itself.  Each query carries a
        // full aggregation (plus a nonce keeping the cache keys distinct)
        // so executing one always costs more than submitting one — the
        // workers cannot outpace the submitters and leave the queue empty.
        for thread in 0..2 {
            scope.spawn(move || {
                let handles: Vec<JobHandle> = (0..40)
                    .map(|i| {
                        service.query(QueryRequest::new(format!(
                            "Nowhere{thread}x{i} sum (amount) group by (transaction date)"
                        )))
                    })
                    .collect();
                for handle in handles {
                    handle.wait().expect("cold queries still serve");
                }
            });
        }

        // Tenant B: repeated warm hits while the storm rages.  Every one
        // must resolve synchronously — a warm hit never enters the queue,
        // so A's backlog cannot delay it.
        scope.spawn(move || {
            let mut warm_hits = 0u64;
            while !storm_done.load(Ordering::Acquire) || warm_hits < 20 {
                let handle = service.query(QueryRequest::new(warm_query).tenant("bank-b"));
                assert!(
                    handle.is_ready(),
                    "a warm hit blocked behind another tenant's storm"
                );
                handle.wait().expect("warm hit serves");
                warm_hits += 1;
                if warm_hits >= 2_000 {
                    break; // plenty of evidence; don't spin forever
                }
            }
        });

        scope.spawn(move || {
            // Closes the storm flag once both flood threads are provably
            // done submitting: the flag only gates the asserting thread's
            // minimum sample count.
            std::thread::sleep(std::time::Duration::from_millis(50));
            storm_done.store(true, Ordering::Release);
        });
    });

    let m = service.metrics();
    let a = m.tenants.iter().find(|t| t.tenant == "default").unwrap();
    let b = m.tenants.iter().find(|t| t.tenant == "bank-b").unwrap();
    assert_eq!(a.executions, 80, "every storm query was a cold execution");
    assert!(b.warm_hits >= 20, "B kept serving warm: {b:?}");
    assert_eq!(
        b.admission_waits, 0,
        "warm hits must never block in admission control: {b:?}"
    );
    // The tiny queue forced A to wait — proof the storm actually pressed
    // against capacity while B stayed instant.
    assert!(
        a.admission_waits > 0,
        "the storm never hit the admission quota: {a:?}"
    );
}

/// Durable multi-tenancy: each tenant journals to its own directory, and a
/// restarted service replays each tenant's journal into byte-identical
/// answers — tenant A's feeds never leak into tenant B's warehouse.
#[test]
fn tenants_recover_from_their_own_journals() {
    let dir = TempDir::new("per-tenant-journal");
    let recover = |dir: &Path| -> QueryService {
        let w = minibank::build(42);
        let (service, _report) = QueryService::recover(
            Arc::new(w.database),
            Arc::new(w.graph),
            SodaConfig::default(),
            ServiceConfig::default(),
            DurabilityConfig::new(dir),
        )
        .expect("durable boot");
        service
    };
    let feed = |id: i64, city: &str| -> ChangeFeed {
        ChangeFeed::new().append_row(
            "addresses",
            vec![
                Value::Int(id),
                Value::Int(1),
                Value::from("Tenant Lane 1"),
                Value::from(city),
                Value::from("Switzerland"),
            ],
        )
    };

    let (before_default, before_acme) = {
        let service = recover(dir.path());
        service
            .add_tenant("acme", snapshot_for_seed(42))
            .expect("acme registers");
        // Different ingests per tenant: the journals must not mix.
        service
            .admin(TenantId::default())
            .unwrap()
            .ingest(&feed(900, "Defaultville"))
            .unwrap();
        service
            .admin("acme")
            .unwrap()
            .ingest(&feed(901, "Acmeville"))
            .unwrap();
        (
            page_for(&service, "default", "Defaultville"),
            page_for(&service, "acme", "Acmeville"),
        )
        // Drop = graceful drain.
    };
    assert!(!before_default.results.is_empty());
    assert!(!before_acme.results.is_empty());

    // Restart: the default journal replays on boot, acme's on
    // re-registration over the same base snapshot.
    let service = recover(dir.path());
    service
        .add_tenant("acme", snapshot_for_seed(42))
        .expect("acme re-registers");

    assert_eq!(
        page_for(&service, "default", "Defaultville"),
        before_default
    );
    assert_eq!(page_for(&service, "acme", "Acmeville"), before_acme);
    // Isolation after replay: neither tenant serves the other's row.
    assert!(page_for(&service, "default", "Acmeville")
        .results
        .is_empty());
    assert!(page_for(&service, "acme", "Defaultville")
        .results
        .is_empty());
}

/// `tenants()` lists the default tenant first and new tenants in
/// registration order; unknown tenants stay rejected after registrations.
#[test]
fn the_tenant_roster_tracks_registrations() {
    let service = QueryService::start(snapshot_for_seed(42), ServiceConfig::default());
    // Shadow tenants from the SODA_TEST_TENANTS CI knob are filtered out:
    // this test pins the order of *explicit* registrations.
    let roster = |service: &QueryService| -> Vec<String> {
        service
            .tenants()
            .iter()
            .map(|t| t.as_str().to_string())
            .filter(|name| !name.starts_with("shadow-"))
            .collect()
    };
    assert_eq!(roster(&service), vec!["default"]);
    assert!(service.tenants()[0].is_default());
    service
        .add_tenant("acme", snapshot_for_seed(7))
        .expect("acme registers");
    service
        .add_tenant("globex", snapshot_for_seed(9))
        .expect("globex registers");
    assert_eq!(roster(&service), vec!["default", "acme", "globex"]);
    assert!(matches!(
        service.query(QueryRequest::new("x").tenant("initech")).wait(),
        Err(soda_service::ServiceError::UnknownTenant(t)) if t == "initech"
    ));
}
