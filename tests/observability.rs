//! Cross-crate acceptance tests of the observability surface: end-to-end
//! query traces (span trees with per-shard probe sub-spans), the queue-wait /
//! execution latency split, the slow-query log and the Prometheus text
//! exposition — including the golden `# TYPE` surface that pins the metric
//! names as a stable interface.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use soda::prelude::*;
use soda::warehouse::enterprise::{self, EnterpriseConfig};
use soda_trace::names;

/// A unique scratch directory removed on drop (`std`-only — the workspace
/// has no tempfile crate).
struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(label: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "soda-observability-{label}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&path).expect("creating temp dir");
        Self { path }
    }

    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

fn enterprise_service(shards: usize) -> QueryService {
    enterprise_service_with(shards, ServiceConfig::default())
}

fn enterprise_service_with(shards: usize, config: ServiceConfig) -> QueryService {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.1,
    });
    let snapshot = EngineSnapshot::build(
        Arc::new(warehouse.database),
        Arc::new(warehouse.graph),
        SodaConfig {
            shards,
            ..SodaConfig::default()
        },
    );
    QueryService::start(Arc::new(snapshot), config)
}

/// The tentpole acceptance: a traced query on the enterprise warehouse
/// yields a span tree with all five pipeline stages and at least one
/// per-shard probe sub-span, and the stage durations account for the bulk
/// of the end-to-end execution.
#[test]
fn traced_enterprise_query_yields_the_full_span_tree() {
    let service = enterprise_service(4);
    let traced = service
        .query(QueryRequest::new("financial instruments customers Zurich").traced())
        .wait()
        .expect("traced query succeeds");
    assert!(!traced.page.results.is_empty());
    let trace = traced.trace.expect("a traced response carries its trace");

    let root = trace.find(names::QUERY).expect("query root span");
    for stage in names::STAGES {
        assert!(
            root.children.iter().any(|c| c.name == stage),
            "missing stage {stage} in\n{}",
            trace.render()
        );
    }
    let probes = trace.all_spans();
    assert!(
        probes.iter().any(|s| s.name == names::PROBE_SHARD),
        "expected at least one per-shard probe sub-span in\n{}",
        trace.render()
    );
    // Probe sub-spans carry the frozen/side-log candidate split and the
    // owning shard.
    let shard_span = probes
        .iter()
        .find(|s| s.name == names::PROBE_SHARD)
        .unwrap();
    assert!(shard_span.field("shard").is_some());
    assert!(shard_span.field("frozen_candidates").is_some());
    assert!(shard_span.field("log_candidates").is_some());

    // The five stages account for (almost all of) the end-to-end execution:
    // their durations sum to no more than the root and to at least half of
    // it (parsing and page slicing are the only work outside the stages).
    let stage_sum: Duration = names::STAGES.iter().map(|s| trace.sum_durations(s)).sum();
    assert!(
        stage_sum <= root.duration,
        "stage sum {stage_sum:?} exceeds the root span {:?}",
        root.duration
    );
    assert!(
        stage_sum * 2 >= root.duration,
        "stages cover too little of the root span: {stage_sum:?} of {:?}\n{}",
        root.duration,
        trace.render()
    );
}

/// The queue-wait / execution split: with a single worker pinned down by a
/// batch, later jobs provably wait in the queue, and the split figures are
/// consistent with the end-to-end latency.
#[test]
fn queue_wait_is_split_from_execution() {
    let w = soda::warehouse::minibank::build(42);
    let snapshot = EngineSnapshot::build(
        Arc::new(w.database),
        Arc::new(w.graph),
        SodaConfig::default(),
    );
    let service = QueryService::start(
        Arc::new(snapshot),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    // Distinct cold queries: each one occupies the single worker while the
    // rest wait in the queue, so queue wait is structurally non-zero.
    let handles: Vec<JobHandle> = [
        "Sara Guttinger",
        "wealthy customers",
        "customers Zurich",
        "Credit Suisse",
    ]
    .iter()
    .map(|q| service.query(QueryRequest::new(*q)))
    .collect();
    let results: Vec<JobResult> = handles.into_iter().map(JobHandle::wait).collect();
    assert!(results.iter().all(|r| r.is_ok()));

    let m = service.metrics();
    assert_eq!(m.completed, 4);
    assert_eq!(m.pipeline_executions, 4);
    assert!(m.execution.max > Duration::ZERO);
    assert!(
        m.queue_wait.max > Duration::ZERO,
        "with one worker the later jobs must have queued: {m:?}"
    );
    // Every component of an executed query is bounded by some end-to-end
    // sample: the slowest query waited and executed within the max latency.
    assert!(m.queue_wait.max <= m.latency.max);
    assert!(m.execution.max <= m.latency.max);
    // Stage latencies only ever cover executed pipelines, and their maxima
    // are bounded by the slowest execution.
    assert!(m.stages.lookup.max <= m.execution.max);
    assert!(m.stages.sqlgen.max <= m.execution.max);
}

/// A query over the slow-query threshold lands its full span tree in the
/// bounded slow-query log, with the queue-wait / execution split attached.
#[test]
fn slow_queries_land_full_traces_in_the_log() {
    let w = soda::warehouse::minibank::build(42);
    let snapshot = EngineSnapshot::build(
        Arc::new(w.database),
        Arc::new(w.graph),
        SodaConfig {
            shards: 4,
            ..SodaConfig::default()
        },
    );
    let service = QueryService::start(
        Arc::new(snapshot),
        ServiceConfig {
            slow_query_threshold: Some(Duration::ZERO),
            slow_query_log: 2,
            ..ServiceConfig::default()
        },
    );
    for query in ["Sara Guttinger", "wealthy customers", "Credit Suisse"] {
        service.query(QueryRequest::new(query)).wait().unwrap();
    }
    let m = service.metrics();
    assert_eq!(m.slow_queries, 3);
    // The log is bounded: only the newest two captures survive.
    let slow = service.slow_queries();
    assert_eq!(slow.len(), 2);
    assert_eq!(slow[0].input, "wealthy customers");
    assert_eq!(slow[1].input, "Credit Suisse");
    for capture in &slow {
        assert!(capture.total >= capture.execution);
        let root = capture.trace.find(names::QUERY).expect("query root");
        assert_eq!(root.children.len(), 5, "{}", capture.trace.render());
    }
    // The base-data query captured its per-shard probes.
    assert!(slow[1]
        .trace
        .all_spans()
        .iter()
        .any(|s| s.name == names::PROBE_SHARD));
}

/// The Prometheus exposition parses as valid text format 0.0.4 and its
/// family surface (`# TYPE` lines: names and kinds) matches the checked-in
/// golden file — the scrape interface is stable.
#[test]
fn metrics_text_matches_the_golden_type_surface() {
    let (db, graph) = {
        let w = soda::warehouse::minibank::build(42);
        (Arc::new(w.database), Arc::new(w.graph))
    };
    let dir = TempDir::new("golden");
    // A durable service exposes every family, journal gauges included.
    let (service, _report) = QueryService::recover(
        db,
        graph,
        SodaConfig::default(),
        ServiceConfig {
            slow_query_threshold: Some(Duration::ZERO),
            // Sampling and an SLO are declared so the exemplar syntax and
            // the `soda_slo_*` families are part of the golden surface.
            sampling: Some(SamplingConfig::default().rate(1.0)),
            slo: Some(SloConfig::default()),
            ..ServiceConfig::default()
        },
        DurabilityConfig::new(dir.path()),
    )
    .expect("durable boot");
    service
        .query(QueryRequest::new("Sara Guttinger"))
        .wait()
        .unwrap();
    service
        .admin(TenantId::default())
        .expect("default tenant")
        .ingest(&ChangeFeed::new().append_row(
            "addresses",
            vec![
                Value::Int(900),
                Value::Int(1),
                Value::from("Metric Lane 1"),
                Value::from("Promville"),
                Value::from("Switzerland"),
            ],
        ))
        .unwrap();

    let text = service.metrics_text();
    soda::trace::prom::validate(&text).expect("exposition must validate");

    let got: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE ")).collect();
    let golden = include_str!("golden/metrics_types.txt");
    let want: Vec<&str> = golden.lines().collect();
    assert_eq!(
        got, want,
        "the metric-family surface changed; update tests/golden/metrics_types.txt \
         only on a deliberate interface change"
    );
}

/// Tracing is invisible to callers: a `.traced()` request answers
/// byte-identically to the untraced one, across shard counts.
#[test]
fn traced_and_untraced_answers_are_byte_identical() {
    for shards in [1usize, 4] {
        let service = enterprise_service(shards);
        for query in ["customers Zurich", "Credit Suisse"] {
            let expected = service.query(QueryRequest::new(query)).wait().unwrap();
            let traced = service
                .query(QueryRequest::new(query).traced())
                .wait()
                .unwrap();
            assert_eq!(
                traced.page, expected.page,
                "'{query}' diverged under tracing at {shards} shards"
            );
        }
    }
}

/// Adaptive sampling is invisible to callers too: with head sampling at
/// 100% the answers stay byte-identical to an unsampled service, every
/// query (cold executions *and* warm cache hits) lands its span tree in
/// the per-tenant ring, and the latency histograms carry the trace ids as
/// OpenMetrics exemplars that still validate.
#[test]
fn sampled_queries_answer_byte_identically_and_land_exemplars() {
    let plain = enterprise_service(4);
    let sampled = enterprise_service_with(
        4,
        ServiceConfig::default().sampling(SamplingConfig::default().rate(1.0)),
    );
    for query in ["customers Zurich", "Credit Suisse"] {
        let expected = plain.query(QueryRequest::new(query)).wait().unwrap();
        let cold = sampled.query(QueryRequest::new(query)).wait().unwrap();
        assert_eq!(
            cold.page, expected.page,
            "'{query}' diverged under sampling"
        );
        let warm = sampled.query(QueryRequest::new(query)).wait().unwrap();
        assert_eq!(
            warm.page, expected.page,
            "'{query}' diverged on the warm hit"
        );
    }

    let traces = sampled
        .sampled_traces(TenantId::default())
        .expect("default tenant");
    assert_eq!(traces.len(), 4, "two cold + two warm captures");
    assert!(traces.iter().all(|t| t.reason == "head"));
    assert!(traces
        .iter()
        .all(|t| t.trace_id.len() == 16 && t.trace_id.chars().all(|c| c.is_ascii_hexdigit())));
    // Cold captures fold the full five-stage pipeline tree; warm hits get a
    // synthesized `cache_hit` event under the query root instead.
    let warm_hits = traces
        .iter()
        .filter(|t| t.trace.find(names::CACHE_HIT).is_some())
        .count();
    assert_eq!(warm_hits, 2, "both repeat queries were warm-hit captures");
    assert!(traces.iter().any(|t| {
        t.trace
            .find(names::QUERY)
            .is_some_and(|root| root.children.len() == 5)
    }));

    let text = sampled.metrics_text();
    soda::trace::prom::validate(&text).expect("exposition with exemplars must validate");
    assert!(
        text.contains("# {trace_id=\""),
        "expected at least one exemplar in\n{text}"
    );
    assert!(text.contains("soda_tenant_sampled_traces_total{tenant=\"default\"} 4"));
}

/// The end-to-end SLO story: of two co-hosted tenants with declared latency
/// objectives, the one pushed past its objective raises a Firing burn-rate
/// alert — visible via [`QueryService::alerts`], the `slo_burn` event kind
/// and the `soda_slo_*` metric families — while the healthy tenant raises
/// none.
#[test]
fn a_breached_latency_objective_raises_a_burn_alert_for_that_tenant_only() {
    let w = soda::warehouse::minibank::build(42);
    let snapshot = Arc::new(EngineSnapshot::build(
        Arc::new(w.database),
        Arc::new(w.graph),
        SodaConfig::default(),
    ));
    // The default tenant's objective is unreachable by construction (an
    // hour), the "stress" tenant's is zero — every one of its queries
    // burns budget, deterministically on any machine.
    let service = QueryService::start(
        Arc::clone(&snapshot),
        ServiceConfig::default().slo(
            SloConfig::default()
                .latency_objective(Duration::from_secs(3600))
                .tenant_latency("stress", Duration::ZERO),
        ),
    );
    service
        .add_tenant("stress", Arc::clone(&snapshot))
        .expect("hosting the stress tenant");
    for query in ["Sara Guttinger", "wealthy customers", "Credit Suisse"] {
        service.query(QueryRequest::new(query)).wait().unwrap();
        service
            .query(QueryRequest::new(query).tenant("stress"))
            .wait()
            .unwrap();
    }

    let alerts = service.alerts();
    let firing = alerts
        .iter()
        .find(|a| a.tenant == "stress" && a.objective == "latency")
        .expect("the stress tenant's latency budget is burning");
    assert_eq!(firing.state, AlertState::Firing);
    assert!(
        firing.fast_burn > 1.0 && firing.slow_burn > 1.0,
        "{firing:?}"
    );
    // The healthy co-hosted tenant raises nothing: every surfaced alert
    // belongs to the breaching tenant.
    assert!(
        alerts.iter().all(|a| a.tenant == "stress"),
        "unexpected alerts: {alerts:?}"
    );

    // The Ok -> Firing transition landed in the operational event log,
    // attributed to the breaching tenant — and only there.
    let stress_events = service.events_for("stress").expect("stress tenant");
    assert!(stress_events
        .iter()
        .any(|e| e.kind == "slo_burn" && e.detail.contains("latency alert firing")));
    let default_events = service.events_for(TenantId::default()).expect("default");
    assert!(default_events.iter().all(|e| e.kind != "slo_burn"));

    // And the scrape surface tells the same story per tenant.
    let text = service.metrics_text();
    soda::trace::prom::validate(&text).expect("exposition must validate");
    assert!(text.contains("soda_slo_alert_state{tenant=\"stress\",objective=\"latency\"} 2"));
    assert!(text.contains("soda_slo_alert_state{tenant=\"default\",objective=\"latency\"} 0"));
}
