//! Cross-crate integration test: runs the full Table 2 workload through the
//! SODA engine on the enterprise warehouse and checks that the *shape* of the
//! paper's Table 3 is reproduced — who scores perfectly, where recall drops
//! because of bi-temporal historisation, and which queries fail on the complex
//! inheritance/bridge part of the schema.

use soda::core::SodaConfig;
use soda::eval::experiments::run_workload;
use soda::eval::report;
use soda::warehouse::enterprise::{self, EnterpriseConfig};

fn evaluations() -> Vec<soda::eval::QueryEvaluation> {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.2,
    });
    run_workload(&warehouse, SodaConfig::default())
}

#[test]
fn table3_shape_is_reproduced() {
    let evals = evaluations();
    println!("{}", report::print_table3(&evals));
    println!("{}", report::print_table4(&evals));

    let by_id = |id: &str| evals.iter().find(|e| e.id == id).unwrap();

    // Queries the paper reports at precision 1.0 / recall 1.0.
    for id in ["1.0", "2.3", "3.1", "3.2", "4.0", "6.0", "8.0", "10.0"] {
        let e = by_id(id);
        assert!(
            e.best.precision >= 0.99 && e.best.recall >= 0.99,
            "query {id} expected P=R=1, got P={:.2} R={:.2}",
            e.best.precision,
            e.best.recall
        );
    }

    // Q7.0: the paper reports P=0.5, R=1.0; we only require full recall with
    // positive precision (the generated join is correct, extra tuples may
    // appear depending on the interpretation).
    let q7 = by_id("7.0");
    assert!(q7.best.recall >= 0.99, "Q7.0 recall {:.2}", q7.best.recall);
    assert!(q7.best.precision > 0.0);

    // Bi-temporal historisation: the join keys of the *_name_hist tables are
    // not annotated in the metadata graph, so recall drops to the share of
    // current names — the paper reports 0.20 for Q2.1/Q2.2.
    for id in ["2.1", "2.2"] {
        let e = by_id(id);
        assert!(
            (e.best.recall - 0.20).abs() < 0.05,
            "query {id} expected recall ~0.2, got {:.2}",
            e.best.recall
        );
        assert!(
            e.best.precision >= 0.99,
            "query {id} precision {:.2}",
            e.best.precision
        );
    }

    // The complex inheritance + sibling-bridge part of the schema defeats the
    // join discovery for Q5.0 and Q9.0 (the paper reports precision 0.12 and
    // 0.00 respectively).
    for id in ["5.0", "9.0"] {
        let e = by_id(id);
        assert!(
            e.best.precision < 0.5,
            "query {id} expected a low-precision failure, got P={:.2}",
            e.best.precision
        );
    }
}

#[test]
fn table4_complexity_and_runtime_shape() {
    let evals = evaluations();
    for e in &evals {
        // Every query decomposes into at least one entry point and produces at
        // least one interpretation within the configured top-N.
        assert!(e.complexity >= 1, "{}: complexity", e.id);
        assert!(e.num_results >= 1, "{}: no results", e.id);
        assert!(e.num_results <= 10, "{}: more than top-N results", e.id);
        // SODA's own processing stays in the milliseconds on this hardware and
        // is dominated by executing the generated SQL, as in the paper.
        assert!(
            e.soda_runtime.as_secs_f64() < 5.0,
            "{}: SODA runtime unexpectedly high",
            e.id
        );
    }
    // The ambiguous "Credit Suisse" query produces several interpretations.
    let q31 = evals.iter().find(|e| e.id == "3.1").unwrap();
    assert!(q31.num_results >= 2);
    // The aggregation query with the 5-way join has the largest total runtime
    // in the paper (40 minutes); relatively, it must also be among our slower
    // queries, but the assertion is kept loose: it only needs to be non-trivial.
    let q10 = evals.iter().find(|e| e.id == "10.0").unwrap();
    assert!(q10.total_runtime.as_nanos() > 0);
}

#[test]
fn every_produced_statement_is_executable() {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.1,
    });
    let evals = run_workload(&warehouse, SodaConfig::default());
    for e in &evals {
        for r in &e.per_result {
            // The evaluation records rows for executable statements; a parse or
            // execution failure would have been counted as zero rows AND zero
            // precision/recall. Re-execute explicitly to be sure.
            let parsed = soda::relation::parse_select(&r.sql);
            assert!(
                parsed.is_ok(),
                "query {}: generated SQL does not parse: {}",
                e.id,
                r.sql
            );
            assert!(
                warehouse.database.run_sql(&r.sql).is_ok(),
                "query {}: generated SQL does not execute: {}",
                e.id,
                r.sql
            );
        }
    }
}
