//! Workspace smoke test: the facade re-exports resolve and the quickstart
//! path (mini-bank build → one keyword query → SQL string) runs end-to-end.
//!
//! This is the test CI leans on to catch facade wiring regressions — every
//! re-exported crate is touched through its `soda::` path, not through the
//! underlying `soda_*` crate names.

use soda::prelude::*;

/// Every facade module re-export resolves and exposes its crate's API.
#[test]
fn facade_reexports_resolve() {
    // soda::metagraph
    let mut graph = soda::metagraph::MetaGraph::new();
    let node = graph.add_node("smoke/node");
    graph.add_text_edge(node, "label", "smoke");
    assert_eq!(graph.node_count(), 1);

    // soda::relation
    let mut db = soda::relation::Database::new();
    db.create_table(
        soda::relation::TableSchema::builder("smoke")
            .column("id", soda::relation::DataType::Int)
            .primary_key("id")
            .build(),
    )
    .unwrap();
    db.insert("smoke", vec![soda::relation::Value::from(1)])
        .unwrap();
    assert_eq!(db.run_sql("SELECT * FROM smoke").unwrap().row_count(), 1);

    // soda::warehouse
    let warehouse = soda::warehouse::minibank::build(42);
    assert!(warehouse.database.table_count() > 0);

    // soda::core
    let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());
    assert!(!engine.search("Zurich").unwrap().is_empty());

    // soda::eval
    assert!(!soda::eval::workload().is_empty());

    // soda::baselines and soda::explorer ride along on the same facade.
    assert_eq!(soda::baselines::all_baselines().len(), 5);
    let browser = SchemaBrowser::new(&warehouse.database, &warehouse.graph);
    assert!(!browser.tables().is_empty());
}

/// The README/lib.rs quickstart: build the mini-bank, ask one keyword query,
/// get executable SQL back.
#[test]
fn quickstart_keyword_query_yields_sql() {
    let warehouse = soda::warehouse::minibank::build(42);
    let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());

    let results = engine.search("Sara Guttinger").unwrap();
    assert!(!results.is_empty());

    let sql = &results[0].sql;
    assert!(sql.starts_with("SELECT"), "not a SELECT: {sql}");

    // The generated SQL is not just a string — it parses and executes on the
    // same warehouse, and actually finds Sara Guttinger.
    soda::relation::parse_select(sql).expect("generated SQL must parse");
    let result_set = warehouse
        .database
        .run_sql(sql)
        .expect("generated SQL must execute");
    assert!(!result_set.is_empty(), "no rows for: {sql}");
    assert!(result_set
        .tuple_strings()
        .iter()
        .any(|row| row.contains("Guttinger")));
}
