//! Cross-crate integration tests of the serving layer: the `QueryService`
//! must produce byte-identical SQL to the single-threaded engine under
//! concurrency, and its warm cache must beat the cold pipeline by at least
//! an order of magnitude.

use std::sync::Arc;
use std::time::{Duration, Instant};

use soda::prelude::*;
use soda::warehouse::minibank;

const QUERIES: &[&str] = &[
    "Sara Guttinger",
    "wealthy customers",
    "financial instruments customers Zurich",
    "salary >= 100000 and birthday = date(1981-04-23)",
    "sum (amount) group by (transaction date)",
    "count (transactions) group by (company name)",
    "Top 10 sum (amount) group by (company name)",
];

fn shared_snapshot() -> Arc<EngineSnapshot> {
    let w = minibank::build(42);
    Arc::new(EngineSnapshot::build(
        Arc::new(w.database),
        Arc::new(w.graph),
        SodaConfig::default(),
    ))
}

/// N threads × M queries through the service produce byte-identical result
/// pages (SQL text included) to a fresh single-threaded borrowed engine.
#[test]
fn concurrent_service_matches_single_threaded_engine_byte_for_byte() {
    // The reference run uses the original borrowed engine over its own copy
    // of the warehouse, so nothing is shared with the service under test.
    let reference_warehouse = minibank::build(42);
    let reference_engine = SodaEngine::new(
        &reference_warehouse.database,
        &reference_warehouse.graph,
        SodaConfig::default(),
    );
    let expected: Vec<Vec<String>> = QUERIES
        .iter()
        .map(|q| {
            reference_engine
                .search_paged(q, 0, 10)
                .expect("reference query runs")
                .results
                .iter()
                .map(|r| r.sql.clone())
                .collect()
        })
        .collect();

    let service = QueryService::start(
        shared_snapshot(),
        ServiceConfig {
            workers: 4,
            queue_capacity: 8, // small on purpose: exercises backpressure
            cache_capacity: 32,
            ..ServiceConfig::default()
        },
    );

    const THREADS: usize = 8;
    const ROUNDS: usize = 5;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let service = &service;
            let expected = &expected;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Rotate the starting query per thread so cache hits and
                    // misses interleave across the pool.
                    for i in 0..QUERIES.len() {
                        let idx = (t + round + i) % QUERIES.len();
                        let page = service
                            .query(QueryRequest::new(QUERIES[idx]))
                            .wait()
                            .expect("service answers")
                            .page;
                        let sql: Vec<String> = page.results.iter().map(|r| r.sql.clone()).collect();
                        assert_eq!(
                            sql, expected[idx],
                            "thread {t} round {round} diverged on '{}'",
                            QUERIES[idx]
                        );
                    }
                }
            });
        }
    });

    let metrics = service.metrics();
    assert_eq!(metrics.completed, (THREADS * ROUNDS * QUERIES.len()) as u64);
    // Every query repeats many times, so the cache must have carried most of
    // the load.
    assert!(
        metrics.cache.hit_rate() > 0.5,
        "expected a warm cache, got {:?}",
        metrics.cache
    );
}

/// The warm cache answers a repeated query at least 10× faster than the cold
/// pipeline run of the same query.
#[test]
fn warm_cache_is_at_least_ten_times_faster_than_cold() {
    let service = QueryService::start(shared_snapshot(), ServiceConfig::default());
    let query = "financial instruments customers Zurich";

    // Cold: best of several full-pipeline runs (cache cleared each time), so
    // scheduler noise can only make cold look *faster*, never slower.
    let mut cold = Duration::MAX;
    for _ in 0..5 {
        service
            .admin(TenantId::default())
            .expect("default tenant exists")
            .clear_cache();
        let t0 = Instant::now();
        service
            .query(QueryRequest::new(query))
            .wait()
            .expect("cold query serves");
        cold = cold.min(t0.elapsed());
    }

    // Warm: best of many pure cache hits.
    service
        .query(QueryRequest::new(query))
        .wait()
        .expect("priming query serves");
    let mut warm = Duration::MAX;
    for _ in 0..50 {
        let t0 = Instant::now();
        let handle = service.query(QueryRequest::new(query));
        assert!(handle.is_ready(), "warm submit must resolve synchronously");
        handle.wait().expect("warm query serves");
        warm = warm.min(t0.elapsed());
    }

    assert!(
        cold >= warm * 10,
        "warm cache not ≥10× faster: cold {cold:?} vs warm {warm:?}"
    );
}

/// Cache hits must respect the engine configuration: two services with
/// different configs never share interpretations, even for the same input.
#[test]
fn different_configs_produce_independent_answers() {
    let w = minibank::build(42);
    let default_cfg = SodaConfig::default();
    let no_index_cfg = SodaConfig {
        use_inverted_index: false,
        ..SodaConfig::default()
    };
    assert_ne!(default_cfg.fingerprint(), no_index_cfg.fingerprint());

    let with_index = QueryService::start(
        Arc::new(EngineSnapshot::build(
            Arc::new(w.database.clone()),
            Arc::new(w.graph.clone()),
            default_cfg,
        )),
        ServiceConfig::default(),
    );
    let without_index = QueryService::start(
        Arc::new(EngineSnapshot::build(
            Arc::new(w.database),
            Arc::new(w.graph),
            no_index_cfg,
        )),
        ServiceConfig::default(),
    );

    // "Sara Guttinger" only resolves through the inverted index over the
    // base data, so the two services must answer differently.
    let a = with_index
        .query(QueryRequest::new("Sara Guttinger"))
        .wait()
        .expect("serves")
        .page;
    let b = without_index
        .query(QueryRequest::new("Sara Guttinger"))
        .wait()
        .expect("serves")
        .page;
    assert!(!a.results.is_empty());
    assert_ne!(a.results, b.results);
}

/// The cheap `queue_depth()` accessor mirrors the gauge in the full metrics
/// snapshot without paying for latency/cache/shard aggregation.
#[test]
fn queue_depth_accessor_tracks_the_queue() {
    let service = QueryService::start(
        shared_snapshot(),
        ServiceConfig {
            workers: 1,
            queue_capacity: 16,
            cache_capacity: 16,
            ..ServiceConfig::default()
        },
    );
    assert_eq!(service.queue_depth(), 0);
    assert_eq!(service.metrics().queue_depth, 0);

    // Distinct cold queries pile up behind the single worker; the accessor
    // and the metrics gauge must agree while the queue drains.
    let handles: Vec<_> = QUERIES
        .iter()
        .map(|q| service.query(QueryRequest::new(*q)))
        .collect();
    // No further submissions happen, so depth only shrinks as the worker
    // drains: the accessor sampled after the snapshot can never exceed it.
    let snapshot_depth = service.metrics().queue_depth;
    assert!(service.queue_depth() <= snapshot_depth);
    for handle in handles {
        handle.wait().expect("query serves");
    }
    assert_eq!(service.queue_depth(), 0);
    assert_eq!(service.metrics().queue_depth, 0);
}

/// N concurrent identical cold queries execute the five-step pipeline once:
/// the first miss computes, everyone else coalesces onto it (or hits the
/// cache if it arrives after completion) — never a duplicate execution.
#[test]
fn concurrent_identical_cold_queries_are_coalesced() {
    let service = QueryService::start(
        shared_snapshot(),
        ServiceConfig {
            workers: 1,
            queue_capacity: 32,
            cache_capacity: 32,
            ..ServiceConfig::default()
        },
    );
    // Occupy the single worker so the identical submissions below overlap
    // with their key's in-flight window.
    let blocker = service.query(QueryRequest::new("financial instruments customers Zurich"));

    const CLIENTS: usize = 12;
    let query = "sum (amount) group by (transaction date)";
    let pages: Vec<ResultPage> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| scope.spawn(|| service.query(QueryRequest::new(query)).wait().unwrap().page))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    blocker.wait().expect("blocker serves");

    for page in &pages {
        assert_eq!(page, &pages[0], "coalesced clients must share one page");
    }
    let m = service.metrics();
    assert_eq!(
        m.pipeline_executions, 2,
        "blocker + exactly one execution for {CLIENTS} identical queries: {m:?}"
    );
    assert_eq!(m.coalesced + m.cache.hits, (CLIENTS - 1) as u64);
    assert_eq!(m.completed, (CLIENTS + 1) as u64);
}

/// A batch of handles collected up front resolves in request order and
/// populates metrics.
#[test]
fn batched_handles_round_trip_a_mixed_workload() {
    let service = QueryService::start(shared_snapshot(), ServiceConfig::default());
    let handles: Vec<JobHandle> = QUERIES
        .iter()
        .map(|q| service.query(QueryRequest::new(*q)))
        .collect();
    let results: Vec<JobResult> = handles.into_iter().map(JobHandle::wait).collect();
    assert_eq!(results.len(), QUERIES.len());
    for (query, result) in QUERIES.iter().zip(&results) {
        let response = result.as_ref().unwrap_or_else(|e| {
            panic!("'{query}' failed: {e}");
        });
        assert!(response
            .page
            .results
            .iter()
            .all(|r| r.sql.starts_with("SELECT")));
    }
    let metrics = service.metrics();
    assert_eq!(metrics.completed, QUERIES.len() as u64);
    assert!(metrics.latency.max >= metrics.latency.p50);
}
