//! Bi-temporal historization support (the paper's §5.2.1 remedy and §7 future
//! work): what annotating the historization join relationships buys.
//!
//! The paper reports recall 0.20 for Q2.1/Q2.2 because the `*_name_hist` join
//! keys are not reflected in the schema graph.  This example builds the same
//! warehouse twice — once paper-faithful, once with historization
//! annotations — and shows how the "Sara" query and the temporal `valid at`
//! operator behave on each.
//!
//! Run with: `cargo run --example temporal_history`

use soda::core::{SodaConfig, SodaEngine};
use soda::eval::experiments::historization::historization_comparison;
use soda::eval::report::print_historization;
use soda::warehouse::enterprise::{self, EnterpriseConfig};

fn show(engine: &SodaEngine<'_>, title: &str, query: &str) {
    println!("--- {title}: {query}");
    match engine.search(query) {
        Err(e) => println!("    error: {e}"),
        Ok(results) => {
            for r in results.iter().take(3) {
                let rows = engine.execute(r).map(|rs| rs.row_count()).unwrap_or(0);
                println!("    [{rows:>3} rows] {}", r.sql);
                for note in &r.notes {
                    println!("              note: {note}");
                }
            }
        }
    }
    println!();
}

fn main() {
    let config = EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.2,
    };

    println!("== paper-faithful metadata graph (historization joins unannotated)\n");
    let plain = enterprise::build_with(config);
    let engine = SodaEngine::new(&plain.database, &plain.graph, SodaConfig::default());
    show(&engine, "Q2.1", "Sara");
    show(
        &engine,
        "temporal operator (ignored without annotations)",
        "Sara valid at date(2006-06-30)",
    );

    println!("== historization-annotated metadata graph (the paper's proposed remedy)\n");
    let annotated = enterprise::build_with_historization(config);
    let engine = SodaEngine::new(&annotated.database, &annotated.graph, SodaConfig::default());
    show(&engine, "Q2.1", "Sara");
    show(
        &engine,
        "temporal operator",
        "Sara valid at date(2006-06-30)",
    );

    println!("== entity recall, plain vs annotated (Q2.1 / Q2.2)\n");
    println!("{}", print_historization(&historization_comparison(config)));
}
