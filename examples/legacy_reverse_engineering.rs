//! The legacy-system war story (§5.3.2, fourth user group): reverse engineer
//! the conceptual / logical / physical schema from a physical-only database,
//! generate documentation and a metadata graph from it, and explore the
//! legacy system through SODA and the schema browser — without any
//! hand-written metadata.
//!
//! Run with: `cargo run --example legacy_reverse_engineering`

use soda::core::{SodaConfig, SodaEngine};
use soda::explorer::{document_model, reverse_engineer, SchemaBrowser};
use soda::warehouse::enterprise::{self, EnterpriseConfig};
use soda::warehouse::{build_graph, DomainOntology, SynonymStore};

fn main() {
    // Pretend the enterprise warehouse is an undocumented legacy system: keep
    // only its base data, discard the curated metadata graph.
    let legacy_db = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.15,
    })
    .database;

    // 1. Reverse engineer the three schema layers from the physical catalog.
    let model = reverse_engineer(&legacy_db);
    let stats = model.stats();
    println!(
        "reverse engineered {} conceptual entities, {} logical entities, {} tables\n",
        stats.conceptual_entities, stats.logical_entities, stats.physical_tables
    );

    // 2. Generate the documentation report (first ~30 lines shown).
    println!("== generated documentation (excerpt)");
    for line in document_model(&model).lines().take(30) {
        println!("  {line}");
    }
    println!("  …\n");

    // 3. Build the metadata graph from the recovered model and browse it.
    let graph = build_graph(&model, &DomainOntology::new(), &SynonymStore::new());
    let browser = SchemaBrowser::new(&legacy_db, &graph);
    let description = browser.describe("trade_order_td").unwrap();
    println!("== trade_order_td as recovered from the physical schema");
    println!("  logical entity: {:?}", description.logical_entities);
    println!(
        "  columns       : {:?}",
        description
            .columns
            .iter()
            .map(|c| &c.name)
            .collect::<Vec<_>>()
    );
    println!(
        "  join path to party:\n    {}",
        browser
            .join_path_explained("trade_order_td", "party")
            .unwrap()
            .join("\n    ")
    );
    println!();

    // 4. And search the legacy system through SODA.
    let engine = SodaEngine::new(&legacy_db, &graph, SodaConfig::default());
    for query in ["Sara", "trade order amount > 40000", "Credit Suisse"] {
        println!("== SODA over the legacy system: {query}");
        match engine.search(query) {
            Err(e) => println!("  error: {e}"),
            Ok(results) => {
                for r in results.iter().take(2) {
                    let rows = engine.execute(r).map(|rs| rs.row_count()).unwrap_or(0);
                    println!("  [{rows:>3} rows] {}", r.sql);
                }
            }
        }
        println!();
    }
}
