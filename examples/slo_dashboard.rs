//! A live SLO dashboard for a multi-tenant deployment: two hosted
//! warehouses with declared latency objectives drive traffic through one
//! `QueryService`, and the per-tenant burn-rate engine reports who is
//! spending error budget — the "retail" tenant comfortably inside its
//! objective, the "brokerage" tenant deliberately pushed past an
//! unmeetable one.  Prints the burn rates, the firing alerts, the
//! `slo_burn` operational events and the `soda_slo_*` scrape families,
//! plus a handful of adaptively sampled span trees from the live traffic.
//!
//! Run with: `cargo run --example slo_dashboard`

use std::sync::Arc;
use std::time::Duration;

use soda::prelude::*;
use soda::warehouse::minibank;

fn main() {
    let warehouse = minibank::build(42);
    let snapshot = Arc::new(EngineSnapshot::build(
        Arc::new(warehouse.database),
        Arc::new(warehouse.graph),
        SodaConfig::default(),
    ));

    // One SLO declaration covers every hosted tenant, with per-tenant
    // latency overrides: "retail" gets a generous one-hour objective it
    // can never miss, "brokerage" a zero-latency objective it can never
    // meet — so the dashboard deterministically shows one healthy and one
    // burning tenant on any machine.
    let service = QueryService::start(
        Arc::clone(&snapshot),
        ServiceConfig::default()
            .sampling(SamplingConfig::default().rate(1.0))
            .slo(
                SloConfig::default()
                    .latency_objective(Duration::from_secs(3600))
                    .tenant_latency("brokerage", Duration::ZERO),
            ),
    );
    service
        .add_tenant("retail", Arc::clone(&snapshot))
        .expect("hosting retail");
    service
        .add_tenant("brokerage", Arc::clone(&snapshot))
        .expect("hosting brokerage");

    let workload = [
        "Sara Guttinger",
        "wealthy customers",
        "financial instruments customers Zurich",
        "Credit Suisse",
    ];
    for query in workload {
        for tenant in ["retail", "brokerage"] {
            service
                .query(QueryRequest::new(query).tenant(tenant))
                .wait()
                .expect("query serves");
        }
    }

    println!("== burn rates (fast 5m window / slow 1h window)");
    let alerts = service.alerts();
    for alert in &alerts {
        println!(
            "   {:<12} {:<14} fast {:>8.2}  slow {:>8.2}  -> {}",
            alert.tenant,
            alert.objective,
            alert.fast_burn,
            alert.slow_burn,
            alert.state.as_str()
        );
    }
    if alerts.is_empty() {
        println!("   (no objective is burning)");
    }

    println!("\n== slo_burn events");
    for tenant in ["retail", "brokerage"] {
        for event in service.events_for(tenant).expect("hosted tenant") {
            if event.kind == "slo_burn" {
                println!("   [{tenant}] {}", event.detail);
            }
        }
    }

    println!("\n== sampled traces (brokerage, head sampling at 100%)");
    for sampled in service
        .sampled_traces("brokerage")
        .expect("hosted tenant")
        .iter()
        .take(2)
    {
        println!(
            "   trace {} ({}, {:?}): {}",
            sampled.trace_id, sampled.reason, sampled.total, sampled.input
        );
    }

    println!("\n== soda_slo_* scrape families");
    let text = service.metrics_text();
    soda::trace::prom::validate(&text).expect("exposition validates");
    for line in text.lines().filter(|l| l.contains("soda_slo_")) {
        println!("   {line}");
    }

    // The dashboard's contract, asserted so the CI run is a real check:
    // the brokerage latency budget is burning, retail's is not.
    assert!(alerts
        .iter()
        .any(|a| a.tenant == "brokerage" && a.objective == "latency"));
    assert!(alerts.iter().all(|a| a.tenant != "retail"));
}
