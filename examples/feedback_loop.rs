//! The interactive result-page loop of §3 and §6.3: SODA returns a page of
//! candidate SQL statements, the user likes or dislikes interpretations, asks
//! for the next result page, and gets reformulation suggestions for words the
//! lookup could not match.
//!
//! Run with: `cargo run --example feedback_loop`

use soda::core::{FeedbackStore, SodaConfig, SodaEngine};
use soda::warehouse::enterprise::{self, EnterpriseConfig};

fn main() {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.2,
    });
    let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());

    // 1. The ambiguous query of Q3.1/Q3.2: "Credit Suisse" is both an
    //    organization and part of agreement names.
    println!("== result page 1 for 'Credit Suisse'");
    let page = engine.search_paged("Credit Suisse", 0, 3).unwrap();
    for (i, r) in page.results.iter().enumerate() {
        println!("  {}. [{:.2}] tables {:?}", i + 1, r.score, r.tables);
    }
    println!("  has next page: {}\n", page.has_next);

    if page.has_next {
        let next = engine.search_paged("Credit Suisse", 1, 3).unwrap();
        println!("== result page 2");
        for (i, r) in next.results.iter().enumerate() {
            println!("  {}. [{:.2}] tables {:?}", i + 4, r.score, r.tables);
        }
        println!();
    }

    // 2. The user dislikes the top interpretation a few times; the feedback is
    //    keyed by (phrase, entry point), so the whole interpretation family is
    //    demoted on the next query.
    let full = engine.search("Credit Suisse").unwrap();
    let mut feedback = FeedbackStore::new();
    for _ in 0..3 {
        feedback.dislike(&full[0]);
    }
    println!(
        "== after disliking the {:?} interpretation three times",
        full[0].tables
    );
    let reranked = engine
        .search_with_feedback("Credit Suisse", &feedback)
        .unwrap();
    for (i, r) in reranked.iter().take(3).enumerate() {
        println!("  {}. [{:.2}] tables {:?}", i + 1, r.score, r.tables);
    }
    println!();

    // 3. Reformulation suggestions for words the lookup cannot classify.
    for input in ["Sara agreemnt", "customer adress Zurich"] {
        println!("== suggestions for '{input}'");
        let suggestions = engine.suggestions(input).unwrap();
        if suggestions.is_empty() {
            println!("  every word matched — nothing to suggest");
        }
        for s in suggestions {
            println!(
                "  '{}' is unknown — did you mean {:?}?",
                s.term, s.candidates
            );
        }
        println!();
    }
}
