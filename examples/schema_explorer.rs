//! SODA as a schema-exploration tool (§5.3.2 of the paper): several user
//! groups used SODA not to run queries but to understand the warehouse —
//! which entities relate to which, where a business term lives physically, and
//! which join paths connect two tables.
//!
//! Run with: `cargo run --example schema_explorer`

use soda::core::{SodaConfig, SodaEngine};
use soda::eval::experiments::figures;
use soda::warehouse::enterprise::{self, EnterpriseConfig};

fn main() {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.1,
    });
    let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());

    // 1. Where does a business term live?  The classification index answers
    //    directly, without generating SQL.
    println!("== where do business terms resolve?");
    for term in [
        "private customers",
        "trading volume",
        "wealthy customers",
        "birth date",
    ] {
        let (results, trace) = engine.search_traced(term).unwrap();
        let provenance: Vec<String> = trace
            .classification
            .iter()
            .flat_map(|(_, p)| p.iter().map(|x| x.label().to_string()))
            .collect();
        let tables: Vec<String> = results
            .iter()
            .flat_map(|r| r.tables.clone())
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        println!(
            "  {term:<20} found in {:?}, physical tables {:?}",
            provenance, tables
        );
    }

    // 2. Which join path connects two entities?  "Give me tables X and Y" —
    //    the third user group of §5.3.2.
    println!("\n== join paths discovered from the metadata graph");
    for (a, b) in [
        ("trade_order_td", "individual"),
        ("money_transaction_td", "organization"),
        ("security_td", "party"),
    ] {
        match engine.join_catalog().path(a, b) {
            Some(path) => {
                let conditions: Vec<String> = path.iter().map(|e| e.condition()).collect();
                println!("  {a} -> {b}: {}", conditions.join(" AND "));
            }
            None => println!("  {a} -> {b}: no join path found"),
        }
    }

    // 3. The complex hierarchy around `party` (Figure 10), including the
    //    bridge between inheritance siblings that causes trouble for Q5.0.
    println!("\n== Figure 10: schema hierarchy around party");
    println!("{}", figures::figure10_hierarchy(&warehouse));

    // 4. Bridge tables in the whole schema.
    println!("== bridge tables (physical N-to-N implementations)");
    for bridge in &engine.join_catalog().bridges {
        println!("  {} connects {:?}", bridge.table, bridge.connects());
    }
}
