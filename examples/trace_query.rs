//! End-to-end query tracing: run one mini-bank query through the service's
//! traced diagnostic path, print the rendered span tree (the five pipeline
//! stages with per-shard probe sub-spans), then the Prometheus text
//! exposition the service exports for scraping.
//!
//! Run with: `cargo run --example trace_query`

use std::sync::Arc;
use std::time::Duration;

use soda::prelude::*;
use soda::warehouse::minibank;

fn main() {
    let warehouse = minibank::build(42);
    let snapshot = EngineSnapshot::build(
        Arc::new(warehouse.database),
        Arc::new(warehouse.graph),
        SodaConfig {
            shards: 4,
            ..SodaConfig::default()
        },
    );
    // A zero slow-query threshold captures every executed query's span tree
    // in the slow-query log — handy for a demo; production deployments set
    // a real budget (or leave it off for the zero-cost noop path).
    let service = QueryService::start(
        Arc::new(snapshot),
        ServiceConfig {
            slow_query_threshold: Some(Duration::ZERO),
            ..ServiceConfig::default()
        },
    );

    let query = "financial instruments customers Zurich";
    let traced = service
        .query(QueryRequest::new(query).traced())
        .wait()
        .expect("query parses");
    println!("== traced: {query}");
    println!(
        "   {} results, best: {}\n",
        traced.page.total_results,
        traced
            .page
            .results
            .first()
            .map(|r| r.sql.as_str())
            .unwrap_or("(none)")
    );
    println!(
        "{}",
        traced
            .trace
            .expect("traced response carries its trace")
            .render()
    );

    // The same query through the normal path: executed once (slow-query
    // captured), then answered from the cache.
    for _ in 0..2 {
        service.query(QueryRequest::new(query)).wait().unwrap();
    }
    let slow = service.slow_queries();
    println!(
        "slow-query log: {} capture(s), first spans {} node(s)\n",
        slow.len(),
        slow.first().map(|s| s.trace.all_spans().len()).unwrap_or(0)
    );

    println!("== metrics_text()");
    print!("{}", service.metrics_text());
}
