//! Runs the full Table 2 workload against the enterprise warehouse (the
//! synthetic stand-in for the Credit Suisse integration layer) and prints the
//! regenerated Tables 1–5 of the paper.
//!
//! Run with: `cargo run --release --example enterprise_search`

use soda::core::SodaConfig;
use soda::eval::experiments::{run_workload, table1::table1, table5::table5};
use soda::eval::report;
use soda::eval::workload::workload;
use soda::warehouse::enterprise::{self, EnterpriseConfig};

fn main() {
    // Full metadata scale (Table 1), moderate data scale.
    println!("building the enterprise warehouse (padding to Table 1 scale)...");
    let padded = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: true,
        data_scale: 0.3,
    });
    println!("{}", report::print_table1(&table1(&padded)));

    println!("{}", report::print_table2(&workload()));

    println!("running the workload (this executes every generated statement)...\n");
    let evals = run_workload(&padded, SodaConfig::default());
    println!("{}", report::print_table3(&evals));
    println!("{}", report::print_table4(&evals));

    println!("comparing against the baseline systems...\n");
    println!("{}", report::print_table5(&table5(&padded)));

    // Show the generated SQL for a couple of interesting queries.
    for id in ["2.1", "9.0", "10.0"] {
        if let Some(e) = evals.iter().find(|e| e.id == id) {
            println!("Q{id}: {}", e.keywords);
            for r in e.per_result.iter().take(2) {
                println!(
                    "  P={:.2} R={:.2} rows={:>5}  {}",
                    r.precision, r.recall, r.rows, r.sql
                );
            }
            println!();
        }
    }
}
