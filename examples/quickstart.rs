//! Quickstart: build the paper's mini-bank running example, ask a few
//! business-user questions and look at the SQL SODA generates.
//!
//! Run with: `cargo run --example quickstart`

use soda::core::{SodaConfig, SodaEngine};
use soda::warehouse::minibank;

fn main() {
    // A seeded synthetic warehouse: 10 tables (Figure 2 of the paper), a
    // three-layer schema, a domain ontology, DBpedia synonyms and base data.
    let warehouse = minibank::build(42);
    println!(
        "mini-bank: {} tables, {} rows, metadata graph with {} nodes / {} edges\n",
        warehouse.database.table_count(),
        warehouse.database.total_rows(),
        warehouse.graph.node_count(),
        warehouse.graph.edge_count()
    );

    let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());

    // The three introductory queries of Section 2.
    for query in [
        "financial instruments customers Zurich",
        "sum (amount) group by (transaction date)",
        "Sara Guttinger",
    ] {
        println!("== {query}");
        let results = engine.search(query).expect("query parses");
        match results.first() {
            None => println!("   (no interpretation found)\n"),
            Some(top) => {
                println!("   score {:.2}  tables {:?}", top.score, top.tables);
                println!("   {}\n", top.sql);
                if let Ok(snippet) = engine.snippet(top) {
                    for line in snippet.lines().take(5) {
                        println!("   | {line}");
                    }
                }
                println!();
            }
        }
    }
}
