//! The serving layer in action: N client threads drive the mini-bank
//! warehouse through a shared `QueryService`, then the service metrics show
//! QPS, latency percentiles and the interpretation-cache hit rate.
//!
//! Run with: `cargo run --release --example service_throughput`

use std::sync::Arc;

use soda::prelude::*;
use soda::warehouse::minibank;

const CLIENTS: usize = 8;
const ROUNDS: usize = 25;

/// The workload every client loops over — the paper's flagship query shapes.
const QUERIES: &[&str] = &[
    "Sara Guttinger",
    "wealthy customers",
    "financial instruments customers Zurich",
    "salary >= 100000 and birthday = date(1981-04-23)",
    "sum (amount) group by (transaction date)",
    "count (transactions) group by (company name)",
];

fn main() {
    // Build once, serve forever: the warehouse is consumed into an owned,
    // thread-safe snapshot (base data + metadata graph + all indexes).
    let warehouse = minibank::build(42);
    println!(
        "mini-bank: {} tables, {} rows — building shared engine snapshot…",
        warehouse.database.table_count(),
        warehouse.database.total_rows(),
    );
    let snapshot = Arc::new(EngineSnapshot::build(
        Arc::new(warehouse.database),
        Arc::new(warehouse.graph),
        SodaConfig::default(),
    ));

    let service = QueryService::start(
        snapshot,
        ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 256,
            ..ServiceConfig::default()
        },
    );

    println!(
        "serving {CLIENTS} clients × {ROUNDS} rounds × {} queries on {} workers…\n",
        QUERIES.len(),
        service.worker_count(),
    );

    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            let service = &service;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Clients phrase the same questions differently; the
                    // canonicalizing cache still answers them from one slot.
                    let query = QUERIES[(client + round) % QUERIES.len()];
                    let spelled = if round % 2 == 0 {
                        query.to_string()
                    } else {
                        query.to_uppercase()
                    };
                    let page = service
                        .query(QueryRequest::new(spelled))
                        .wait()
                        .expect("query serves")
                        .page;
                    assert!(page.results.iter().all(|r| r.sql.starts_with("SELECT")));
                }
            });
        }
    });

    let m = service.metrics();
    println!("── service metrics ──────────────────────────────");
    println!("  queries answered : {}", m.completed);
    println!("  wall-clock       : {:?}", m.uptime);
    println!("  throughput       : {:.0} queries/sec", m.qps);
    println!(
        "  latency          : min {:?}  mean {:?}  p50 {:?}  p95 {:?}  max {:?}",
        m.latency.min, m.latency.mean, m.latency.p50, m.latency.p95, m.latency.max
    );
    println!(
        "  cache            : {} hits / {} misses ({:.1}% hit rate), {} resident, {} evicted",
        m.cache.hits,
        m.cache.misses,
        100.0 * m.cache.hit_rate(),
        m.cache.len,
        m.cache.evictions
    );
    println!("  queue depth      : {}", m.queue_depth);
}
