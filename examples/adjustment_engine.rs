//! A sketch of the "Adjustment Engine" usage described in §5.3.2: business
//! users name the entities they care about ("give me tables X, Y and Z"), SODA
//! discovers the join conditions, and the application compares a measure
//! between two periods without anyone writing SQL.
//!
//! Run with: `cargo run --example adjustment_engine`

use soda::core::{SodaConfig, SodaEngine};
use soda::warehouse::enterprise::{self, EnterpriseConfig};

fn main() {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.5,
    });
    let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());

    // The business user names entities and a measure; SODA supplies the joins.
    let question = "sum(investments) group by (currency)";
    let results = engine.search(question).expect("query parses");
    let Some(top) = results.first() else {
        println!("no interpretation found for {question}");
        return;
    };
    println!("business question : {question}");
    println!("generated SQL     : {}\n", top.sql);

    // "Show me the differences with respect to the previous period": run the
    // same generated statement restricted to two periods and diff the output.
    let by_period = |year: i32| {
        let sql = format!(
            "{} ",
            top.sql.replace(
                " WHERE ",
                &format!(" WHERE trade_order_td.order_dt >= '{year}-01-01' AND trade_order_td.order_dt <= '{year}-12-31' AND ")
            )
        );
        warehouse
            .database
            .run_sql(sql.trim())
            .expect("period query runs")
    };
    let current = by_period(2011);
    let previous = by_period(2010);

    println!(
        "{:<10} {:>16} {:>16} {:>12}",
        "currency", "2011", "2010", "delta"
    );
    println!("{}", "-".repeat(58));
    for row in current.rows() {
        let currency = row[0].to_string();
        let now = row[1].as_f64().unwrap_or(0.0);
        let before = previous
            .rows()
            .iter()
            .find(|r| r[0].to_string() == currency)
            .and_then(|r| r[1].as_f64())
            .unwrap_or(0.0);
        println!(
            "{:<10} {:>16.2} {:>16.2} {:>12.2}",
            currency,
            now,
            before,
            now - before
        );
    }
}
