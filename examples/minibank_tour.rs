//! A tour of the paper's worked examples (§4.4) on the mini-bank: the four
//! SODA-vs-SQL listings (Query 1–4), the "wealthy customers" metadata filter,
//! and the Figure 5 / Figure 6 pipeline illustrations.
//!
//! Run with: `cargo run --example minibank_tour`

use soda::core::{SodaConfig, SodaEngine};
use soda::eval::experiments::figures;
use soda::warehouse::minibank;

fn show(engine: &SodaEngine<'_>, title: &str, query: &str) {
    println!("=== {title}");
    println!("SODA : {query}");
    match engine.search(query) {
        Err(e) => println!("error: {e}\n"),
        Ok(results) => {
            for (i, r) in results.iter().take(2).enumerate() {
                println!("SQL{} : {}", i + 1, r.sql);
            }
            if let Some(top) = results.first() {
                if let Ok(rs) = engine.execute(top) {
                    println!("rows : {}", rs.row_count());
                }
            }
            println!();
        }
    }
}

fn main() {
    let warehouse = minibank::build(42);
    let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());

    // Query 1: keyword pattern example.
    show(&engine, "Query 1 — keyword lookup", "Sara Guttinger");
    // Query 2: input pattern example (comparison operators and date()).
    show(
        &engine,
        "Query 2 — comparison operators",
        "salary >= 100000 and birthday = date(1981-04-23)",
    );
    // Query 3: aggregation pattern example.
    show(
        &engine,
        "Query 3 — aggregation",
        "sum (amount) group by (transaction date)",
    );
    // Query 4: organizations ranked by trading volume.
    show(
        &engine,
        "Query 4 — organizations by trading volume",
        "count (transactions) group by (company name)",
    );
    // Business term defined in the metadata ("wealthy customers").
    show(&engine, "Metadata-defined filter", "wealthy customers");
    // Top-N operator.
    show(
        &engine,
        "Top N",
        "Top 10 sum (amount) group by (company name)",
    );

    // Figure 5: classification of the running-example query.
    println!("=== Figure 5 — query classification");
    for (phrase, provenances) in figures::figure5_classification(&warehouse) {
        println!("  {phrase:<24} found in: {}", provenances.join(", "));
    }

    // Figure 6: output of the tables step.
    println!("\n=== Figure 6 — tables step output (per interpretation)");
    for (i, tables) in figures::figure6_tables(&warehouse).iter().enumerate() {
        println!("  interpretation {}: {}", i + 1, tables.join(", "));
    }
}
