//! Spans: the [`TraceSink`] interface the pipeline carries, the no-op and
//! collecting implementations, and the [`QueryTrace`] tree a collected query
//! folds into.
//!
//! The design mirrors the engine's probe recorder: the pipeline context holds
//! a `&dyn TraceSink`, every instrumentation site first asks
//! [`TraceSink::enabled`] and only then builds field values, so with
//! [`NoopSink`] the whole machinery costs one virtual call per site.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Identifier of a live span within one sink.  `NONE` is both "no parent"
/// and the id the no-op sink hands out; every sink method accepts it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u32);

impl SpanId {
    /// The absent span: root parents and every no-op id.
    pub const NONE: SpanId = SpanId(0);

    /// True for [`SpanId::NONE`].
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    fn index(self) -> Option<usize> {
        (self.0 != 0).then(|| self.0 as usize - 1)
    }

    fn from_index(index: usize) -> SpanId {
        SpanId(u32::try_from(index + 1).unwrap_or(u32::MAX))
    }
}

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// Free text (phrases, probe tokens, detail strings).
    Str(String),
    /// Counters and sizes.
    U64(u64),
    /// Scores and rates.
    F64(f64),
    /// Flags.
    Bool(bool),
}

impl fmt::Display for TraceValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceValue::Str(s) => write!(f, "{s:?}"),
            TraceValue::U64(v) => write!(f, "{v}"),
            TraceValue::F64(v) => write!(f, "{v}"),
            TraceValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for TraceValue {
    fn from(v: &str) -> Self {
        TraceValue::Str(v.to_string())
    }
}

impl From<String> for TraceValue {
    fn from(v: String) -> Self {
        TraceValue::Str(v)
    }
}

impl From<u64> for TraceValue {
    fn from(v: u64) -> Self {
        TraceValue::U64(v)
    }
}

impl From<usize> for TraceValue {
    fn from(v: usize) -> Self {
        TraceValue::U64(v as u64)
    }
}

impl From<f64> for TraceValue {
    fn from(v: f64) -> Self {
        TraceValue::F64(v)
    }
}

impl From<bool> for TraceValue {
    fn from(v: bool) -> Self {
        TraceValue::Bool(v)
    }
}

/// Where the pipeline reports its spans.
///
/// Every method has an empty default body, so [`NoopSink`] is `impl TraceSink
/// for NoopSink {}` and the compiler sees trivially inlinable no-ops.
/// Implementations must be [`Sync`]: the lookup step's shard fan-out reports
/// probe sub-spans from scoped helper threads.
pub trait TraceSink: Sync {
    /// Whether spans are actually recorded.  Instrumentation sites must
    /// guard all allocation (field values, cloned tokens) behind this.
    fn enabled(&self) -> bool {
        false
    }

    /// Opens a span under `parent` (or a root span for [`SpanId::NONE`]) and
    /// returns its id.
    fn begin_span(&self, _name: &'static str, _parent: SpanId) -> SpanId {
        SpanId::NONE
    }

    /// Closes a span opened by [`begin_span`](Self::begin_span).
    fn end_span(&self, _span: SpanId) {}

    /// Records an already-measured span in one call — used for aggregate
    /// stages whose time accumulates across a loop (tables/filters/sqlgen
    /// run once per solution) and cannot bracket a single live span.
    fn record_span(
        &self,
        _name: &'static str,
        _parent: SpanId,
        _duration: Duration,
        _fields: Vec<(&'static str, TraceValue)>,
    ) {
    }

    /// Attaches a field to a live span.
    fn annotate(&self, _span: SpanId, _key: &'static str, _value: TraceValue) {}

    /// Records an instantaneous event under `parent`.
    fn event(
        &self,
        _name: &'static str,
        _parent: SpanId,
        _fields: Vec<(&'static str, TraceValue)>,
    ) {
    }
}

/// The disabled sink: every method is the trait's empty default and
/// [`enabled`](TraceSink::enabled) reports `false`, so guarded
/// instrumentation sites skip all field construction.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TraceSink for NoopSink {}

/// One entry of the collecting sink's flat span log.
#[derive(Debug, Clone)]
struct Record {
    name: &'static str,
    parent: SpanId,
    start: Duration,
    duration: Option<Duration>,
    event: bool,
    fields: Vec<(&'static str, TraceValue)>,
}

/// A recording [`TraceSink`]: appends spans to a flat log under a mutex and
/// folds them into a [`QueryTrace`] tree on [`finish`](Self::finish).
///
/// One sink records one query; timestamps are offsets from its construction.
#[derive(Debug)]
pub struct CollectingSink {
    started: Instant,
    records: Mutex<Vec<Record>>,
}

impl Default for CollectingSink {
    fn default() -> Self {
        Self::new()
    }
}

impl CollectingSink {
    /// A fresh sink; span offsets count from this moment.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            records: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Record>> {
        self.records.lock().expect("trace sink poisoned")
    }

    /// Folds the recorded spans into a tree.  Spans never closed (a
    /// panicking pipeline) are ended at the fold instant.
    pub fn finish(self) -> QueryTrace {
        let now = self.started.elapsed();
        let records = self.records.into_inner().expect("trace sink poisoned");
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); records.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, record) in records.iter().enumerate() {
            match record.parent.index() {
                Some(p) if p < records.len() => children[p].push(i),
                _ => roots.push(i),
            }
        }
        fn build(index: usize, records: &[Record], children: &[Vec<usize>], now: Duration) -> Span {
            let record = &records[index];
            Span {
                name: record.name.to_string(),
                start: record.start,
                duration: record
                    .duration
                    .unwrap_or_else(|| now.saturating_sub(record.start)),
                event: record.event,
                fields: record
                    .fields
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
                children: children[index]
                    .iter()
                    .map(|&c| build(c, records, children, now))
                    .collect(),
            }
        }
        QueryTrace {
            roots: roots
                .iter()
                .map(|&r| build(r, &records, &children, now))
                .collect(),
            total: now,
        }
    }
}

impl TraceSink for CollectingSink {
    fn enabled(&self) -> bool {
        true
    }

    fn begin_span(&self, name: &'static str, parent: SpanId) -> SpanId {
        let start = self.started.elapsed();
        let mut records = self.lock();
        let id = SpanId::from_index(records.len());
        records.push(Record {
            name,
            parent,
            start,
            duration: None,
            event: false,
            fields: Vec::new(),
        });
        id
    }

    fn end_span(&self, span: SpanId) {
        let now = self.started.elapsed();
        let Some(index) = span.index() else { return };
        let mut records = self.lock();
        if let Some(record) = records.get_mut(index) {
            record.duration = Some(now.saturating_sub(record.start));
        }
    }

    fn record_span(
        &self,
        name: &'static str,
        parent: SpanId,
        duration: Duration,
        fields: Vec<(&'static str, TraceValue)>,
    ) {
        let now = self.started.elapsed();
        self.lock().push(Record {
            name,
            parent,
            start: now.saturating_sub(duration),
            duration: Some(duration),
            event: false,
            fields,
        });
    }

    fn annotate(&self, span: SpanId, key: &'static str, value: TraceValue) {
        let Some(index) = span.index() else { return };
        let mut records = self.lock();
        if let Some(record) = records.get_mut(index) {
            record.fields.push((key, value));
        }
    }

    fn event(&self, name: &'static str, parent: SpanId, fields: Vec<(&'static str, TraceValue)>) {
        let now = self.started.elapsed();
        self.lock().push(Record {
            name,
            parent,
            start: now,
            duration: Some(Duration::ZERO),
            event: true,
            fields,
        });
    }
}

/// One node of a folded trace: a named, timed span with fields and children.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Span name (see [`crate::names`] for the engine's vocabulary).
    pub name: String,
    /// Offset from the sink's construction.
    pub start: Duration,
    /// How long the span ran (zero for events).
    pub duration: Duration,
    /// True for instantaneous events.
    pub event: bool,
    /// Attached fields, in recording order.
    pub fields: Vec<(String, TraceValue)>,
    /// Child spans, in recording order.
    pub children: Vec<Span>,
}

impl Span {
    /// The value of a field, if present.
    pub fn field(&self, key: &str) -> Option<&TraceValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// First descendant (self included) with the given name, depth-first.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// The folded span tree of one traced query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Top-level spans (normally a single `query` root).
    pub roots: Vec<Span>,
    /// Wall time between sink construction and fold.
    pub total: Duration,
}

impl QueryTrace {
    /// First span with the given name, depth-first across the roots.
    pub fn find(&self, name: &str) -> Option<&Span> {
        self.roots.iter().find_map(|r| r.find(name))
    }

    /// Every span in the tree, depth-first.
    pub fn all_spans(&self) -> Vec<&Span> {
        fn visit<'a>(span: &'a Span, out: &mut Vec<&'a Span>) {
            out.push(span);
            for child in &span.children {
                visit(child, out);
            }
        }
        let mut out = Vec::new();
        for root in &self.roots {
            visit(root, &mut out);
        }
        out
    }

    /// Sum of the durations of every span with the given name.
    pub fn sum_durations(&self, name: &str) -> Duration {
        self.all_spans()
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration)
            .sum()
    }

    /// Renders the tree as indented ASCII, one span per line:
    /// name, duration, then `key=value` fields.
    pub fn render(&self) -> String {
        fn line(span: &Span, prefix: &str, last: bool, top: bool, out: &mut String) {
            let connector = if top {
                ""
            } else if last {
                "└─ "
            } else {
                "├─ "
            };
            out.push_str(prefix);
            out.push_str(connector);
            out.push_str(&span.name);
            if !span.event {
                out.push(' ');
                out.push_str(&format_duration(span.duration));
            }
            for (key, value) in &span.fields {
                out.push(' ');
                out.push_str(key);
                out.push('=');
                out.push_str(&value.to_string());
            }
            out.push('\n');
            let child_prefix = if top {
                String::new()
            } else {
                format!("{prefix}{}", if last { "   " } else { "│  " })
            };
            for (i, child) in span.children.iter().enumerate() {
                line(
                    child,
                    &child_prefix,
                    i + 1 == span.children.len(),
                    false,
                    out,
                );
            }
        }
        let mut out = String::new();
        for (i, root) in self.roots.iter().enumerate() {
            line(root, "", i + 1 == self.roots.len(), true, &mut out);
        }
        out
    }

    /// Serialises the tree as JSON (hand-rolled — the workspace has no JSON
    /// dependency): `{"total_ns": .., "spans": [..]}` with each span carrying
    /// `name`, `start_ns`, `duration_ns`, `event`, `fields` and `children`.
    pub fn to_json(&self) -> String {
        fn write_span(span: &Span, out: &mut String) {
            out.push_str("{\"name\":");
            write_json_string(&span.name, out);
            out.push_str(&format!(
                ",\"start_ns\":{},\"duration_ns\":{},\"event\":{}",
                span.start.as_nanos(),
                span.duration.as_nanos(),
                span.event
            ));
            out.push_str(",\"fields\":{");
            for (i, (key, value)) in span.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(key, out);
                out.push(':');
                match value {
                    TraceValue::Str(s) => write_json_string(s, out),
                    TraceValue::U64(v) => out.push_str(&v.to_string()),
                    TraceValue::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
                    TraceValue::F64(_) => out.push_str("null"),
                    TraceValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                }
            }
            out.push_str("},\"children\":[");
            for (i, child) in span.children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_span(child, out);
            }
            out.push_str("]}");
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"total_ns\":{},\"spans\":[",
            self.total.as_nanos()
        ));
        for (i, root) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_span(root, &mut out);
        }
        out.push_str("]}");
        out
    }
}

/// JSON string literal with the mandatory escapes.
fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Human-readable duration: picks ns/µs/ms/s by magnitude.
pub fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", nanos as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_disabled_and_inert() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        let id = sink.begin_span("query", SpanId::NONE);
        assert!(id.is_none());
        sink.annotate(id, "k", TraceValue::U64(1));
        sink.end_span(id);
    }

    #[test]
    fn collecting_sink_builds_a_tree() {
        let sink = CollectingSink::new();
        let root = sink.begin_span("query", SpanId::NONE);
        let child = sink.begin_span("lookup", root);
        sink.annotate(child, "phrases", TraceValue::U64(2));
        sink.end_span(child);
        sink.record_span(
            "tables",
            root,
            Duration::from_micros(5),
            vec![("solutions", TraceValue::U64(3))],
        );
        sink.event("note", root, vec![("detail", TraceValue::from("hi"))]);
        sink.end_span(root);
        let trace = sink.finish();
        assert_eq!(trace.roots.len(), 1);
        let query = &trace.roots[0];
        assert_eq!(query.name, "query");
        assert_eq!(query.children.len(), 3);
        let lookup = trace.find("lookup").expect("lookup span");
        assert_eq!(lookup.field("phrases"), Some(&TraceValue::U64(2)));
        let tables = trace.find("tables").expect("tables span");
        assert_eq!(tables.duration, Duration::from_micros(5));
        assert!(trace.find("note").expect("event").event);
        assert!(trace.find("missing").is_none());
    }

    #[test]
    fn unclosed_spans_end_at_finish() {
        let sink = CollectingSink::new();
        let root = sink.begin_span("query", SpanId::NONE);
        let _ = sink.begin_span("lookup", root);
        let trace = sink.finish();
        let lookup = trace.find("lookup").expect("lookup span");
        assert!(lookup.duration <= trace.total);
    }

    #[test]
    fn render_and_json_cover_every_span() {
        let sink = CollectingSink::new();
        let root = sink.begin_span("query", SpanId::NONE);
        let probe = sink.begin_span("probe", root);
        sink.annotate(probe, "phrase", TraceValue::from("zu\"rich"));
        sink.end_span(probe);
        sink.end_span(root);
        let trace = sink.finish();
        let rendered = trace.render();
        assert!(rendered.contains("query"));
        assert!(rendered.contains("└─ probe"));
        let json = trace.to_json();
        assert!(json.contains("\"name\":\"query\""));
        assert!(json.contains("zu\\\"rich"));
        assert!(json.starts_with("{\"total_ns\":"));
    }

    #[test]
    fn sum_durations_aggregates_same_named_spans() {
        let sink = CollectingSink::new();
        let root = sink.begin_span("query", SpanId::NONE);
        sink.record_span("probe_shard", root, Duration::from_micros(2), Vec::new());
        sink.record_span("probe_shard", root, Duration::from_micros(3), Vec::new());
        sink.end_span(root);
        let trace = sink.finish();
        assert_eq!(trace.sum_durations("probe_shard"), Duration::from_micros(5));
    }

    #[test]
    fn format_duration_picks_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.0µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00s");
    }
}
