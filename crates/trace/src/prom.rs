//! Minimal Prometheus text exposition (version 0.0.4): a writer the service
//! uses to render `metrics_text()`, and a validator the golden tests use to
//! keep that surface well-formed and stable.
//!
//! Only the subset the workspace emits is supported — `counter`, `gauge` and
//! `histogram` families, labels, no timestamps — but the validator checks
//! real exposition-format invariants: metric/label name syntax, `# TYPE`
//! declared before samples, histogram bucket monotonicity and the mandatory
//! `+Inf` bucket / `_sum` / `_count` triple.
//!
//! Histogram buckets may carry **OpenMetrics exemplars** — a sampled trace
//! id pinned to the bucket, `… # {trace_id="<hex>"} <value>` — which the
//! writer emits from [`LogHistogram`] exemplars and the validator parses
//! and polices: a malformed payload or an exemplar on a non-bucket sample
//! is rejected.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::hist::LogHistogram;

/// Metric family kinds the writer emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone lifetime counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Log-bucketed latency histogram.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Builds one exposition document: `# HELP` / `# TYPE` headers followed by
/// samples, in the order the caller writes them.
#[derive(Debug, Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the `# HELP` and `# TYPE` headers of one metric family.
    pub fn header(&mut self, name: &str, help: &str, kind: MetricKind) {
        debug_assert!(valid_metric_name(name), "invalid metric name {name}");
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {}", kind.as_str());
    }

    /// Writes one sample with optional labels.
    pub fn value(&mut self, name: &str, labels: &[(&str, String)], value: f64) {
        self.out.push_str(name);
        write_labels(&mut self.out, labels);
        let _ = writeln!(self.out, " {}", format_value(value));
    }

    /// Writes one integer-valued sample (counters, exact gauges).
    pub fn int_value(&mut self, name: &str, labels: &[(&str, String)], value: u64) {
        self.out.push_str(name);
        write_labels(&mut self.out, labels);
        let _ = writeln!(self.out, " {value}");
    }

    /// Writes a [`LogHistogram`] as a Prometheus histogram in **seconds**:
    /// one cumulative `_bucket` line per non-empty bucket plus the mandatory
    /// `+Inf` bucket, then `_sum` and `_count`.  `labels` are attached to
    /// every line (with `le` appended on the buckets).  Buckets holding an
    /// exemplar get it appended in OpenMetrics syntax:
    /// `… # {trace_id="<hex>"} <observed_seconds>`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, String)], hist: &LogHistogram) {
        let exemplars: std::collections::BTreeMap<u64, &crate::hist::Exemplar> =
            hist.exemplars().collect();
        for (upper_nanos, cumulative) in hist.cumulative_buckets() {
            self.out.push_str(name);
            self.out.push_str("_bucket");
            let mut with_le = labels.to_vec();
            let le = format_value(upper_nanos as f64 / 1e9);
            with_le.push(("le", le));
            write_labels(&mut self.out, &with_le);
            let _ = write!(self.out, " {cumulative}");
            if let Some(exemplar) = exemplars.get(&upper_nanos) {
                let _ = write!(
                    self.out,
                    " # {{trace_id=\"{}\"}} {}",
                    exemplar.trace_id,
                    format_value(exemplar.value_nanos as f64 / 1e9)
                );
            }
            self.out.push('\n');
        }
        self.out.push_str(name);
        self.out.push_str("_bucket");
        let mut with_le = labels.to_vec();
        with_le.push(("le", "+Inf".to_string()));
        write_labels(&mut self.out, &with_le);
        let _ = writeln!(self.out, " {}", hist.count());
        self.out.push_str(name);
        self.out.push_str("_sum");
        write_labels(&mut self.out, labels);
        let _ = writeln!(self.out, " {}", format_value(hist.sum().as_secs_f64()));
        self.out.push_str(name);
        self.out.push_str("_count");
        write_labels(&mut self.out, labels);
        let _ = writeln!(self.out, " {}", hist.count());
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

fn write_labels(out: &mut String, labels: &[(&str, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        debug_assert!(valid_label_name(key), "invalid label name {key}");
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        for c in value.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
}

/// Renders an f64 the exposition format accepts (Rust's `Display` never
/// produces exponents for finite values).
fn format_value(value: f64) -> String {
    if value.is_infinite() {
        if value > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if value.is_nan() {
        "NaN".to_string()
    } else {
        format!("{value}")
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// One parsed sample line.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
    /// Whether the line carried an (already syntax-checked) exemplar.
    exemplar: bool,
    line_no: usize,
}

/// Validates an exposition document (see the module docs for what is
/// checked).  Returns the first problem found, with its line number.
pub fn validate(text: &str) -> Result<(), String> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    let mut samples: Vec<Sample> = Vec::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without metric name"))?;
                let kind = parts
                    .next()
                    .ok_or_else(|| format!("line {line_no}: TYPE without kind"))?;
                if parts.next().is_some() {
                    return Err(format!("line {line_no}: trailing tokens after TYPE"));
                }
                if !valid_metric_name(name) {
                    return Err(format!("line {line_no}: invalid metric name {name}"));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(format!("line {line_no}: unknown metric kind {kind}"));
                }
                if samples.iter().any(|s| family_of(&s.name, &types) == name) {
                    return Err(format!("line {line_no}: TYPE for {name} after its samples"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return Err(format!("line {line_no}: duplicate TYPE for {name}"));
                }
            }
            // HELP lines and free-form comments pass through unchecked.
            continue;
        }
        samples.push(parse_sample(line, line_no)?);
    }

    // Every sample must belong to a declared family (histogram children
    // resolve through their `_bucket` / `_sum` / `_count` suffix).
    for sample in &samples {
        let family = family_of(&sample.name, &types);
        match types.get(family) {
            None => {
                return Err(format!(
                    "line {}: sample {} has no # TYPE declaration",
                    sample.line_no, sample.name
                ))
            }
            Some(kind) if kind == "histogram" => {
                if sample.name == format!("{family}_bucket")
                    && !sample.labels.iter().any(|(k, _)| k == "le")
                {
                    return Err(format!(
                        "line {}: histogram bucket without le label",
                        sample.line_no
                    ));
                }
                if sample.name == *family {
                    return Err(format!(
                        "line {}: bare sample for histogram family {family}",
                        sample.line_no
                    ));
                }
                // Exemplars are legal on bucket lines only — not on the
                // `_sum` / `_count` children.
                if sample.exemplar && sample.name != format!("{family}_bucket") {
                    return Err(format!(
                        "line {}: exemplar on non-bucket histogram sample {}",
                        sample.line_no, sample.name
                    ));
                }
            }
            Some(_) => {
                if sample.exemplar {
                    return Err(format!(
                        "line {}: exemplar on non-histogram family {family}",
                        sample.line_no
                    ));
                }
            }
        }
    }

    // Histogram series invariants, grouped by family + labels-minus-le.
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let bucket_name = format!("{family}_bucket");
        let mut series: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
        for sample in samples.iter().filter(|s| s.name == bucket_name) {
            let le = sample
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.clone())
                .unwrap_or_default();
            let le = parse_float(&le)
                .ok_or_else(|| format!("line {}: unparsable le {le}", sample.line_no))?;
            let key = label_key(&sample.labels);
            series.entry(key).or_default().push((le, sample.value));
        }
        if series.is_empty() {
            return Err(format!("histogram {family} has no buckets"));
        }
        for (key, buckets) in &series {
            for pair in buckets.windows(2) {
                if pair[1].0 <= pair[0].0 {
                    return Err(format!("histogram {family}{{{key}}}: le not increasing"));
                }
                if pair[1].1 < pair[0].1 {
                    return Err(format!(
                        "histogram {family}{{{key}}}: cumulative count decreased"
                    ));
                }
            }
            let last = buckets.last().expect("non-empty series");
            if !last.0.is_infinite() {
                return Err(format!("histogram {family}{{{key}}}: missing +Inf bucket"));
            }
            let total = last.1;
            let count = samples
                .iter()
                .find(|s| s.name == format!("{family}_count") && label_key(&s.labels) == *key)
                .ok_or_else(|| format!("histogram {family}{{{key}}}: missing _count"))?;
            if (count.value - total).abs() > f64::EPSILON {
                return Err(format!(
                    "histogram {family}{{{key}}}: _count {} != +Inf bucket {total}",
                    count.value
                ));
            }
            if !samples
                .iter()
                .any(|s| s.name == format!("{family}_sum") && label_key(&s.labels) == *key)
            {
                return Err(format!("histogram {family}{{{key}}}: missing _sum"));
            }
        }
    }
    Ok(())
}

/// The family a sample name belongs to: histogram children map onto their
/// declared base family, everything else is its own family.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).is_some_and(|k| k == "histogram") {
                return base;
            }
        }
    }
    name
}

/// Canonical key of a label set with `le` removed (histogram grouping).
fn label_key(labels: &[(String, String)]) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .filter(|(k, _)| k != "le")
        .map(|(k, v)| format!("{k}={v:?}"))
        .collect();
    pairs.sort();
    pairs.join(",")
}

fn parse_float(s: &str) -> Option<f64> {
    match s {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        s => s.parse().ok(),
    }
}

fn parse_sample(line: &str, line_no: usize) -> Result<Sample, String> {
    let (name_end, has_labels) = line
        .char_indices()
        .find(|&(_, c)| c == '{' || c.is_whitespace())
        .map(|(i, c)| (i, c == '{'))
        .ok_or_else(|| format!("line {line_no}: sample without value"))?;
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("line {line_no}: invalid metric name {name}"));
    }
    let mut labels = Vec::new();
    let rest = if has_labels {
        let body_and_rest = &line[name_end + 1..];
        let close = find_label_close(body_and_rest)
            .ok_or_else(|| format!("line {line_no}: unterminated label set"))?;
        parse_labels(&body_and_rest[..close], line_no, &mut labels)?;
        &body_and_rest[close + 1..]
    } else {
        &line[name_end..]
    };
    let rest = rest.trim_start();
    let value_end = rest.find(char::is_whitespace).unwrap_or(rest.len());
    let value_text = &rest[..value_end];
    if value_text.is_empty() {
        return Err(format!("line {line_no}: sample without value"));
    }
    let value = parse_float(value_text)
        .ok_or_else(|| format!("line {line_no}: unparsable value {value_text}"))?;
    let after = rest[value_end..].trim_start();
    let exemplar = if after.is_empty() {
        false
    } else if let Some(payload) = after.strip_prefix('#') {
        parse_exemplar(payload.trim_start(), line_no)?;
        true
    } else {
        return Err(format!("line {line_no}: trailing tokens after value"));
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
        exemplar,
        line_no,
    })
}

/// Syntax-checks one OpenMetrics exemplar payload — everything after the
/// `#` of `… # {trace_id="<hex>"} <value>`: a label set that must contain
/// `trace_id`, then exactly one parsable value.
fn parse_exemplar(payload: &str, line_no: usize) -> Result<(), String> {
    let body_and_rest = payload
        .strip_prefix('{')
        .ok_or_else(|| format!("line {line_no}: exemplar without a label set"))?;
    let close = find_label_close(body_and_rest)
        .ok_or_else(|| format!("line {line_no}: unterminated exemplar label set"))?;
    let mut labels = Vec::new();
    parse_labels(&body_and_rest[..close], line_no, &mut labels)?;
    if !labels.iter().any(|(k, _)| k == "trace_id") {
        return Err(format!("line {line_no}: exemplar without a trace_id label"));
    }
    let mut parts = body_and_rest[close + 1..].split_whitespace();
    let value = parts
        .next()
        .ok_or_else(|| format!("line {line_no}: exemplar without a value"))?;
    parse_float(value)
        .ok_or_else(|| format!("line {line_no}: unparsable exemplar value {value}"))?;
    if parts.next().is_some() {
        return Err(format!(
            "line {line_no}: trailing tokens after exemplar value"
        ));
    }
    Ok(())
}

/// Index of the `}` closing a label set, honouring quoted strings and
/// escapes.  `body` starts just after the opening `{`.
fn find_label_close(body: &str) -> Option<usize> {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in body.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '}' if !in_string => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(body: &str, line_no: usize, out: &mut Vec<(String, String)>) -> Result<(), String> {
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without ="))?;
        let key = rest[..eq].trim();
        if !valid_label_name(key) {
            return Err(format!("line {line_no}: invalid label name {key}"));
        }
        let after = rest[eq + 1..].trim_start();
        if !after.starts_with('"') {
            return Err(format!("line {line_no}: unquoted label value"));
        }
        let mut value = String::new();
        let mut escaped = false;
        let mut end = None;
        for (i, c) in after.char_indices().skip(1) {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    c => c,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        out.push((key.to_string(), value));
        rest = after[end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("line {line_no}: expected , between labels"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn writer_output_validates() {
        let mut hist = LogHistogram::new();
        for ms in [1u64, 2, 2, 50] {
            hist.record(Duration::from_millis(ms));
        }
        let mut w = PromWriter::new();
        w.header(
            "soda_queries_total",
            "Queries answered.",
            MetricKind::Counter,
        );
        w.int_value("soda_queries_total", &[], 4);
        w.header("soda_queue_depth", "Jobs waiting.", MetricKind::Gauge);
        w.value("soda_queue_depth", &[], 0.0);
        w.header(
            "soda_stage_duration_seconds",
            "Per-stage latency.",
            MetricKind::Histogram,
        );
        w.histogram(
            "soda_stage_duration_seconds",
            &[("stage", "lookup".to_string())],
            &hist,
        );
        let text = w.finish();
        validate(&text).expect("writer output must validate");
        assert!(text.contains("soda_stage_duration_seconds_bucket{stage=\"lookup\",le=\"+Inf\"} 4"));
        assert!(text.contains("soda_stage_duration_seconds_count{stage=\"lookup\"} 4"));
    }

    #[test]
    fn empty_histogram_still_validates() {
        let mut w = PromWriter::new();
        w.header("x_seconds", "Empty.", MetricKind::Histogram);
        w.histogram("x_seconds", &[], &LogHistogram::new());
        validate(&w.finish()).expect("empty histogram is well-formed");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut w = PromWriter::new();
        w.header("x_total", "Escapes.", MetricKind::Counter);
        w.int_value("x_total", &[("detail", "a\"b\\c\nd".to_string())], 1);
        let text = w.finish();
        assert!(text.contains("detail=\"a\\\"b\\\\c\\nd\""));
        validate(&text).expect("escaped labels must validate");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        // Sample without TYPE.
        assert!(validate("untyped_metric 1\n").is_err());
        // TYPE after sample.
        assert!(validate("# TYPE a counter\na 1\n# TYPE b counter\nb 1\n").is_ok());
        assert!(validate("a 1\n# TYPE a counter\n").is_err());
        // Duplicate TYPE.
        assert!(validate("# TYPE a counter\n# TYPE a counter\na 1\n").is_err());
        // Unknown kind.
        assert!(validate("# TYPE a widget\na 1\n").is_err());
        // Bad metric name.
        assert!(validate("# TYPE a counter\n9bad 1\n").is_err());
        // Unparsable value.
        assert!(validate("# TYPE a counter\na wat\n").is_err());
        // Histogram with no buckets.
        assert!(validate("# TYPE h histogram\nh_sum 0\nh_count 0\n").is_err());
        // Histogram missing +Inf.
        assert!(
            validate("# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n").is_err()
        );
        // Histogram bucket counts decreasing.
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n"
        )
        .is_err());
        // _count disagreeing with +Inf.
        assert!(
            validate("# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 1\n").is_err()
        );
    }

    #[test]
    fn validator_accepts_a_correct_histogram() {
        let text = "# HELP h latency\n# TYPE h histogram\n\
                    h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.3\nh_count 2\n";
        validate(text).expect("well-formed histogram");
    }

    #[test]
    fn writer_emits_exemplars_that_validate() {
        let mut hist = LogHistogram::new();
        hist.record(Duration::from_millis(2));
        hist.record(Duration::from_millis(50));
        hist.annotate_exemplar(Duration::from_millis(50), "deadbeefcafef00d");
        let mut w = PromWriter::new();
        w.header("soda_x_seconds", "Latency.", MetricKind::Histogram);
        w.histogram("soda_x_seconds", &[("tenant", "acme".to_string())], &hist);
        let text = w.finish();
        validate(&text).expect("exemplar output must validate");
        assert!(
            text.contains("# {trace_id=\"deadbeefcafef00d\"} 0.05"),
            "{text}"
        );
        // Only the bucket the exemplar landed in carries it.
        assert_eq!(text.matches("trace_id=").count(), 1, "{text}");
    }

    #[test]
    fn validator_accepts_a_correct_exemplar() {
        let text = "# TYPE h histogram\n\
                    h_bucket{le=\"0.1\"} 1 # {trace_id=\"abc123\"} 0.07\n\
                    h_bucket{le=\"+Inf\"} 1\nh_sum 0.07\nh_count 1\n";
        validate(text).expect("well-formed exemplar");
    }

    #[test]
    fn validator_rejects_malformed_exemplars() {
        // No label set after the #.
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # 0.07\nh_sum 0.07\nh_count 1\n"
        )
        .is_err());
        // Unterminated exemplar label set.
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"x\" 0.07\nh_sum 0.07\nh_count 1\n"
        )
        .is_err());
        // Missing trace_id label.
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {span=\"x\"} 0.07\nh_sum 0.07\nh_count 1\n"
        )
        .is_err());
        // Missing exemplar value.
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"x\"}\nh_sum 0.07\nh_count 1\n"
        )
        .is_err());
        // Unparsable exemplar value.
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"x\"} wat\nh_sum 0.07\nh_count 1\n"
        )
        .is_err());
        // Trailing tokens after the exemplar value.
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"x\"} 0.07 extra\nh_sum 0.07\nh_count 1\n"
        )
        .is_err());
    }

    #[test]
    fn validator_rejects_exemplars_outside_histogram_buckets() {
        // Exemplar on a counter family.
        assert!(
            validate("# TYPE a counter\na 1 # {trace_id=\"x\"} 0.5\n").is_err(),
            "counters must not carry exemplars"
        );
        // Exemplar on a histogram's _sum child.
        assert!(validate(
            "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\n\
             h_sum 0.07 # {trace_id=\"x\"} 0.07\nh_count 1\n"
        )
        .is_err());
        // Plain trailing garbage is still rejected.
        assert!(validate("# TYPE a counter\na 1 extra\n").is_err());
    }
}
