//! Adaptive trace sampling: the decision kernel behind always-on tracing.
//!
//! A [`Sampler`] answers two questions for every query the service serves:
//!
//! 1. **Head sampling** ([`Sampler::head_sample`]) — *before* execution,
//!    should this query carry a recording sink?  The decision is
//!    probabilistic with a configured rate, but **deterministic given the
//!    seed and the call sequence**: the nth call of a sampler seeded `s`
//!    always returns the same decision and the same [`TraceId`], so test
//!    runs and incident reproductions see identical sampling behaviour.
//! 2. **Tail retention** ([`Sampler::decide`]) — *after* execution, should
//!    the captured span tree be kept?  Head-sampled queries are always
//!    kept; on top of that, [`TailRules`] force retention of queries that
//!    were slow in absolute terms or anomalous relative to the sampler's
//!    running mean — the traces an operator actually wants are exactly the
//!    ones uniform sampling is most likely to miss.
//!
//! The cost contract mirrors the rest of the crate: an unsampled query pays
//! one atomic increment and one 64-bit mix (a handful of nanoseconds); all
//! allocation happens only on the sampled path.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// SplitMix64: a statistically solid 64-bit mixer, used both to derive the
/// per-call pseudo-random draw and to expand it into a trace id.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A 64-bit trace identifier, rendered as 16 lowercase hex digits — the
/// value carried into histogram exemplars and the sampled-trace rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Tail-based "always keep" rules applied after a query finishes.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TailRules {
    /// Keep any query at or above this end-to-end latency.
    pub slow: Option<Duration>,
    /// Keep any query slower than `factor ×` the sampler's running mean
    /// latency (once `anomaly_min_samples` have been observed).
    pub anomaly_factor: Option<f64>,
    /// Observations required before the anomaly rule can fire — a cold
    /// mean of one sample would flag half of all traffic.
    pub anomaly_min_samples: u64,
}

impl TailRules {
    /// True when any tail rule is configured.
    pub fn enabled(&self) -> bool {
        self.slow.is_some() || self.anomaly_factor.is_some()
    }
}

/// Why a trace was retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleReason {
    /// The head-sampling coin flip selected it before execution.
    Head,
    /// The tail rule for absolute slowness retained it.
    TailSlow,
    /// The tail rule for relative anomaly retained it.
    TailAnomaly,
}

impl SampleReason {
    /// Stable lowercase label for logs and metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            SampleReason::Head => "head",
            SampleReason::TailSlow => "tail_slow",
            SampleReason::TailAnomaly => "tail_anomaly",
        }
    }
}

/// The pre-execution half of a sampling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeadDecision {
    /// Whether the head coin flip selected this query.
    pub sampled: bool,
    /// The trace id assigned to this query (also issued when unsampled, so
    /// a tail-retained trace still has a stable id).
    pub trace_id: TraceId,
}

/// A deterministic, lock-free adaptive sampler (see the module docs).
#[derive(Debug)]
pub struct Sampler {
    seed: u64,
    /// `rate × 2^64` — a `u128` so a rate of exactly 1.0 (threshold
    /// `2^64`) strictly exceeds every `u64` draw and always samples.
    threshold: u128,
    rate: f64,
    calls: AtomicU64,
    tail: TailRules,
    observed_count: AtomicU64,
    observed_sum_nanos: AtomicU64,
}

impl Sampler {
    /// A sampler with the given seed and head-sampling rate (clamped to
    /// `[0, 1]`) and no tail rules.
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate = if rate.is_nan() {
            0.0
        } else {
            rate.clamp(0.0, 1.0)
        };
        Self {
            seed,
            threshold: (rate * 2f64.powi(64)) as u128,
            rate,
            calls: AtomicU64::new(0),
            tail: TailRules::default(),
            observed_count: AtomicU64::new(0),
            observed_sum_nanos: AtomicU64::new(0),
        }
    }

    /// Attaches tail retention rules.
    pub fn with_tail(mut self, tail: TailRules) -> Self {
        self.tail = tail;
        self
    }

    /// The configured head-sampling rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// True when any tail rule can retain an unsampled query — i.e. when
    /// the caller must record spans even for head-unsampled queries.
    pub fn tail_enabled(&self) -> bool {
        self.tail.enabled()
    }

    /// Draws the nth head-sampling decision.  Deterministic: the sequence
    /// of `(sampled, trace_id)` pairs is a pure function of the seed.
    pub fn head_sample(&self) -> HeadDecision {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let draw = splitmix64(self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        HeadDecision {
            sampled: u128::from(draw) < self.threshold,
            trace_id: TraceId(splitmix64(draw) | 1),
        }
    }

    /// Post-execution retention decision: feeds the running latency mean
    /// and returns `Some(reason)` when the trace should be kept.
    ///
    /// The anomaly comparison uses the mean of the observations *before*
    /// this one, so a single call sequence is deterministic and the first
    /// queries of a fresh sampler can never flag themselves.
    pub fn decide(&self, head_sampled: bool, latency: Duration) -> Option<SampleReason> {
        let nanos = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        let prior_sum = self.observed_sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        let prior_count = self.observed_count.fetch_add(1, Ordering::Relaxed);
        if head_sampled {
            return Some(SampleReason::Head);
        }
        if let Some(slow) = self.tail.slow {
            if latency >= slow {
                return Some(SampleReason::TailSlow);
            }
        }
        if let Some(factor) = self.tail.anomaly_factor {
            if prior_count >= self.tail.anomaly_min_samples.max(1) {
                let mean = prior_sum as f64 / prior_count as f64;
                if nanos as f64 > factor * mean {
                    return Some(SampleReason::TailAnomaly);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn rate_zero_never_samples_and_rate_one_always_does() {
        let never = Sampler::new(7, 0.0);
        let always = Sampler::new(7, 1.0);
        for _ in 0..1000 {
            assert!(!never.head_sample().sampled);
            assert!(always.head_sample().sampled);
        }
    }

    #[test]
    fn trace_ids_are_nonzero_and_render_as_16_hex_digits() {
        let s = Sampler::new(99, 0.5);
        for _ in 0..100 {
            let d = s.head_sample();
            assert_ne!(d.trace_id.0, 0);
            let text = d.trace_id.to_string();
            assert_eq!(text.len(), 16);
            assert!(text.chars().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn head_sampled_queries_are_always_kept() {
        let s = Sampler::new(1, 1.0);
        assert_eq!(
            s.decide(true, Duration::from_micros(1)),
            Some(SampleReason::Head)
        );
    }

    #[test]
    fn anomaly_rule_flags_outliers_against_the_running_mean() {
        let s = Sampler::new(1, 0.0).with_tail(TailRules {
            slow: None,
            anomaly_factor: Some(3.0),
            anomaly_min_samples: 4,
        });
        // Establish a ~1ms mean.
        for _ in 0..8 {
            assert_eq!(s.decide(false, Duration::from_millis(1)), None);
        }
        // 10ms is 10× the mean: retained as an anomaly.
        assert_eq!(
            s.decide(false, Duration::from_millis(10)),
            Some(SampleReason::TailAnomaly)
        );
        // Back at the mean: not retained (the outlier nudged the mean up,
        // but 1ms stays well under 3×).
        assert_eq!(s.decide(false, Duration::from_millis(1)), None);
    }

    #[test]
    fn anomaly_rule_waits_for_min_samples() {
        let s = Sampler::new(1, 0.0).with_tail(TailRules {
            slow: None,
            anomaly_factor: Some(2.0),
            anomaly_min_samples: 10,
        });
        assert_eq!(s.decide(false, Duration::from_nanos(1)), None);
        // Far above the 1ns "mean", but only one observation so far.
        assert_eq!(s.decide(false, Duration::from_secs(1)), None);
    }

    proptest! {
        /// Two samplers with the same seed and rate produce identical
        /// decision and trace-id sequences — sampling is reproducible.
        #[test]
        fn same_seed_gives_identical_sequences(seed in any::<u64>(), rate in 0.0f64..1.0) {
            let a = Sampler::new(seed, rate);
            let b = Sampler::new(seed, rate);
            for _ in 0..256 {
                prop_assert_eq!(a.head_sample(), b.head_sample());
            }
        }

        /// The observed head rate lands within a loose tolerance of the
        /// configured rate over a few thousand draws.
        #[test]
        fn head_rate_is_honored_within_tolerance(seed in any::<u64>(), rate in 0.0f64..1.0) {
            let s = Sampler::new(seed, rate);
            let draws = 4096usize;
            let kept = (0..draws).filter(|_| s.head_sample().sampled).count();
            let observed = kept as f64 / draws as f64;
            // 4096 Bernoulli draws: 6σ ≈ 6·√(p(1−p)/n) ≤ 6·0.5/64 ≈ 0.047.
            prop_assert!(
                (observed - rate).abs() < 0.05,
                "rate {rate} observed {observed}"
            );
        }

        /// Any latency at or above the slow threshold is always retained,
        /// regardless of the head decision or the traffic seen before.
        #[test]
        fn tail_slow_rule_always_captures(
            seed in any::<u64>(),
            threshold_us in 1u64..10_000,
            noise in proptest::collection::vec(0u64..1_000_000, 0..64),
        ) {
            let slow = Duration::from_micros(threshold_us);
            let s = Sampler::new(seed, 0.0).with_tail(TailRules {
                slow: Some(slow),
                anomaly_factor: None,
                anomaly_min_samples: 0,
            });
            for &n in &noise {
                s.decide(false, Duration::from_nanos(n));
            }
            prop_assert_eq!(s.decide(false, slow), Some(SampleReason::TailSlow));
            prop_assert_eq!(
                s.decide(false, slow + Duration::from_micros(1)),
                Some(SampleReason::TailSlow)
            );
        }
    }
}
