//! Fixed-memory log-bucketed latency histograms (HDR-style).
//!
//! A [`LogHistogram`] buckets nanosecond values on a logarithmic grid with
//! [`SUB_BUCKETS`] linear sub-buckets per power of two: values below 32ns are
//! counted exactly, and every larger bucket spans at most `1/32 ≈ 3.125%` of
//! its value.  That makes the memory **fixed forever** (1920 × `u64` counts,
//! ~15KB), the structure **mergeable** (bucket-wise addition), and every
//! quantile's relative error **bounded by the sub-bucket resolution** — in
//! contrast to the sampling-window percentiles it replaces in the service,
//! which silently forgot everything older than the window.
//!
//! Quantiles are monotone by construction: a higher rank can only land in a
//! later bucket, and every bucket reports its (clamped) upper bound.

use std::collections::BTreeMap;
use std::time::Duration;

/// log2 of the sub-bucket count: the resolution knob.
const SUB_BITS: u32 = 5;

/// Linear sub-buckets per octave; also the size of the exact range `[0, 32)`.
pub const SUB_BUCKETS: usize = 1 << SUB_BITS;

/// Octaves above the exact range (value MSB in `SUB_BITS..=63`).
const OCTAVES: usize = 64 - SUB_BITS as usize;

/// Total bucket count: the exact range plus `OCTAVES × SUB_BUCKETS`.
pub const BUCKETS: usize = SUB_BUCKETS + OCTAVES * SUB_BUCKETS;

/// Bucket index for a nanosecond value; total over all of `u64`.
fn bucket_index(nanos: u64) -> usize {
    if nanos < SUB_BUCKETS as u64 {
        return nanos as usize;
    }
    let msb = 63 - nanos.leading_zeros();
    let octave = (msb - SUB_BITS) as usize;
    let offset = (nanos >> (msb - SUB_BITS)) as usize - SUB_BUCKETS;
    SUB_BUCKETS + octave * SUB_BUCKETS + offset
}

/// Inclusive upper bound of a bucket, in nanoseconds.
fn bucket_upper(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let rel = index - SUB_BUCKETS;
    let octave = (rel / SUB_BUCKETS) as u32;
    let offset = (rel % SUB_BUCKETS) as u64;
    let width = 1u64 << octave;
    (width << SUB_BITS)
        .wrapping_add((offset + 1).wrapping_mul(width))
        .wrapping_sub(1)
}

/// A sampled observation pinned to a histogram bucket: the trace id of one
/// real query whose latency landed there, exported in OpenMetrics exemplar
/// syntax by the [`prom`](crate::prom) writer so a dashboard can jump from
/// a latency bucket straight to a captured trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exemplar {
    /// Trace id of the sampled query (16 hex digits — see
    /// [`TraceId`](crate::sample::TraceId)).
    pub trace_id: String,
    /// The observed value, in nanoseconds.
    pub value_nanos: u64,
}

/// A mergeable latency histogram with fixed memory and bounded-error
/// quantiles (see the module docs).  `count`, `sum`, `min` and `max` are
/// exact; quantiles over-report by at most one sub-bucket (≤ 3.125%).
#[derive(Clone)]
pub struct LogHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum_nanos: u128,
    min_nanos: u64,
    max_nanos: u64,
    /// Sparse per-bucket exemplars (newest observation wins); a side table
    /// that never affects counts, quantiles or merge semantics.
    exemplars: BTreeMap<usize, Exemplar>,
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0u64; BUCKETS]
                .into_boxed_slice()
                .try_into()
                .expect("bucket count"),
            count: 0,
            sum_nanos: 0,
            min_nanos: u64::MAX,
            max_nanos: 0,
            exemplars: BTreeMap::new(),
        }
    }

    /// Records one duration (saturated to `u64` nanoseconds).
    pub fn record(&mut self, value: Duration) {
        self.record_nanos(value.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one raw nanosecond value.
    pub fn record_nanos(&mut self, nanos: u64) {
        self.counts[bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum_nanos += u128::from(nanos);
        self.min_nanos = self.min_nanos.min(nanos);
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Folds another histogram into this one; quantiles of the merge are
    /// identical to a histogram that recorded both sample streams.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.min_nanos = self.min_nanos.min(other.min_nanos);
        self.max_nanos = self.max_nanos.max(other.max_nanos);
        for (bucket, exemplar) in &other.exemplars {
            self.exemplars.insert(*bucket, exemplar.clone());
        }
    }

    /// Pins `trace_id` as the exemplar of the bucket `value` falls in
    /// (newest observation wins).  Exemplars are a side table: they never
    /// affect counts, quantiles or [`merge`](Self::merge) equivalence.
    pub fn annotate_exemplar(&mut self, value: Duration, trace_id: &str) {
        let nanos = value.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.exemplars.insert(
            bucket_index(nanos),
            Exemplar {
                trace_id: trace_id.to_string(),
                value_nanos: nanos,
            },
        );
    }

    /// The attached exemplars as `(bucket_upper_bound_nanos, exemplar)`
    /// pairs in increasing bound order — the shape the Prometheus writer
    /// joins against [`cumulative_buckets`](Self::cumulative_buckets).
    pub fn exemplars(&self) -> impl Iterator<Item = (u64, &Exemplar)> {
        self.exemplars
            .iter()
            .map(|(index, exemplar)| (bucket_upper(*index), exemplar))
    }

    /// Samples at or below `value`'s bucket — the "good events" count an
    /// SLO burn rate needs.  Like every histogram read this is bucket-
    /// resolution: a sample in the same bucket but above `value` still
    /// counts, so the figure over-reports by at most one sub-bucket
    /// (≤ 3.125%) and merging histograms preserves it exactly.
    pub fn count_at_or_below(&self, value: Duration) -> u64 {
        let nanos = value.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.counts[..=bucket_index(nanos)].iter().sum()
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> Duration {
        Duration::from_nanos(self.sum_nanos.min(u128::from(u64::MAX)) as u64)
    }

    /// Exact lifetime minimum (zero when empty).
    pub fn min(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::from_nanos(self.min_nanos)
        }
    }

    /// Exact lifetime maximum (zero when empty).
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_nanos)
    }

    /// Exact lifetime mean (zero when empty).
    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_nanos / u128::from(self.count)) as u64)
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`.  Reports the containing
    /// bucket's upper bound clamped into `[min, max]`, so results are
    /// monotone in `q`, never under-report, and over-report by at most one
    /// sub-bucket width (relative error ≤ `1/32`).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Duration::from_nanos(
                    bucket_upper(index).clamp(self.min_nanos, self.max_nanos),
                );
            }
        }
        self.max()
    }

    /// Cumulative bucket counts for Prometheus exposition: one
    /// `(upper_bound_nanos, cumulative_count)` pair per *non-empty* bucket,
    /// in increasing bound order.  The `+Inf` bucket (the total count) is the
    /// exporter's job.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            if n > 0 {
                cumulative += n;
                out.push((bucket_upper(index), cumulative));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Exact nearest-rank quantile over a sorted slice — the oracle.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert!(h.cumulative_buckets().is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in [1u64, 2, 3, 30, 31] {
            h.record_nanos(v);
        }
        assert_eq!(h.quantile(0.0), Duration::from_nanos(1));
        assert_eq!(h.quantile(0.5), Duration::from_nanos(3));
        assert_eq!(h.quantile(1.0), Duration::from_nanos(31));
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut probes: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            probes.extend([v - 1, v, v + v / 3, v + v / 2]);
        }
        probes.push(u64::MAX);
        probes.sort_unstable();
        let mut last = 0usize;
        for &probe in &probes {
            let index = bucket_index(probe);
            assert!(index < BUCKETS, "index {index} for {probe}");
            assert!(index >= last, "index regressed at {probe}");
            last = index;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_its_members() {
        for v in [
            0u64,
            31,
            32,
            33,
            100,
            1_000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let index = bucket_index(v);
            let upper = bucket_upper(index);
            assert!(upper >= v, "upper {upper} < value {v}");
            // Relative slack stays within one sub-bucket.
            assert!(upper - v <= v / SUB_BUCKETS as u64 + 1);
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [5u64, 70, 900, 1_000_000] {
            a.record_nanos(v);
            both.record_nanos(v);
        }
        for v in [1u64, 33, 5_000_000_000] {
            b.record_nanos(v);
            both.record_nanos(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.min(), both.min());
        assert_eq!(a.max(), both.max());
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(a.quantile(q), both.quantile(q));
        }
        assert_eq!(a.cumulative_buckets(), both.cumulative_buckets());
    }

    #[test]
    fn exemplars_pin_to_buckets_and_survive_merges() {
        let mut a = LogHistogram::new();
        a.record_nanos(1_000);
        a.annotate_exemplar(Duration::from_nanos(1_000), "aaaa");
        assert_eq!(a.exemplars().count(), 1);
        let (upper, exemplar) = a.exemplars().next().unwrap();
        assert!(upper >= 1_000);
        assert_eq!(exemplar.trace_id, "aaaa");
        assert_eq!(exemplar.value_nanos, 1_000);

        // Newest observation of the same bucket wins.
        a.annotate_exemplar(Duration::from_nanos(1_001), "bbbb");
        assert_eq!(a.exemplars().count(), 1);
        assert_eq!(a.exemplars().next().unwrap().1.trace_id, "bbbb");

        // Merging carries the other histogram's exemplars across.
        let mut b = LogHistogram::new();
        b.record_nanos(5_000_000);
        b.annotate_exemplar(Duration::from_nanos(5_000_000), "cccc");
        a.merge(&b);
        let ids: Vec<&str> = a.exemplars().map(|(_, e)| e.trace_id.as_str()).collect();
        assert_eq!(ids, vec!["bbbb", "cccc"]);
    }

    #[test]
    fn exemplars_do_not_perturb_merge_equivalence() {
        let mut with = LogHistogram::new();
        let mut without = LogHistogram::new();
        for v in [5u64, 70, 900, 1_000_000] {
            with.record_nanos(v);
            without.record_nanos(v);
        }
        with.annotate_exemplar(Duration::from_nanos(900), "dead");
        assert_eq!(with.cumulative_buckets(), without.cumulative_buckets());
        assert_eq!(with.count(), without.count());
        assert_eq!(with.quantile(0.5), without.quantile(0.5));
    }

    #[test]
    fn count_at_or_below_is_cumulative_and_mergeable() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for v in [10u64, 20, 5_000, 1_000_000] {
            a.record_nanos(v);
            both.record_nanos(v);
        }
        for v in [15u64, 2_000_000_000] {
            b.record_nanos(v);
            both.record_nanos(v);
        }
        assert_eq!(a.count_at_or_below(Duration::from_nanos(20)), 2);
        assert_eq!(a.count_at_or_below(Duration::from_nanos(9)), 0);
        assert_eq!(a.count_at_or_below(Duration::from_secs(1)), 4);
        a.merge(&b);
        for probe in [0u64, 10, 20, 5_000, 1_000_000, u64::MAX] {
            assert_eq!(
                a.count_at_or_below(Duration::from_nanos(probe)),
                both.count_at_or_below(Duration::from_nanos(probe)),
                "merge changed the good-event count at {probe}ns"
            );
        }
    }

    #[test]
    fn cumulative_buckets_are_increasing() {
        let mut h = LogHistogram::new();
        for v in [10u64, 10, 500, 70_000, 70_001, 9_999_999] {
            h.record_nanos(v);
        }
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.last().expect("non-empty").1, h.count());
        for pair in buckets.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    proptest! {
        /// Quantiles never under-report the exact nearest-rank value and
        /// over-report by at most one sub-bucket (≤ 1/32 relative error).
        #[test]
        fn quantile_error_is_bounded(
            values in proptest::collection::vec(0u64..10_000_000_000, 1..200),
            q in 0.0f64..1.0,
        ) {
            let mut h = LogHistogram::new();
            for &v in &values {
                h.record_nanos(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let exact = exact_quantile(&sorted, q);
            let reported = h.quantile(q).as_nanos() as u64;
            prop_assert!(reported >= exact, "reported {reported} < exact {exact}");
            prop_assert!(
                reported <= exact + exact / SUB_BUCKETS as u64 + 1,
                "reported {reported} too far above exact {exact}"
            );
        }

        /// p50 ≤ p95 ≤ max, by construction, for any sample set.
        #[test]
        fn quantiles_are_monotone(
            values in proptest::collection::vec(0u64..10_000_000_000, 1..200),
        ) {
            let mut h = LogHistogram::new();
            for &v in &values {
                h.record_nanos(v);
            }
            let p50 = h.quantile(0.5);
            let p95 = h.quantile(0.95);
            prop_assert!(h.quantile(0.0) >= h.min());
            prop_assert!(p50 <= p95, "p50 {p50:?} > p95 {p95:?}");
            prop_assert!(p95 <= h.max(), "p95 {p95:?} > max {:?}", h.max());
        }
    }
}
