//! Tracing and metrics kernel for the SODA reproduction.
//!
//! The crate is deliberately tiny and dependency-free: it is threaded through
//! the query pipeline's hottest paths, so everything here is built around two
//! constraints — **near-zero cost when tracing is off** and **fixed memory
//! when it is on**:
//!
//! * [`TraceSink`] / [`SpanId`] — the span-recording interface the pipeline
//!   carries (exactly like the engine's probe recorder).  [`NoopSink`]
//!   implements every method as an empty default; call sites guard all field
//!   construction behind [`TraceSink::enabled`], so the untraced path costs
//!   one virtual call per span site.
//! * [`CollectingSink`] / [`QueryTrace`] — the recording implementation: a
//!   flat span log folded into a tree ([`QueryTrace`]) that renders as ASCII
//!   ([`QueryTrace::render`]) or JSON ([`QueryTrace::to_json`]).
//! * [`LogHistogram`] — an HDR-style log-bucketed latency histogram: fixed
//!   memory forever, mergeable, with quantiles whose relative error is
//!   bounded by the sub-bucket resolution (≤ 1/32 ≈ 3.125%) and which are
//!   monotone by construction (p50 ≤ p95 ≤ max).
//! * [`BoundedLog`] / [`OpEvent`] — a bounded ring for operational events
//!   (snapshot swaps, ingests, compactions, checkpoints, recoveries) and
//!   slow-query captures.
//! * [`Sampler`] — the adaptive sampling kernel behind always-on tracing:
//!   deterministic probabilistic head sampling plus tail rules that always
//!   retain slow and anomalous queries, at a cost of one atomic increment
//!   and one 64-bit mix per unsampled query.
//! * [`prom`] — a minimal Prometheus text-exposition writer plus a validator
//!   used by golden tests to keep the exported surface well-formed,
//!   OpenMetrics histogram exemplars included.

pub mod hist;
pub mod prom;
pub mod ring;
pub mod sample;
pub mod span;

pub use hist::{Exemplar, LogHistogram};
pub use ring::{BoundedLog, OpEvent};
pub use sample::{HeadDecision, SampleReason, Sampler, TailRules, TraceId};
pub use span::{CollectingSink, NoopSink, QueryTrace, Span, SpanId, TraceSink, TraceValue};

/// Canonical span names emitted by the engine, so traces, metrics labels and
/// tests all agree on the vocabulary.
pub mod names {
    /// Root span of one query interpretation run.
    pub const QUERY: &str = "query";
    /// Step 1 — keyword lookup (classification + base-data probes).
    pub const LOOKUP: &str = "lookup";
    /// Step 2 — solution enumeration and ranking.
    pub const RANK: &str = "rank";
    /// Step 3 — table discovery and join selection (summed over solutions).
    pub const TABLES: &str = "tables";
    /// Step 4 — filter collection (summed over solutions).
    pub const FILTERS: &str = "filters";
    /// Step 5 — SQL generation (summed over solutions).
    pub const SQLGEN: &str = "sqlgen";
    /// One phrase's base-data probe (child of [`LOOKUP`]).
    pub const PROBE: &str = "probe";
    /// One shard's scan within a probe (child of [`PROBE`]).
    pub const PROBE_SHARD: &str = "probe_shard";
    /// Event on the [`QUERY`] root marking a warm interpretation-cache hit
    /// (no pipeline ran — the page was served from the cache).
    pub const CACHE_HIT: &str = "cache_hit";

    /// The five pipeline stages, in execution order.
    pub const STAGES: [&str; 5] = [LOOKUP, RANK, TABLES, FILTERS, SQLGEN];
}
