//! Bounded rings for operational history: the newest `capacity` entries
//! survive, older ones are dropped (and counted), memory stays fixed.
//!
//! The service keeps two of these: a [`BoundedLog<OpEvent>`] recording
//! snapshot swaps, ingests, compactions, checkpoints and recoveries, and a
//! `BoundedLog` of slow-query captures (full span trees of queries over the
//! configured threshold).

use std::collections::VecDeque;
use std::time::Duration;

/// One operational event: what happened, to which tenant, when (relative
/// to service start) and a short human-readable detail line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpEvent {
    /// Monotone sequence number (1-based over the log's lifetime, dropped
    /// entries included).
    pub seq: u64,
    /// Offset from the owning service's start.
    pub at: Duration,
    /// Event kind (`reload`, `ingest`, `compaction`, `checkpoint`, …).
    pub kind: &'static str,
    /// Name of the tenant the event belongs to (the hosting service's
    /// default tenant for service-wide events like `recovery`).
    pub tenant: String,
    /// Short detail line (`"generation 3, 2 shards"`).
    pub detail: String,
}

/// A fixed-capacity ring: pushes never fail, the oldest entry makes room.
#[derive(Debug, Clone)]
pub struct BoundedLog<T> {
    entries: VecDeque<T>,
    capacity: usize,
    pushed: u64,
}

impl<T> BoundedLog<T> {
    /// A ring holding at most `capacity` entries (at least one).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: VecDeque::new(),
            capacity: capacity.max(1),
            pushed: 0,
        }
    }

    /// Appends an entry, evicting the oldest when full.  Returns the entry's
    /// 1-based sequence number.
    pub fn push(&mut self, entry: T) -> u64 {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back(entry);
        self.pushed += 1;
        self.pushed
    }

    /// Entries currently retained, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total entries ever pushed.
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Entries evicted to keep the ring bounded.
    pub fn dropped(&self) -> u64 {
        self.pushed - self.entries.len() as u64
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl<T: Clone> BoundedLog<T> {
    /// A snapshot of the retained entries, oldest first.
    pub fn to_vec(&self) -> Vec<T> {
        self.entries.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut log: BoundedLog<u32> = BoundedLog::new(3);
        assert!(log.is_empty());
        for i in 0..5 {
            assert_eq!(log.push(i), u64::from(i) + 1);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.to_vec(), vec![2, 3, 4]);
        assert_eq!(log.pushed(), 5);
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.capacity(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut log: BoundedLog<&str> = BoundedLog::new(0);
        log.push("a");
        log.push("b");
        assert_eq!(log.to_vec(), vec!["b"]);
    }

    #[test]
    fn op_events_carry_sequence_and_detail() {
        let mut log: BoundedLog<OpEvent> = BoundedLog::new(8);
        let seq = log.push(OpEvent {
            seq: 1,
            at: Duration::from_millis(5),
            kind: "ingest",
            tenant: "default".to_string(),
            detail: "generation 2, 1 shard".to_string(),
        });
        assert_eq!(seq, 1);
        let events = log.to_vec();
        assert_eq!(events[0].kind, "ingest");
        assert_eq!(events[0].tenant, "default");
        assert!(events[0].detail.contains("generation"));
    }
}
