//! `bench_check` — diffs a `BENCH_*.json` estimates file (emitted by the
//! vendored criterion harness via `SODA_BENCH_JSON`) against a checked-in
//! baseline and fails on regressions.
//!
//! ```text
//! bench_check <baseline.json> <current.json> [--threshold 0.25] [--normalize]
//!             [--limit <benchmark>=<ratio>]...
//! ```
//!
//! A benchmark regresses when its current `min_ns` exceeds the baseline's
//! `min_ns` by more than the threshold.  `--limit` overrides the global
//! threshold for one benchmark (repeatable), so latency-critical paths can
//! be held to a tighter budget than the suite-wide gate — e.g.
//! `--limit service_cache/warm/single_query=0.05` caps the warm cache-hit
//! path at a 5% regression while the rest of the suite keeps the default.  The *minimum* is compared because
//! it is the most machine-noise-resistant estimate the stub harness produces
//! (scheduler interference only ever makes samples slower).  Benchmarks
//! present on only one side are reported but never fail the check, so adding
//! or retiring benchmarks does not require lockstep baseline updates.
//!
//! `--normalize` makes the comparison machine-speed-invariant: every
//! benchmark's current/baseline ratio is divided by the *median* ratio
//! across the suite before the threshold applies.  A baseline recorded on
//! different hardware then still catches the interesting signal — one
//! benchmark regressing *relative to its peers* — while a uniformly slower
//! (or faster) machine shifts every ratio equally and cancels out.  CI gates
//! use this mode; refreshing baselines from a same-hardware CI artifact
//! tightens the gate back to absolute.
//!
//! Exit code 0 = no regressions, 1 = at least one, 2 = usage/parse error.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// The fields bench_check consumes from one benchmark line.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Estimate {
    min_ns: u128,
    mean_ns: u128,
}

/// Extracts `"key": <integer>` from a JSON object line.
fn field_u128(line: &str, key: &str) -> Option<u128> {
    let marker = format!("\"{key}\":");
    let rest = &line[line.find(&marker)? + marker.len()..];
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extracts `"name": "<value>"` from a JSON object line.
fn field_str(line: &str) -> Option<String> {
    let marker = "\"name\": \"";
    let rest = &line[line.find(marker)? + marker.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Parses the one-benchmark-per-line JSON the vendored criterion emits.
fn parse(content: &str) -> BTreeMap<String, Estimate> {
    let mut out = BTreeMap::new();
    for line in content.lines() {
        let Some(name) = field_str(line) else {
            continue;
        };
        let (Some(min_ns), Some(mean_ns)) =
            (field_u128(line, "min_ns"), field_u128(line, "mean_ns"))
        else {
            continue;
        };
        out.insert(name, Estimate { min_ns, mean_ns });
    }
    out
}

/// Median of the current/baseline min ratios over the shared benchmarks —
/// the machine-speed factor `--normalize` divides out.  1.0 when fewer than
/// two benchmarks are shared (nothing to normalise against).
fn speed_scale(baseline: &BTreeMap<String, Estimate>, current: &BTreeMap<String, Estimate>) -> f64 {
    let mut ratios: Vec<f64> = current
        .iter()
        .filter_map(|(name, cur)| {
            baseline
                .get(name)
                .map(|base| cur.min_ns as f64 / base.min_ns.max(1) as f64)
        })
        .collect();
    if ratios.len() < 2 {
        return 1.0;
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mid = ratios.len() / 2;
    if ratios.len().is_multiple_of(2) {
        (ratios[mid - 1] + ratios[mid]) / 2.0
    } else {
        ratios[mid]
    }
}

fn run(
    baseline_path: &str,
    current_path: &str,
    threshold: f64,
    limits: &BTreeMap<String, f64>,
    normalize: bool,
) -> Result<bool, String> {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let baseline = parse(&read(baseline_path)?);
    let current = parse(&read(current_path)?);
    if current.is_empty() {
        return Err(format!("{current_path} contains no benchmark estimates"));
    }
    let scale = if normalize {
        let scale = speed_scale(&baseline, &current);
        println!("  machine-speed scale (median ratio): {scale:.2}x — dividing it out");
        scale
    } else {
        1.0
    };

    let mut regressions = 0usize;
    for (name, cur) in &current {
        match baseline.get(name) {
            None => println!("  NEW      {name}: min {} ns (no baseline)", cur.min_ns),
            Some(base) => {
                let allowed = limits.get(name).copied().unwrap_or(threshold);
                let limit = (base.min_ns as f64) * scale * (1.0 + allowed);
                let ratio = cur.min_ns as f64 / (base.min_ns.max(1) as f64 * scale);
                if (cur.min_ns as f64) > limit {
                    regressions += 1;
                    println!(
                        "  REGRESS  {name}: min {} ns vs baseline {} ns ({ratio:.2}x > {:.2}x allowed)",
                        cur.min_ns,
                        base.min_ns,
                        1.0 + allowed
                    );
                } else {
                    println!(
                        "  OK       {name}: min {} ns vs baseline {} ns ({ratio:.2}x)",
                        cur.min_ns, base.min_ns
                    );
                }
            }
        }
    }
    for name in baseline.keys() {
        if !current.contains_key(name) {
            println!("  RETIRED  {name}: in baseline but not in this run");
        }
    }
    if regressions > 0 {
        println!("{regressions} benchmark(s) regressed beyond their allowed threshold");
    } else if limits.is_empty() {
        println!("no regressions beyond {:.0}%", threshold * 100.0);
    } else {
        println!(
            "no regressions beyond {:.0}% (with {} per-benchmark limit(s))",
            threshold * 100.0,
            limits.len()
        );
    }
    Ok(regressions == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.25f64;
    let mut limits = BTreeMap::new();
    let mut normalize = false;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threshold" {
            let Some(value) = args.get(i + 1).and_then(|v| v.parse().ok()) else {
                eprintln!("--threshold needs a numeric argument");
                return ExitCode::from(2);
            };
            threshold = value;
            i += 2;
        } else if args[i] == "--limit" {
            let parsed = args.get(i + 1).and_then(|v| {
                let (name, ratio) = v.split_once('=')?;
                Some((name.to_string(), ratio.parse::<f64>().ok()?))
            });
            let Some((name, ratio)) = parsed else {
                eprintln!("--limit needs a <benchmark>=<ratio> argument");
                return ExitCode::from(2);
            };
            limits.insert(name, ratio);
            i += 2;
        } else if args[i] == "--normalize" {
            normalize = true;
            i += 1;
        } else {
            paths.push(args[i].clone());
            i += 1;
        }
    }
    let [baseline, current] = paths.as_slice() else {
        eprintln!(
            "usage: bench_check <baseline.json> <current.json> [--threshold 0.25] [--normalize] \
             [--limit <benchmark>=<ratio>]..."
        );
        return ExitCode::from(2);
    };
    match run(baseline, current, threshold, &limits, normalize) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("bench_check: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "benchmarks": [
    {"name": "g/fast/1", "mean_ns": 1200, "min_ns": 1000, "max_ns": 1500, "samples": 10, "iters": 3},
    {"name": "g/slow/4", "mean_ns": 9000, "min_ns": 8000, "max_ns": 9900, "samples": 10, "iters": 1}
  ]
}
"#;

    #[test]
    fn parses_the_emitted_shape() {
        let parsed = parse(SAMPLE);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed["g/fast/1"].min_ns, 1000);
        assert_eq!(parsed["g/slow/4"].mean_ns, 9000);
    }

    #[test]
    fn normalization_divides_out_a_uniform_machine_factor() {
        let base = parse(SAMPLE);
        // A machine 3x slower across the board: every ratio is 3.0, the
        // median scale is 3.0, and nothing should look like a regression.
        let mut current = base.clone();
        for est in current.values_mut() {
            est.min_ns *= 3;
        }
        let scale = speed_scale(&base, &current);
        assert!((scale - 3.0).abs() < 1e-9);
        for (name, cur) in &current {
            let limit = base[name].min_ns as f64 * scale * 1.25;
            assert!((cur.min_ns as f64) <= limit, "{name} falsely regressed");
        }
        // One benchmark regressing 2x relative to its peers still trips the
        // normalized gate.
        current.get_mut("g/fast/1").unwrap().min_ns *= 2;
        let scale = speed_scale(&base, &current);
        let limit = base["g/fast/1"].min_ns as f64 * scale * 1.25;
        assert!((current["g/fast/1"].min_ns as f64) > limit);
    }

    #[test]
    fn fewer_than_two_shared_benchmarks_fall_back_to_absolute() {
        let base = parse(SAMPLE);
        let mut only_one = BTreeMap::new();
        only_one.insert("g/fast/1".to_string(), base["g/fast/1"].clone());
        assert_eq!(speed_scale(&base, &only_one), 1.0);
    }

    #[test]
    fn per_benchmark_limits_override_the_global_threshold() {
        // A 10% slip on g/fast/1: within the suite-wide 25% gate, but over a
        // 5% per-benchmark limit.
        let dir = std::env::temp_dir().join(format!("soda-bench-check-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let baseline = dir.join("baseline.json");
        let current = dir.join("current.json");
        std::fs::write(&baseline, SAMPLE).unwrap();
        std::fs::write(
            &current,
            SAMPLE.replace("\"min_ns\": 1000", "\"min_ns\": 1100"),
        )
        .unwrap();
        let path = |p: &std::path::Path| p.to_str().unwrap().to_string();

        let no_limits = BTreeMap::new();
        assert_eq!(
            run(&path(&baseline), &path(&current), 0.25, &no_limits, false),
            Ok(true),
            "10% is within the global 25% gate"
        );
        let limits: BTreeMap<String, f64> = [("g/fast/1".to_string(), 0.05)].into();
        assert_eq!(
            run(&path(&baseline), &path(&current), 0.25, &limits, false),
            Ok(false),
            "the 5% per-benchmark limit must trip on a 10% slip"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn threshold_separates_ok_from_regression() {
        let base = parse(SAMPLE);
        // 1249 is within 25% of 1000?  No — 1.25x limit means 1250 is the
        // edge; 1249 passes, 1251 fails.
        let ok = Estimate {
            min_ns: 1249,
            mean_ns: 0,
        };
        let bad = Estimate {
            min_ns: 1251,
            mean_ns: 0,
        };
        let limit = (base["g/fast/1"].min_ns as f64) * 1.25;
        assert!((ok.min_ns as f64) <= limit);
        assert!((bad.min_ns as f64) > limit);
    }
}
