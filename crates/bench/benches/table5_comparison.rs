//! Table 5 — qualitative comparison with DBExplorer, DISCOVER, BANKS, SQAK and
//! Keymantic.
//!
//! Benchmarks each baseline answering the full workload, and prints the
//! regenerated capability/coverage table.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use soda_baselines::all_baselines;
use soda_eval::experiments::table5::table5;
use soda_eval::report::print_table5;
use soda_eval::workload::workload;
use soda_relation::InvertedIndex;
use soda_warehouse::enterprise::{self, EnterpriseConfig};

fn bench_table5(c: &mut Criterion) {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.15,
    });
    let index = InvertedIndex::build(&warehouse.database);
    let queries = workload();

    let mut group = c.benchmark_group("table5_baselines");
    group.sample_size(10);
    for baseline in all_baselines() {
        group.bench_with_input(
            BenchmarkId::from_parameter(baseline.name()),
            &baseline,
            |b, system| {
                b.iter(|| {
                    let answered: usize = queries
                        .iter()
                        .filter(|q| {
                            system
                                .answer(&warehouse.database, &index, q.keywords)
                                .is_some()
                        })
                        .count();
                    black_box(answered)
                })
            },
        );
    }
    group.finish();

    println!("\n{}", print_table5(&table5(&warehouse)));
}

criterion_group!(benches, bench_table5);
criterion_main!(benches);
