//! Table 4 — query complexity and runtime.
//!
//! Benchmarks the SODA processing time (the five pipeline steps, excluding SQL
//! execution) for every workload query individually, plus the end-to-end time
//! including execution, and prints the regenerated Table 4.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use soda_core::{SodaConfig, SodaEngine};
use soda_eval::experiments::run_workload_with_engine;
use soda_eval::report::print_table4;
use soda_eval::workload::workload;
use soda_warehouse::enterprise::{self, EnterpriseConfig};

fn bench_table4(c: &mut Criterion) {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.2,
    });
    let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());

    // SODA processing time per query (Table 4, "SODA runtime").
    let mut group = c.benchmark_group("table4_soda_runtime");
    group.sample_size(20);
    for query in workload() {
        group.bench_with_input(
            BenchmarkId::from_parameter(query.id),
            &query.keywords,
            |b, keywords| b.iter(|| black_box(engine.search(keywords).unwrap())),
        );
    }
    group.finish();

    // End-to-end time per query (generation plus executing every statement).
    let mut group = c.benchmark_group("table4_total_runtime");
    group.sample_size(10);
    for query in workload() {
        group.bench_with_input(
            BenchmarkId::from_parameter(query.id),
            &query.keywords,
            |b, keywords| {
                b.iter(|| {
                    let results = engine.search(keywords).unwrap();
                    let rows: usize = results
                        .iter()
                        .filter_map(|r| engine.execute(r).ok())
                        .map(|rs| rs.row_count())
                        .sum();
                    black_box(rows)
                })
            },
        );
    }
    group.finish();

    let evals = run_workload_with_engine(&warehouse, &engine);
    println!("\n{}", print_table4(&evals));
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
