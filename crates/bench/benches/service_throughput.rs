//! Serving-layer benchmarks: cold vs warm interpretation cache and batch
//! throughput across worker-pool sizes (the first entries of the perf
//! trajectory for the `soda-service` crate).
//!
//! `cold/*` clears the cache before every iteration, so each measurement pays
//! the full five-step pipeline through the queue; `warm/*` submits a query
//! already resident in the cache, so each measurement is a normalization,
//! one probe and a page clone.  The acceptance bar for the serving layer is
//! warm ≥ 10× faster than cold (also asserted by `tests/service.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use soda_core::{EngineSnapshot, SodaConfig};
use soda_service::{
    JobHandle, QueryRequest, QueryService, SamplingConfig, ServiceConfig, TenantId,
};
use soda_warehouse::minibank;

/// A mixed mini-bank workload: keyword lookups, comparisons, aggregation.
const QUERIES: &[&str] = &[
    "Sara Guttinger",
    "wealthy customers",
    "financial instruments customers Zurich",
    "salary >= 100000 and birthday = date(1981-04-23)",
    "sum (amount) group by (transaction date)",
    "count (transactions) group by (company name)",
];

fn clear_cache(svc: &QueryService) {
    svc.admin(TenantId::default())
        .expect("default tenant")
        .clear_cache();
}

fn run_batch(svc: &QueryService, requests: Vec<QueryRequest>) -> usize {
    let handles: Vec<JobHandle> = requests.into_iter().map(|r| svc.query(r)).collect();
    handles
        .into_iter()
        .map(|h| h.wait().expect("query serves").page.results.len())
        .sum()
}

fn service(workers: usize) -> QueryService {
    service_with(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    })
}

fn service_with(config: ServiceConfig) -> QueryService {
    let warehouse = minibank::build(42);
    let snapshot = Arc::new(EngineSnapshot::build(
        Arc::new(warehouse.database),
        Arc::new(warehouse.graph),
        SodaConfig::default(),
    ));
    QueryService::start(snapshot, config)
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_cache");
    group.sample_size(10);

    let svc = service(2);
    // The flagship multi-entry-point query: three keyword groups, join-path
    // discovery across the schema — a representative "expensive" cold run.
    let query = "financial instruments customers Zurich";

    group.bench_function("cold/single_query", |b| {
        b.iter(|| {
            clear_cache(&svc);
            black_box(
                svc.query(QueryRequest::new(query))
                    .wait()
                    .expect("query serves")
                    .page
                    .results
                    .len(),
            )
        })
    });

    // Populate the cache once, then measure pure hits.  CI holds this path
    // to a 5% regression budget (`--limit service_cache/warm/single_query`):
    // observability must stay invisible when no trace sink is attached.
    svc.query(QueryRequest::new(query)).wait().expect("warms");
    group.bench_function("warm/single_query", |b| {
        b.iter(|| {
            black_box(
                svc.query(QueryRequest::new(query))
                    .wait()
                    .expect("query serves")
                    .page
                    .results
                    .len(),
            )
        })
    });

    // The diagnostic path: a full pipeline execution with a collecting sink
    // recording every span.  Traced warm hits are served from the cache
    // nowadays, so the cache is cleared each iteration to keep this the
    // traced *execution* cost.  Reported (not gated) so the cost of turning
    // tracing on stays visible next to the cold run it shadows.
    group.bench_function("traced/single_query", |b| {
        b.iter(|| {
            clear_cache(&svc);
            black_box(
                svc.query(QueryRequest::new(query).traced())
                    .wait()
                    .expect("query serves")
                    .page
                    .results
                    .len(),
            )
        })
    });

    group.finish();
}

/// The always-on sampling axis: the warm cache hit — the path production
/// traffic lives on — with adaptive sampling disabled vs enabled at the
/// production default of 1% head sampling.  CI holds the sampled entry to
/// a 5% budget (`--limit sampled_tracing/warm/sampled_1pct`): sampling a
/// hundredth of the traffic must not tax the other ninety-nine.
fn bench_sampled_tracing(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampled_tracing");
    group.sample_size(10);
    let query = "financial instruments customers Zurich";

    for (label, sampling) in [
        ("warm/disabled", None),
        (
            "warm/sampled_1pct",
            Some(SamplingConfig::default().rate(0.01)),
        ),
    ] {
        let svc = service_with(ServiceConfig {
            workers: 2,
            sampling,
            ..ServiceConfig::default()
        });
        svc.query(QueryRequest::new(query)).wait().expect("warms");
        group.bench_function(label, |b| {
            b.iter(|| {
                black_box(
                    svc.query(QueryRequest::new(query))
                        .wait()
                        .expect("query serves")
                        .page
                        .results
                        .len(),
                )
            })
        });
    }

    group.finish();
}

fn bench_batch_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);

    for workers in [1usize, 2, 4] {
        let svc = service(workers);
        group.bench_with_input(BenchmarkId::new("cold_batch", workers), &workers, |b, _| {
            b.iter(|| {
                clear_cache(&svc);
                let requests: Vec<QueryRequest> =
                    QUERIES.iter().map(|q| QueryRequest::new(*q)).collect();
                black_box(run_batch(&svc, requests))
            })
        });
        group.bench_with_input(BenchmarkId::new("warm_batch", workers), &workers, |b, _| {
            // One priming pass, then every iteration is all-hits.
            let requests: Vec<QueryRequest> =
                QUERIES.iter().map(|q| QueryRequest::new(*q)).collect();
            run_batch(&svc, requests.clone());
            b.iter(|| black_box(run_batch(&svc, requests.clone())))
        });
    }

    group.finish();
}

criterion_group!(
    benches,
    bench_cold_vs_warm,
    bench_sampled_tracing,
    bench_batch_throughput
);
criterion_main!(benches);
