//! Micro-benchmarks of the SODA pipeline front-end: engine construction
//! (classification index + inverted index + join catalog), the lookup step and
//! the ranking enumeration, at both mini-bank and enterprise scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use soda_core::{ClassificationIndex, SodaConfig, SodaEngine};
use soda_warehouse::enterprise::{self, EnterpriseConfig};
use soda_warehouse::minibank;
use soda_warehouse::Warehouse;

fn warehouses() -> Vec<(&'static str, Warehouse)> {
    vec![
        ("minibank", minibank::build(42)),
        (
            "enterprise",
            enterprise::build_with(EnterpriseConfig {
                seed: 42,
                padding: true,
                data_scale: 0.05,
            }),
        ),
    ]
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_lookup");
    group.sample_size(10);

    for (name, warehouse) in warehouses() {
        group.bench_with_input(
            BenchmarkId::new("engine_construction", name),
            &warehouse,
            |b, w| {
                b.iter(|| {
                    black_box(SodaEngine::new(
                        &w.database,
                        &w.graph,
                        SodaConfig::default(),
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("classification_index_build", name),
            &warehouse,
            |b, w| b.iter(|| black_box(ClassificationIndex::build(&w.graph, true).len())),
        );
        let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());
        group.bench_with_input(
            BenchmarkId::new("keyword_query", name),
            &engine,
            |b, engine| {
                b.iter(|| black_box(engine.search("wealthy customers Zurich").unwrap().len()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("aggregate_query", name),
            &engine,
            |b, engine| {
                b.iter(|| {
                    black_box(
                        engine
                            .search("sum (amount) group by (currency)")
                            .map(|r| r.len())
                            .unwrap_or(0),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lookup);
criterion_main!(benches);
