//! Micro-benchmarks of the relational substrate: SQL parsing, multi-way hash
//! joins, aggregation and the inverted index over the base data.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use soda_relation::{parse_select, InvertedIndex};
use soda_warehouse::enterprise::{self, EnterpriseConfig};

const FIVE_WAY_JOIN: &str = "SELECT trade_order_td.order_id, individual.family_name \
     FROM trade_order_td, account_td, agreement_td, party, individual \
     WHERE trade_order_td.account_id = account_td.account_id \
     AND account_td.agreement_id = agreement_td.agreement_id \
     AND agreement_td.party_id = party.party_id \
     AND party.party_id = individual.party_id \
     AND trade_order_td.currency_cd = 'YEN'";

const AGGREGATION: &str = "SELECT currency_cd, sum(amount), count(*) FROM trade_order_td \
     GROUP BY currency_cd ORDER BY sum(amount) DESC";

fn bench_relation(c: &mut Criterion) {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 1.0,
    });
    let db = &warehouse.database;

    let mut group = c.benchmark_group("micro_relation");
    group.sample_size(20);

    group.bench_function("parse_five_way_join", |b| {
        b.iter(|| black_box(parse_select(FIVE_WAY_JOIN).unwrap()))
    });

    group.bench_function("execute_five_way_hash_join", |b| {
        b.iter(|| black_box(db.run_sql(FIVE_WAY_JOIN).unwrap().row_count()))
    });

    group.bench_function("execute_group_by_aggregation", |b| {
        b.iter(|| black_box(db.run_sql(AGGREGATION).unwrap().row_count()))
    });

    group.bench_function("inverted_index_build", |b| {
        b.iter(|| black_box(InvertedIndex::build(db).posting_count()))
    });

    group.bench_function("inverted_index_phrase_lookup", |b| {
        let index = InvertedIndex::build(db);
        b.iter(|| {
            black_box(index.lookup_phrase(db, "Credit Suisse").len())
                + black_box(index.lookup_phrase(db, "Zurich").len())
                + black_box(index.lookup_phrase(db, "YEN").len())
        })
    });

    group.finish();

    println!(
        "\nbase data: {} tables, {} rows",
        db.table_count(),
        db.total_rows()
    );
}

criterion_group!(benches, bench_relation);
criterion_main!(benches);
