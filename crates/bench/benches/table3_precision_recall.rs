//! Table 3 — precision and recall of the generated SQL against the gold
//! standard, over the full workload of Table 2.
//!
//! The benchmark measures one full workload evaluation pass (13 queries ×
//! all produced statements, each executed and compared tuple-by-tuple), and
//! prints the regenerated Tables 2 and 3.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use soda_core::{SodaConfig, SodaEngine};
use soda_eval::experiments::run_workload_with_engine;
use soda_eval::report::{print_table2, print_table3};
use soda_eval::workload::workload;
use soda_warehouse::enterprise::{self, EnterpriseConfig};

fn bench_table3(c: &mut Criterion) {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.2,
    });
    let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());

    let mut group = c.benchmark_group("table3_precision_recall");
    group.sample_size(10);
    group.bench_function("full_workload_evaluation", |b| {
        b.iter(|| black_box(run_workload_with_engine(&warehouse, &engine)))
    });
    group.finish();

    let evals = run_workload_with_engine(&warehouse, &engine);
    println!("\n{}", print_table2(&workload()));
    println!("{}", print_table3(&evals));
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
