//! Table 1 — complexity of the schema graph.
//!
//! Benchmarks the construction of the enterprise schema model (core + padding
//! to the paper's 472 tables / 3181 columns) and of the metadata graph, and
//! prints the regenerated Table 1 next to the paper's numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use soda_eval::experiments::table1::table1;
use soda_eval::report::print_table1;
use soda_warehouse::enterprise::{self, padding, schema, EnterpriseConfig};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_schema_complexity");
    group.sample_size(10);

    group.bench_function("core_schema_model", |b| {
        b.iter(|| black_box(schema::core_model()))
    });

    group.bench_function("pad_to_paper_scale", |b| {
        b.iter(|| {
            let mut model = schema::core_model();
            padding::pad_model(&mut model, padding::PaddingTargets::default());
            black_box(model.stats())
        })
    });

    group.bench_function("build_full_warehouse", |b| {
        b.iter(|| {
            black_box(enterprise::build_with(EnterpriseConfig {
                seed: 42,
                padding: true,
                data_scale: 0.05,
            }))
        })
    });
    group.finish();

    // Regenerate and print the table itself.
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: true,
        data_scale: 0.05,
    });
    println!("\n{}", print_table1(&table1(&warehouse)));
    println!(
        "metadata graph: {} nodes, {} edges\n",
        warehouse.graph.node_count(),
        warehouse.graph.edge_count()
    );
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
