//! Lookup-layer sharding benchmark on the enterprise-scale warehouse.
//!
//! Two views of the same workload at 1/2/4/8 shards:
//!
//! * `lookup_step` / `full_search` — wall-clock time of Step 1 alone and of
//!   the whole pipeline.  The fan-out only spawns helper threads when the
//!   host has spare cores (`available_parallelism`), so on a single-core
//!   runner these stay flat (multi-shard never pessimizes) while on a
//!   multicore host they follow the critical path.
//! * `probe_critical_path` — the per-probe critical path: scanning only the
//!   *largest* busy shard of each query's probe, which is what bounds a
//!   parallel probe's latency once every shard has its own core.  This is
//!   the structural speedup sharding unlocks, independent of the bench
//!   host's core count.
//!
//! The workload leans on probe-heavy tokens whose postings spread over
//! several tables — "Switzerland" spans `individual`, `organization` and
//! `address`; family names span `individual` and `individual_name_hist`;
//! currency codes span `trade_order_td`, `money_transaction_td` and
//! `account_td` — which is the shape table-partitioned fan-out accelerates.
//! SQL output is byte-identical at every shard count, so the comparison is
//! pure latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use soda_core::{SodaConfig, SodaEngine};
use soda_warehouse::enterprise::{self, EnterpriseConfig};
use soda_warehouse::Warehouse;

/// Probe-heavy lookup workload (see the module docs for why these tokens).
const QUERIES: &[&str] = &[
    "customers Switzerland",
    "Meier",
    "Keller Switzerland",
    "CHF",
    "Schmid",
];

fn engine(warehouse: &Warehouse, shards: usize) -> SodaEngine<'_> {
    SodaEngine::new(
        &warehouse.database,
        &warehouse.graph,
        SodaConfig {
            shards,
            ..SodaConfig::default()
        },
    )
}

fn bench_lookup_sharding(c: &mut Criterion) {
    // Scale both the transactional tables and the party-rooted dimensions so
    // the probe-token postings lists are long, and long across many tables.
    let warehouse = enterprise::build_with_dimensions(
        EnterpriseConfig {
            seed: 42,
            padding: true,
            data_scale: 2.0,
        },
        8.0,
    );

    let mut group = c.benchmark_group("lookup_sharding");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        let engine = engine(&warehouse, shards);
        group.bench_with_input(
            BenchmarkId::new("lookup_step", shards),
            &engine,
            |b, engine| {
                b.iter(|| {
                    let mut complexity = 0usize;
                    for query in QUERIES {
                        complexity += engine.lookup(query).expect("lookup runs").complexity();
                    }
                    black_box(complexity)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("full_search", shards),
            &engine,
            |b, engine| {
                b.iter(|| {
                    let mut results = 0usize;
                    for query in QUERIES {
                        results += engine.search(query).expect("search runs").len();
                    }
                    black_box(results)
                })
            },
        );
        // Critical path: for every word of every query that probes the base
        // data, scan only the largest busy shard — a lower bound on the
        // probe's parallel latency, and exactly the 1-shard scan when
        // shards = 1.
        group.bench_with_input(
            BenchmarkId::new("probe_critical_path", shards),
            &engine,
            |b, engine| {
                let index = engine.inverted_index().expect("index enabled");
                // The largest busy shard per probe is iteration-invariant:
                // resolve it outside the timed loop so the metric measures
                // only the scan itself.
                let targets: Vec<_> = QUERIES
                    .iter()
                    .flat_map(|q| q.split_whitespace())
                    .filter_map(|word| index.probe(word))
                    .map(|probe| {
                        let largest = index
                            .shards()
                            .iter()
                            .max_by_key(|s| s.probe_candidates(&probe).len())
                            .expect("at least one shard");
                        (largest, probe)
                    })
                    .collect();
                b.iter(|| {
                    let mut hits = 0usize;
                    for (shard, probe) in &targets {
                        hits += shard.probe_phrase(&warehouse.database, probe).len();
                    }
                    black_box(hits)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lookup_sharding);
criterion_main!(benches);
