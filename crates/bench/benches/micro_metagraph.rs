//! Micro-benchmarks of the metadata-graph substrate: pattern matching,
//! traversal and join-catalog construction at the Table 1 schema scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use soda_core::{JoinCatalog, SodaPatterns};
use soda_metagraph::{Matcher, Traversal};
use soda_warehouse::enterprise::{self, EnterpriseConfig};

fn bench_metagraph(c: &mut Criterion) {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: true,
        data_scale: 0.02,
    });
    let graph = &warehouse.graph;
    let patterns = SodaPatterns::default();

    let mut group = c.benchmark_group("micro_metagraph");
    group.sample_size(10);

    group.bench_function("match_table_pattern_all_nodes", |b| {
        let matcher = Matcher::new(graph, patterns.registry());
        b.iter(|| black_box(matcher.match_all(patterns.table()).len()))
    });

    group.bench_function("match_foreign_key_pattern_all_nodes", |b| {
        let matcher = Matcher::new(graph, patterns.registry());
        b.iter(|| black_box(matcher.match_all(patterns.foreign_key()).len()))
    });

    group.bench_function("traversal_reachable_from_ontology", |b| {
        let start = graph.node("onto/customers").expect("ontology node");
        b.iter(|| {
            let t = Traversal::new(graph).max_depth(6).block_predicate("type");
            black_box(t.reachable(&[start]).len())
        })
    });

    group.bench_function("join_catalog_build", |b| {
        b.iter(|| {
            black_box(
                JoinCatalog::build(graph, &patterns, &warehouse.database)
                    .edges
                    .len(),
            )
        })
    });

    group.bench_function("join_path_5way", |b| {
        let catalog = JoinCatalog::build(graph, &patterns, &warehouse.database);
        b.iter(|| black_box(catalog.path("trade_order_td", "individual")))
    });

    group.finish();

    println!(
        "\ngraph: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );
}

criterion_group!(benches, bench_metagraph);
criterion_main!(benches);
