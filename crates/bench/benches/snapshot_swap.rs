//! Hot-snapshot-swap benchmarks on the enterprise warehouse.
//!
//! Three questions, one group:
//!
//! * `publish_full` — what a whole-warehouse reload costs (index rebuild +
//!   atomic publish).  This is the price per-shard swapping avoids.
//! * `rebuild_shard` — the per-shard path for a one-table data delta: only
//!   the partition owning `individual` is rebuilt; everything else is
//!   shared by `Arc` with the previous generation.
//! * `probe_idle` vs `probe_during_rebuild` — the acceptance question: the
//!   probe path of the *other* shards must not stall while a writer thread
//!   rebuilds one partition in a loop.  The probed queries lean on tokens
//!   whose postings live across the partitioned dimension tables, exactly
//!   the `lookup_sharding` workload, so any writer-induced stall would show
//!   directly in the reported per-iteration time.
//!
//! Read `probe_during_rebuild` through its **min**: readers never block on
//! the writer (the handle's swap is a pointer store; unchanged shards are
//! `Arc`-shared), so the minimum matches `probe_idle` — on a host with a
//! single core the *mean* still rises because the writer competes for the
//! CPU itself, which is scheduling, not stalling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use soda_core::{EngineSnapshot, SnapshotHandle, SodaConfig};
use soda_warehouse::enterprise::{self, data, EnterpriseConfig};

const SHARDS: usize = 4;

/// The `lookup_sharding` probe workload (minus the aggregates): probe-heavy
/// tokens spread over several tables.
const QUERIES: &[&str] = &[
    "customers Switzerland",
    "Meier",
    "Keller Switzerland",
    "CHF",
];

fn bench_snapshot_swap(c: &mut Criterion) {
    let warehouse = enterprise::build_with_dimensions(
        EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 1.0,
        },
        4.0,
    );
    let config = SodaConfig {
        shards: SHARDS,
        ..SodaConfig::default()
    };
    let db = Arc::new(warehouse.database.clone());
    let graph = Arc::new(warehouse.graph.clone());
    let handle = Arc::new(SnapshotHandle::new(Arc::new(EngineSnapshot::build(
        Arc::clone(&db),
        Arc::clone(&graph),
        config.clone(),
    ))));
    // The data delta a rebuild consumes: a fresh batch of onboarded
    // customers appended to `party` and `individual`.
    let delta = data::onboarding_delta(&warehouse.database, 7, 32);
    let delta_db = Arc::new(delta.apply(&warehouse.database).expect("delta applies"));
    let delta_tables = delta.changed_tables();

    let mut group = c.benchmark_group("snapshot_swap");
    group.sample_size(10);

    group.bench_with_input(BenchmarkId::new("publish_full", SHARDS), &(), |b, ()| {
        b.iter(|| {
            let generation = handle.publish(EngineSnapshot::build(
                Arc::clone(&db),
                Arc::clone(&graph),
                config.clone(),
            ));
            black_box(generation)
        })
    });

    group.bench_with_input(BenchmarkId::new("rebuild_shard", SHARDS), &(), |b, ()| {
        b.iter(|| black_box(handle.rebuild_shards(Arc::clone(&delta_db), &delta_tables)))
    });

    // Probe latency with the handle quiescent…
    group.bench_with_input(BenchmarkId::new("probe_idle", SHARDS), &(), |b, ()| {
        b.iter(|| {
            let snapshot = handle.load();
            let mut complexity = 0usize;
            for query in QUERIES {
                complexity += snapshot.lookup(query).expect("lookup runs").complexity();
            }
            black_box(complexity)
        })
    });

    // …and with a writer thread continuously rebuilding one partition.  The
    // probes pin whatever generation is current per iteration; the other
    // shards' postings are Arc-shared across generations, so the scans must
    // not degrade.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let handle = Arc::clone(&handle);
        let delta_db = Arc::clone(&delta_db);
        let delta_tables = delta_tables.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                handle.rebuild_shards(Arc::clone(&delta_db), &delta_tables);
            }
        })
    };
    group.bench_with_input(
        BenchmarkId::new("probe_during_rebuild", SHARDS),
        &(),
        |b, ()| {
            b.iter(|| {
                let snapshot = handle.load();
                let mut complexity = 0usize;
                for query in QUERIES {
                    complexity += snapshot.lookup(query).expect("lookup runs").complexity();
                }
                black_box(complexity)
            })
        },
    );
    stop.store(true, Ordering::Relaxed);
    writer.join().expect("writer thread joins");

    group.finish();
}

criterion_group!(benches, bench_snapshot_swap);
criterion_main!(benches);
