//! Benchmarks and quality summaries for the extensions beyond the paper's
//! evaluation (its §5.3.1 war stories and §7 future work):
//!
//! * bi-temporal historization annotations (plain vs annotated metadata
//!   graph, entity recall of Q2.1/Q2.2),
//! * the far-fetching join-path bound (`max_join_path_length`),
//! * compactness re-ranking (BLINKS-inspired),
//! * relevance feedback folded into Step 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use soda_core::{FeedbackStore, SodaConfig, SodaEngine};
use soda_eval::experiments::historization::historization_comparison;
use soda_eval::experiments::run_workload_with_engine;
use soda_eval::report::print_historization;
use soda_warehouse::enterprise::{self, EnterpriseConfig};
use soda_warehouse::Warehouse;

const CONFIG: EnterpriseConfig = EnterpriseConfig {
    seed: 42,
    padding: false,
    data_scale: 0.15,
};

fn mean_best_f1(warehouse: &Warehouse, engine: &SodaEngine<'_>) -> f64 {
    let evals = run_workload_with_engine(warehouse, engine);
    evals.iter().map(|e| e.best.f1()).sum::<f64>() / evals.len() as f64
}

/// Historization annotations: query latency on the plain vs the annotated
/// graph, plus the entity-recall comparison table.
fn bench_historization(c: &mut Criterion) {
    let plain = enterprise::build_with(CONFIG);
    let annotated = enterprise::build_with_historization(CONFIG);

    let mut group = c.benchmark_group("extension_historization");
    group.sample_size(10);
    for (name, warehouse) in [("plain", &plain), ("annotated", &annotated)] {
        let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());
        group.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, engine| {
            b.iter(|| black_box(engine.search("Sara").unwrap().len()))
        });
    }
    group.finish();

    println!(
        "\n{}",
        print_historization(&historization_comparison(CONFIG))
    );
}

/// Far-fetching: workload quality and latency as the join-path bound grows.
fn bench_far_fetching(c: &mut Criterion) {
    let warehouse = enterprise::build_with(CONFIG);

    let mut group = c.benchmark_group("extension_far_fetching");
    group.sample_size(10);
    for bound in [1usize, 2, 3, 6] {
        let config = SodaConfig {
            max_join_path_length: bound,
            ..SodaConfig::default()
        };
        let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, config);
        group.bench_with_input(BenchmarkId::from_parameter(bound), &engine, |b, engine| {
            b.iter(|| black_box(run_workload_with_engine(&warehouse, engine).len()))
        });
    }
    group.finish();

    println!("\nFar-fetching quality (mean best-F1 over the 13 workload queries):");
    for bound in [1usize, 2, 3, 6] {
        let config = SodaConfig {
            max_join_path_length: bound,
            ..SodaConfig::default()
        };
        let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, config);
        println!(
            "  max_join_path_length = {bound:<2}  mean best-F1 = {:.3}",
            mean_best_f1(&warehouse, &engine)
        );
    }
}

/// Compactness re-ranking and relevance feedback: latency of the re-ranked
/// search plus a summary of how the top interpretation changes.
fn bench_reranking(c: &mut Criterion) {
    let warehouse = enterprise::build_with(CONFIG);
    let default_engine =
        SodaEngine::new(&warehouse.database, &warehouse.graph, SodaConfig::default());
    let compact_engine = SodaEngine::new(
        &warehouse.database,
        &warehouse.graph,
        SodaConfig {
            compactness_rerank: true,
            ..SodaConfig::default()
        },
    );

    let mut group = c.benchmark_group("extension_reranking");
    group.sample_size(10);
    group.bench_function("provenance_only", |b| {
        b.iter(|| black_box(default_engine.search("Credit Suisse").unwrap().len()))
    });
    group.bench_function("compactness_rerank", |b| {
        b.iter(|| black_box(compact_engine.search("Credit Suisse").unwrap().len()))
    });

    let baseline = default_engine.search("Credit Suisse").unwrap();
    let mut feedback = FeedbackStore::new();
    for _ in 0..3 {
        feedback.dislike(&baseline[0]);
    }
    group.bench_function("with_feedback", |b| {
        b.iter(|| {
            black_box(
                default_engine
                    .search_with_feedback("Credit Suisse", &feedback)
                    .unwrap()
                    .len(),
            )
        })
    });
    group.finish();

    let compact = compact_engine.search("Credit Suisse").unwrap();
    let reranked = default_engine
        .search_with_feedback("Credit Suisse", &feedback)
        .unwrap();
    println!("\n'Credit Suisse' top interpretation per ranking variant:");
    println!("  provenance only     : {:?}", baseline[0].tables);
    println!("  compactness rerank  : {:?}", compact[0].tables);
    println!("  after 3 dislikes    : {:?}", reranked[0].tables);
}

criterion_group!(
    benches,
    bench_historization,
    bench_far_fetching,
    bench_reranking
);
criterion_main!(benches);
