//! Streaming-delta-ingestion benchmarks on the enterprise warehouse.
//!
//! The question behind the `soda-ingest` subsystem: what does absorbing a
//! batch of onboarded customers cost when it lands in per-shard side logs
//! (`SnapshotHandle::absorb`) versus when it forces the owning partitions to
//! be rebuilt (`WarehouseDelta::apply` + `rebuild_shards`)?  And what do the
//! live logs cost the probe path until a compaction folds them?
//!
//! * `ingest_feed` — replay the onboarding feed into side logs and publish:
//!   pays the database copy plus tokenizing *only the new rows*.
//! * `rebuild_delta` — the batch path for the same rows: pays the database
//!   copy plus a full rescan of every table owned by the touched partitions.
//!   The gap between these two is the latency the streaming path turns into
//!   a background cost.
//! * `probe_clean` vs `probe_logged` — the probe workload of
//!   `lookup_sharding` against a log-free snapshot and against one whose
//!   side logs hold the onboarded rows.  Read through the **min**: the
//!   overlay adds a bounded per-shard scan, it must not change the shape of
//!   the hot path.
//! * `compact_logs` — folding the grown logs back into rebuilt partitions
//!   (the background cost the `Compactor` pays instead of the reload).
//! * `ingest_feed_4x` / `rebuild_delta_4x` — the same feed against a 4×
//!   `data_scale` warehouse: with copy-on-write snapshots the ingest cost is
//!   O(delta), so `ingest_feed_4x` should stay near `ingest_feed` while the
//!   rebuild path grows with the warehouse.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use soda_core::{EngineSnapshot, SnapshotHandle, SodaConfig};
use soda_warehouse::delta::WarehouseDelta;
use soda_warehouse::enterprise::{self, data, EnterpriseConfig};

const SHARDS: usize = 4;
/// Onboarded customers per feed — large enough that the per-shard rebuild's
/// full-table rescan dominates it.
const FEED_ROWS: usize = 32;

/// The `lookup_sharding` probe workload (minus the aggregates), plus one
/// query that only the onboarded rows can answer once ingested.
const QUERIES: &[&str] = &[
    "customers Switzerland",
    "Meier",
    "Keller Switzerland",
    "CHF",
];

fn bench_delta_ingest(c: &mut Criterion) {
    let warehouse = enterprise::build_with_dimensions(
        EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 1.0,
        },
        4.0,
    );
    let config = SodaConfig {
        shards: SHARDS,
        ..SodaConfig::default()
    };
    let db = Arc::new(warehouse.database.clone());
    let graph = Arc::new(warehouse.graph.clone());
    let base = Arc::new(EngineSnapshot::build(
        Arc::clone(&db),
        Arc::clone(&graph),
        config.clone(),
    ));
    let delta: WarehouseDelta = data::onboarding_delta(&warehouse.database, 7, FEED_ROWS);
    let feed = delta.to_feed();
    let delta_tables = delta.changed_tables();

    let mut group = c.benchmark_group("delta_ingest");
    group.sample_size(10);

    // Streaming: absorb the feed into side logs.
    group.bench_with_input(BenchmarkId::new("ingest_feed", FEED_ROWS), &(), |b, ()| {
        b.iter(|| {
            let handle = SnapshotHandle::new(Arc::clone(&base));
            black_box(handle.absorb(&feed).expect("feed absorbs"))
        })
    });

    // Batch: apply the same rows and rebuild the owning partitions.
    group.bench_with_input(
        BenchmarkId::new("rebuild_delta", FEED_ROWS),
        &(),
        |b, ()| {
            b.iter(|| {
                let handle = SnapshotHandle::new(Arc::clone(&base));
                let next = delta.apply(&warehouse.database).expect("delta applies");
                black_box(handle.rebuild_shards(Arc::new(next), &delta_tables))
            })
        },
    );

    // Probe latency against a log-free snapshot…
    group.bench_with_input(BenchmarkId::new("probe_clean", SHARDS), &(), |b, ()| {
        b.iter(|| {
            let mut complexity = 0usize;
            for query in QUERIES {
                complexity += base.lookup(query).expect("lookup runs").complexity();
            }
            black_box(complexity)
        })
    });

    // …and against one whose side logs carry the onboarded rows.
    let logged_handle = SnapshotHandle::new(Arc::clone(&base));
    logged_handle.absorb(&feed).expect("feed absorbs");
    let logged = logged_handle.load();
    assert!(
        !logged.shards_with_side_logs().is_empty(),
        "the probes below must hit live side logs"
    );
    group.bench_with_input(BenchmarkId::new("probe_logged", SHARDS), &(), |b, ()| {
        b.iter(|| {
            let mut complexity = 0usize;
            for query in QUERIES {
                complexity += logged.lookup(query).expect("lookup runs").complexity();
            }
            black_box(complexity)
        })
    });

    // The background cost compaction pays to restore the frozen fast path.
    let all_shards: Vec<usize> = (0..SHARDS).collect();
    group.bench_with_input(BenchmarkId::new("compact_logs", SHARDS), &(), |b, ()| {
        b.iter(|| {
            let handle = SnapshotHandle::new(Arc::clone(&base));
            handle.absorb(&feed).expect("feed absorbs");
            black_box(handle.compact(&all_shards).expect("a log to fold"))
        })
    });

    // The scale axis: the same-sized feed against a 4× data_scale
    // warehouse.  Copy-on-write snapshots make absorb O(delta) — this
    // point should sit near `ingest_feed`, while the apply+rebuild path
    // rescans the bigger tables and grows with the warehouse.
    let warehouse4 = enterprise::build_with_dimensions(
        EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 4.0,
        },
        4.0,
    );
    let base4 = {
        let db4 = Arc::new(warehouse4.database.clone());
        let graph4 = Arc::new(warehouse4.graph.clone());
        Arc::new(EngineSnapshot::build(db4, graph4, config.clone()))
    };
    let delta4: WarehouseDelta = data::onboarding_delta(&warehouse4.database, 7, FEED_ROWS);
    let feed4 = delta4.to_feed();
    let delta4_tables = delta4.changed_tables();

    group.bench_with_input(
        BenchmarkId::new("ingest_feed_4x", FEED_ROWS),
        &(),
        |b, ()| {
            b.iter(|| {
                let handle = SnapshotHandle::new(Arc::clone(&base4));
                black_box(handle.absorb(&feed4).expect("feed absorbs"))
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("rebuild_delta_4x", FEED_ROWS),
        &(),
        |b, ()| {
            b.iter(|| {
                let handle = SnapshotHandle::new(Arc::clone(&base4));
                let next = delta4.apply(&warehouse4.database).expect("delta applies");
                black_box(handle.rebuild_shards(Arc::new(next), &delta4_tables))
            })
        },
    );

    group.finish();
}

criterion_group!(benches, bench_delta_ingest);
criterion_main!(benches);
