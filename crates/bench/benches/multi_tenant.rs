//! Multi-tenant isolation benchmarks: the cost of hosting and the fairness
//! guarantee under pressure.
//!
//! `warm_hit_solo` is tenant B's warm cache hit on an otherwise idle
//! two-tenant service; `warm_hit_under_storm` is the same hit while tenant A
//! floods the shared queue with distinct cold queries from a background
//! thread.  The admission quota and the submission-time warm path are what
//! keep the two figures close — the acceptance bar for the hosting layer is
//! storm ≤ 2× solo (reported by this bench, gated against the checked-in
//! baseline in CI).  `cold_per_tenant/N` measures one cold pipeline
//! execution on each of N hosted tenants back to back, so the per-tenant
//! registry and lane overhead stays visible as tenants are added.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use soda_core::{EngineSnapshot, SodaConfig};
use soda_service::{JobHandle, QueryRequest, QueryService, ServiceConfig};
use soda_warehouse::minibank;

const WARM_QUERY: &str = "Sara Guttinger";

fn snapshot(seed: u64) -> Arc<EngineSnapshot> {
    let w = minibank::build(seed);
    Arc::new(EngineSnapshot::build(
        Arc::new(w.database),
        Arc::new(w.graph),
        SodaConfig::default(),
    ))
}

fn two_tenant_service() -> QueryService {
    let svc = QueryService::start(
        snapshot(42),
        ServiceConfig::default()
            .workers(2)
            .queue_capacity(8)
            .cache_capacity(1024),
    );
    svc.add_tenant("tenant-b", snapshot(42))
        .expect("tenant-b registers");
    // Prime B's warm page: every measured hit below is a pure cache probe.
    svc.query(QueryRequest::new(WARM_QUERY).tenant("tenant-b"))
        .wait()
        .expect("priming query serves");
    svc
}

fn warm_hit(svc: &QueryService) -> usize {
    svc.query(QueryRequest::new(WARM_QUERY).tenant("tenant-b"))
        .wait()
        .expect("warm hit serves")
        .page
        .results
        .len()
}

fn bench_isolation(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_tenant");
    group.sample_size(10);

    let svc = Arc::new(two_tenant_service());
    group.bench_function("warm_hit_solo", |b| b.iter(|| black_box(warm_hit(&svc))));

    // Tenant A's storm: a background thread keeps the shared queue pressed
    // against A's admission quota with distinct cold queries (bursts of 8,
    // every one a cache miss) for as long as the measurement runs.
    let stop = Arc::new(AtomicBool::new(false));
    let storm = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        let counter = AtomicU64::new(0);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                let base = counter.fetch_add(8, Ordering::Relaxed);
                let handles: Vec<JobHandle> = (base..base + 8)
                    .map(|i| svc.query(QueryRequest::new(format!("Storm{i}"))))
                    .collect();
                for h in handles {
                    let _ = h.wait();
                }
            }
        })
    };
    group.bench_function("warm_hit_under_storm", |b| {
        b.iter(|| black_box(warm_hit(&svc)))
    });
    stop.store(true, Ordering::Release);
    storm.join().expect("storm thread joins");

    group.finish();
}

fn bench_cold_per_tenant(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_tenant");
    group.sample_size(10);

    for tenants in [1usize, 4] {
        let svc = QueryService::start(
            snapshot(42),
            ServiceConfig::default().workers(2).cache_capacity(1024),
        );
        for t in 1..tenants {
            svc.add_tenant(format!("tenant-{t}"), snapshot(42))
                .expect("tenant registers");
        }
        let names: Vec<String> = (0..tenants)
            .map(|t| {
                if t == 0 {
                    "default".to_string()
                } else {
                    format!("tenant-{t}")
                }
            })
            .collect();
        // Distinct query text per iteration: every measured submission is a
        // true cold execution through the tenant's own snapshot.
        let round = AtomicU64::new(0);
        group.bench_with_input(
            BenchmarkId::new("cold_per_tenant", tenants),
            &tenants,
            |b, _| {
                b.iter(|| {
                    let r = round.fetch_add(1, Ordering::Relaxed);
                    for name in &names {
                        black_box(
                            svc.query(
                                QueryRequest::new(format!("Coldville{r}")).tenant(name.as_str()),
                            )
                            .wait()
                            .expect("cold query serves"),
                        );
                    }
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_isolation, bench_cold_per_tenant);
criterion_main!(benches);
