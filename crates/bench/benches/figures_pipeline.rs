//! Figures 1–10 — regenerates the paper's figures and benchmarks the pipeline
//! steps they illustrate (lookup classification for Figure 5, the tables step
//! for Figure 6, direct-path join selection for Figure 9).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use soda_core::{SodaConfig, SodaEngine};
use soda_eval::experiments::figures;
use soda_warehouse::enterprise::{self, EnterpriseConfig};
use soda_warehouse::minibank;

fn bench_figures(c: &mut Criterion) {
    let bank = minibank::build(42);
    let enterprise = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.1,
    });
    let engine = SodaEngine::new(&bank.database, &bank.graph, SodaConfig::default());

    let mut group = c.benchmark_group("figures_pipeline");
    group.sample_size(20);
    group.bench_function("figure5_lookup_classification", |b| {
        b.iter(|| {
            black_box(
                engine
                    .search_traced("customers Zurich financial instruments")
                    .unwrap(),
            )
        })
    });
    group.bench_function("figure6_tables_step", |b| {
        b.iter(|| black_box(figures::figure6_tables(&bank)))
    });
    group.bench_function("figure9_direct_path_joins", |b| {
        b.iter(|| black_box(figures::figure9_direct_path(&enterprise)))
    });
    group.finish();

    println!(
        "\nFigure 1 (conceptual schema, DOT):\n{}",
        figures::figure1_dot(&bank)
    );
    println!(
        "Figure 2 (logical schema, DOT):\n{}",
        figures::figure2_dot(&bank)
    );
    println!(
        "Figure 3 (metadata layers): {:?}",
        figures::figure3_layers(&bank)
    );
    println!(
        "Figure 4 (pipeline step shares): {:?}",
        figures::figure4_trace(&bank, "customers Zurich financial instruments")
    );
    println!(
        "Figure 5 (classification): {:?}",
        figures::figure5_classification(&bank)
    );
    println!(
        "Figure 6 (tables step): {:?}",
        figures::figure6_tables(&bank)
    );
    println!("Figure 7 (table pattern): {}", figures::figure7_pattern());
    println!(
        "Figure 8 (foreign-key pattern): {}",
        figures::figure8_pattern()
    );
    let (used, attached) = figures::figure9_direct_path(&enterprise);
    println!("Figure 9 (joins on direct path): used {used:?} of attached {attached:?}");
    println!(
        "Figure 10 (schema hierarchy):\n{}",
        figures::figure10_hierarchy(&enterprise)
    );
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
