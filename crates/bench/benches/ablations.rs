//! Ablation benchmarks for the design decisions called out in DESIGN.md:
//!
//! 1. direct-path join pruning vs all discovered joins,
//! 2. provenance-weighted ranking vs uniform weights,
//! 3. longest-word-combination lookup vs single-token lookup,
//! 4. bridge-table detection on/off,
//! 5. inverted index over the base data on/off (the Keymantic situation).
//!
//! For each variant the full workload is evaluated; besides the runtime, the
//! printed summary reports the mean best-F1 over the 13 queries so the quality
//! impact of each ablation is visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use soda_core::{RankingWeights, SodaConfig, SodaEngine};
use soda_eval::experiments::run_workload_with_engine;
use soda_warehouse::enterprise::{self, EnterpriseConfig};
use soda_warehouse::Warehouse;

fn variants() -> Vec<(&'static str, SodaConfig)> {
    let base = SodaConfig::default();
    vec![
        ("default", base.clone()),
        (
            "no_direct_path_pruning",
            SodaConfig {
                direct_path_pruning: false,
                ..base.clone()
            },
        ),
        (
            "uniform_ranking",
            SodaConfig {
                weights: RankingWeights::uniform(),
                ..base.clone()
            },
        ),
        (
            "single_token_lookup",
            SodaConfig {
                max_phrase_tokens: 1,
                ..base.clone()
            },
        ),
        (
            "no_bridge_tables",
            SodaConfig {
                use_bridge_tables: false,
                ..base.clone()
            },
        ),
        (
            "no_inverted_index",
            SodaConfig {
                use_inverted_index: false,
                ..base.clone()
            },
        ),
        (
            "no_dbpedia",
            SodaConfig {
                use_dbpedia: false,
                ..base
            },
        ),
    ]
}

fn mean_best_f1(warehouse: &Warehouse, engine: &SodaEngine<'_>) -> f64 {
    let evals = run_workload_with_engine(warehouse, engine);
    evals.iter().map(|e| e.best.f1()).sum::<f64>() / evals.len() as f64
}

fn bench_ablations(c: &mut Criterion) {
    let warehouse = enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.15,
    });

    let mut group = c.benchmark_group("ablations_workload");
    group.sample_size(10);
    for (name, config) in variants() {
        let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, config);
        group.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, engine| {
            b.iter(|| black_box(run_workload_with_engine(&warehouse, engine).len()))
        });
    }
    group.finish();

    println!("\nAblation quality summary (mean best-F1 over the 13 workload queries):");
    for (name, config) in variants() {
        let engine = SodaEngine::new(&warehouse.database, &warehouse.graph, config);
        println!("  {:<24} {:.3}", name, mean_best_f1(&warehouse, &engine));
    }
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
