//! The ingestor: applies a change feed to a database copy while routing the
//! indexed consequences into per-shard side logs.

use std::collections::BTreeSet;

use soda_relation::{shard_for_table, Database, Result, SideLog};

use crate::event::{ChangeFeed, RowEvent};

/// What one absorb did: sizes for metrics, touched shards for cache
/// invalidation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Events applied.
    pub events: usize,
    /// Rows carried by those events.
    pub rows: usize,
    /// Rows added by `Append` events (replacement rows excluded) — the
    /// copy-on-write tail growth this absorb caused.
    pub rows_appended: usize,
    /// Tables the feed mutated — the only tables the copy-on-write
    /// database derive actually copied.
    pub tables_copied: usize,
    /// Tables left untouched and therefore structurally shared (`Arc`
    /// bump, no row copy) with the base database.
    pub tables_shared: usize,
    /// Shards whose side logs changed, sorted and deduplicated.
    pub touched_shards: Vec<usize>,
    /// Tables touched, lower-cased, sorted and deduplicated.
    pub touched_tables: Vec<String>,
}

/// Feed-level sizes captured *before* an owned feed is consumed — the parts
/// of an [`IngestReport`] that describe the input rather than the outcome.
struct FeedSummary {
    events: usize,
    rows: usize,
    tables: Vec<String>,
}

impl FeedSummary {
    fn of(feed: &ChangeFeed) -> Self {
        Self {
            events: feed.len(),
            rows: feed.row_count(),
            tables: feed.tables(),
        }
    }
}

/// Routes row-level events into per-shard side logs by the same stable table
/// hash that partitions the frozen index — so every table's overlay lands in
/// the shard whose frozen postings it extends or supersedes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ingestor {
    shard_count: usize,
}

impl Ingestor {
    /// An ingestor for a `shard_count`-way partitioned index (clamped to at
    /// least 1).
    pub fn new(shard_count: usize) -> Self {
        Self {
            shard_count: shard_count.max(1),
        }
    }

    /// Number of shards events are routed across.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard that owns `table`'s postings (and therefore its side-log
    /// entries).
    pub fn shard_for(&self, table: &str) -> usize {
        shard_for_table(table, self.shard_count)
    }

    /// Applies every event of `feed` to `db` **and** mirrors the indexed
    /// consequences into `logs` (one [`SideLog`] per shard, which must match
    /// [`shard_count`](Self::shard_count)): appends index only the new tail
    /// rows, replacements mask the frozen postings and re-index from row
    /// zero, truncations mask.
    ///
    /// On any error (unknown table, arity or type violation) the feed is
    /// abandoned mid-way; callers are expected to pass *copies* of their
    /// published database and logs and to discard them on `Err`, so no
    /// partial state ever escapes — exactly how
    /// `soda_core::SnapshotHandle::absorb` drives it.
    pub fn absorb_into(
        &self,
        db: &mut Database,
        logs: &mut [SideLog],
        feed: &ChangeFeed,
    ) -> Result<IngestReport> {
        assert_eq!(logs.len(), self.shard_count, "one side log per index shard");
        self.run(db, Some(logs), feed.events().iter().cloned(), feed)
    }

    /// [`absorb_into`](Self::absorb_into) for an **owned** feed: appended
    /// and replacement rows move by value into the database — no per-row
    /// clone.  The hot ingestion path (`soda_core::SnapshotHandle`'s owned
    /// absorb) feeds this.
    pub fn absorb_feed(
        &self,
        db: &mut Database,
        logs: &mut [SideLog],
        feed: ChangeFeed,
    ) -> Result<IngestReport> {
        assert_eq!(logs.len(), self.shard_count, "one side log per index shard");
        let summary = FeedSummary::of(&feed);
        self.run_events(db, Some(logs), feed.into_events(), summary)
    }

    /// Applies every event of `feed` to `db` without maintaining side logs —
    /// the path for engines whose inverted index is disabled (the base data
    /// still has to move so SQL execution sees the new rows).
    pub fn apply_only(&self, db: &mut Database, feed: &ChangeFeed) -> Result<IngestReport> {
        self.run(db, None, feed.events().iter().cloned(), feed)
    }

    /// [`apply_only`](Self::apply_only) for an owned feed — rows move by
    /// value.
    pub fn apply_feed(&self, db: &mut Database, feed: ChangeFeed) -> Result<IngestReport> {
        let summary = FeedSummary::of(&feed);
        self.run_events(db, None, feed.into_events(), summary)
    }

    fn run<I: Iterator<Item = RowEvent>>(
        &self,
        db: &mut Database,
        logs: Option<&mut [SideLog]>,
        events: I,
        feed: &ChangeFeed,
    ) -> Result<IngestReport> {
        self.run_events(db, logs, events, FeedSummary::of(feed))
    }

    fn run_events<I: IntoIterator<Item = RowEvent>>(
        &self,
        db: &mut Database,
        mut logs: Option<&mut [SideLog]>,
        events: I,
        summary: FeedSummary,
    ) -> Result<IngestReport> {
        let mut touched: BTreeSet<usize> = BTreeSet::new();
        let mut rows_appended = 0usize;
        for event in events {
            let shard = self.shard_for(event.table());
            match event {
                RowEvent::Append { table, row } => {
                    let start = db.table(&table)?.row_count();
                    db.insert(&table, row)?;
                    rows_appended += 1;
                    if let Some(logs) = logs.as_deref_mut() {
                        logs[shard].append_rows(db.table(&table)?, start);
                    }
                }
                RowEvent::Replace { table, rows } => {
                    let target = db.table_mut(&table)?;
                    target.truncate();
                    target.insert_all(rows)?;
                    if let Some(logs) = logs.as_deref_mut() {
                        logs[shard].replace_table(db.table(&table)?);
                    }
                }
                RowEvent::Truncate { table } => {
                    db.table_mut(&table)?.truncate();
                    if let Some(logs) = logs.as_deref_mut() {
                        logs[shard].truncate_table(&table);
                    }
                }
            }
            touched.insert(shard);
        }
        let tables_copied = summary.tables.len();
        Ok(IngestReport {
            events: summary.events,
            rows: summary.rows,
            rows_appended,
            tables_copied,
            tables_shared: db.table_count().saturating_sub(tables_copied),
            touched_shards: touched.into_iter().collect(),
            touched_tables: summary.tables,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_relation::{DataType, InvertedIndex, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("city")
                .column("id", DataType::Int)
                .column("name", DataType::Text)
                .build(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("org")
                .column("id", DataType::Int)
                .column("name", DataType::Text)
                .build(),
        )
        .unwrap();
        db.insert("city", vec![Value::Int(1), Value::from("Zurich")])
            .unwrap();
        db.insert("org", vec![Value::Int(1), Value::from("Credit Suisse")])
            .unwrap();
        db
    }

    #[test]
    fn absorb_routes_events_to_the_owning_shards() {
        let base = db();
        for shards in [1usize, 2, 4, 8] {
            let ingestor = Ingestor::new(shards);
            let mut next = base.clone();
            let mut logs = vec![SideLog::default(); shards];
            let feed = ChangeFeed::new()
                .append_row("city", vec![Value::Int(2), Value::from("Basel")])
                .replace("org", vec![vec![Value::Int(9), Value::from("Basler Bank")]]);
            let report = ingestor.absorb_into(&mut next, &mut logs, &feed).unwrap();
            assert_eq!(report.events, 2);
            assert_eq!(report.rows, 2);
            assert_eq!(
                report.touched_tables,
                vec!["city".to_string(), "org".to_string()]
            );
            let mut owners: Vec<usize> = ["city", "org"]
                .iter()
                .map(|t| ingestor.shard_for(t))
                .collect();
            owners.sort_unstable();
            owners.dedup();
            assert_eq!(report.touched_shards, owners);
            // Every log entry sits in the shard its table hashes to.
            for (i, log) in logs.iter().enumerate() {
                if log.posting_count() > 0 || log.has_masks() {
                    assert!(report.touched_shards.contains(&i));
                }
            }
            // The merged view answers like a full rebuild over the new db.
            let merged = InvertedIndex::build_sharded(&base, shards).with_side_logs(logs);
            let rebuilt = InvertedIndex::build_sharded(&next, shards);
            for phrase in ["Basel", "Basler Bank", "Zurich", "Credit Suisse"] {
                assert_eq!(
                    merged.lookup_phrase(&next, phrase),
                    rebuilt.lookup_phrase(&next, phrase),
                    "'{phrase}' diverged at {shards} shards"
                );
            }
        }
    }

    #[test]
    fn errors_abandon_the_feed() {
        let ingestor = Ingestor::new(2);
        let mut next = db();
        let mut logs = vec![SideLog::default(); 2];
        let feed = ChangeFeed::new()
            .append_row("city", vec![Value::Int(2), Value::from("Basel")])
            .append_row("no_such_table", vec![Value::Int(1)]);
        assert!(ingestor.absorb_into(&mut next, &mut logs, &feed).is_err());
        // Arity violations error too.
        let feed = ChangeFeed::new().append_row("city", vec![Value::Int(2)]);
        assert!(ingestor.apply_only(&mut db(), &feed).is_err());
    }

    #[test]
    fn apply_only_moves_the_base_data_without_logs() {
        let ingestor = Ingestor::new(4);
        let mut next = db();
        let feed = ChangeFeed::new().truncate("org");
        let report = ingestor.apply_only(&mut next, &feed).unwrap();
        assert_eq!(next.table("org").unwrap().row_count(), 0);
        assert_eq!(report.rows, 0);
        assert_eq!(report.touched_shards, vec![ingestor.shard_for("org")]);
    }
}
