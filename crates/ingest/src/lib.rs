//! # soda-ingest
//!
//! Streaming delta ingestion for the SODA reproduction.
//!
//! The paper's warehouse (§6) changes continuously — nightly feeds append to
//! transactional tables, dimensions get restated — while the engine's
//! indexes are immutable by design.  The batch answer (apply a
//! `WarehouseDelta`, rebuild the owning index partitions, hot-swap) pays a
//! full per-shard rebuild up front on every feed.  This crate provides the
//! *streaming* answer:
//!
//! * [`RowEvent`] / [`ChangeFeed`] — a row-level change feed: appends,
//!   wholesale replacements and truncations, per table, in order.
//! * [`Ingestor`] — routes a feed by
//!   [`shard_for_table`](soda_relation::shard_for_table) into per-shard
//!   [`SideLog`]s (append-only posting overlays with the same canonical
//!   posting shape as the frozen
//!   [`IndexShard`](soda_relation::IndexShard)s) while applying the events
//!   to a copy of the base data.  Queries merge frozen shard and side log
//!   on the fly — generated SQL stays byte-identical to a fully rebuilt
//!   snapshot at every shard count.
//! * [`CompactionPolicy`] — the threshold that decides when a grown log is
//!   folded back into a rebuilt partition (turning reload latency into a
//!   continuous background cost).  The folding itself reuses the hot-swap
//!   layer: `soda_core::SnapshotHandle::{absorb, compact}` publish
//!   log-bearing and log-folded snapshot generations, and
//!   `soda_service::QueryService::ingest` plus its background compaction
//!   worker drive the whole loop under live traffic.
//!
//! ```
//! use soda_ingest::{ChangeFeed, Ingestor};
//! use soda_relation::{SideLog, Value};
//!
//! let mut db = soda_warehouse_doctest_stub::minibank();
//! # mod soda_warehouse_doctest_stub {
//! #     use soda_relation::{Database, DataType, TableSchema, Value};
//! #     pub fn minibank() -> Database {
//! #         let mut db = Database::new();
//! #         db.create_table(
//! #             TableSchema::builder("addresses")
//! #                 .column("id", DataType::Int)
//! #                 .column("city", DataType::Text)
//! #                 .build(),
//! #         )
//! #         .unwrap();
//! #         db.insert("addresses", vec![Value::Int(1), Value::from("Zurich")]).unwrap();
//! #         db
//! #     }
//! # }
//! let feed = ChangeFeed::new().append_row(
//!     "addresses",
//!     vec![Value::Int(2), Value::from("Basel")],
//! );
//! let ingestor = Ingestor::new(4);
//! let mut logs = vec![SideLog::default(); 4];
//! let report = ingestor.absorb_into(&mut db, &mut logs, &feed).unwrap();
//! assert_eq!(report.rows, 1);
//! assert_eq!(report.touched_shards.len(), 1);
//! ```

pub mod compact;
pub mod event;
pub mod ingestor;
pub mod route;

pub use compact::CompactionPolicy;
pub use event::{ChangeFeed, RowEvent};
pub use ingestor::{IngestReport, Ingestor};
pub use route::FeedRouter;

// Re-exported so the subsystem's full surface (feed → routing → overlay) is
// importable from one crate; the type lives in `soda-relation` because the
// probe path merges it with the frozen shards there.
pub use soda_relation::SideLog;
