//! Tenant-routed feed accumulation.
//!
//! A multi-tenant host receives one interleaved stream of row events —
//! upstream connectors rarely deliver per-warehouse files — and each event
//! belongs to exactly one hosted tenant.  [`FeedRouter`] demultiplexes that
//! stream into one [`ChangeFeed`] per tenant, preserving per-tenant event
//! order, so the serving layer can absorb (and write-ahead-journal) each
//! tenant's batch under that tenant's own snapshot and budget.

use crate::event::{ChangeFeed, RowEvent};

/// Accumulates an interleaved event stream into per-tenant change feeds.
///
/// Tenants are keyed by name; per-tenant event order is the arrival order.
/// The router is a plain accumulator — no locking, no I/O — so callers
/// decide the batching boundary (`take` one tenant, or `drain` everything).
#[derive(Debug, Default)]
pub struct FeedRouter {
    feeds: Vec<(String, ChangeFeed)>,
}

impl FeedRouter {
    /// Creates an empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event to `tenant`'s pending feed.
    pub fn push(&mut self, tenant: impl AsRef<str>, event: RowEvent) {
        let tenant = tenant.as_ref();
        match self.feeds.iter_mut().find(|(name, _)| name == tenant) {
            Some((_, feed)) => feed.push(event),
            None => {
                let mut feed = ChangeFeed::new();
                feed.push(event);
                self.feeds.push((tenant.to_string(), feed));
            }
        }
    }

    /// Removes and returns `tenant`'s accumulated feed, if any events were
    /// routed to it.
    pub fn take(&mut self, tenant: impl AsRef<str>) -> Option<ChangeFeed> {
        let tenant = tenant.as_ref();
        let idx = self.feeds.iter().position(|(name, _)| name == tenant)?;
        Some(self.feeds.remove(idx).1)
    }

    /// Removes and returns every tenant's accumulated feed, in first-seen
    /// tenant order.
    pub fn drain(&mut self) -> Vec<(String, ChangeFeed)> {
        std::mem::take(&mut self.feeds)
    }

    /// Tenants currently holding pending events, in first-seen order.
    pub fn tenants(&self) -> Vec<&str> {
        self.feeds.iter().map(|(name, _)| name.as_str()).collect()
    }

    /// Total pending events across all tenants.
    pub fn len(&self) -> usize {
        self.feeds.iter().map(|(_, feed)| feed.len()).sum()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.feeds.iter().all(|(_, feed)| feed.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_relation::Value;

    fn row(n: i64) -> RowEvent {
        RowEvent::Append {
            table: "trades".into(),
            row: vec![Value::Int(n)],
        }
    }

    #[test]
    fn routes_interleaved_events_to_per_tenant_feeds_in_order() {
        let mut router = FeedRouter::new();
        router.push("acme", row(1));
        router.push("globex", row(10));
        router.push("acme", row(2));
        assert_eq!(router.tenants(), vec!["acme", "globex"]);
        assert_eq!(router.len(), 3);

        let acme = router.take("acme").expect("acme has events");
        assert_eq!(acme.events(), &[row(1), row(2)]);
        assert!(router.take("acme").is_none(), "take removes the feed");
        assert_eq!(router.len(), 1);
    }

    #[test]
    fn drain_empties_the_router_in_first_seen_order() {
        let mut router = FeedRouter::new();
        router.push("globex", row(1));
        router.push("acme", row(2));
        router.push("globex", row(3));
        let drained = router.drain();
        assert!(router.is_empty());
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].0, "globex");
        assert_eq!(drained[0].1.events(), &[row(1), row(3)]);
        assert_eq!(drained[1].0, "acme");
        assert_eq!(drained[1].1.events(), &[row(2)]);
    }

    #[test]
    fn unknown_tenant_take_is_none_and_empty_router_reports_empty() {
        let mut router = FeedRouter::new();
        assert!(router.is_empty());
        assert!(router.take("nobody").is_none());
        assert!(router.drain().is_empty());
    }
}
