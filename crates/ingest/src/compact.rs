//! When to fold a side log back into a rebuilt index partition.
//!
//! A side log keeps ingestion cheap but taxes every probe that lands on its
//! shard (the overlay candidates are scanned on top of the frozen ones, and
//! masked tables force per-posting filtering).  Once a log outgrows its
//! budget, folding it — rebuilding just that partition from the current base
//! data, which already contains the logged rows — restores the frozen fast
//! path.  The fold itself is the existing per-shard hot swap
//! (`soda_core::SnapshotHandle::compact` reuses the `rebuild_shards`
//! machinery), so it bumps only the folded shards' generation slots and the
//! fingerprint-scoped cache and coalescing logic invalidates for free.

/// Size/row budget past which a shard's side log is due for compaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// A log holding more postings than this is due.
    pub max_log_postings: usize,
    /// A log holding more rows than this is due.
    pub max_log_rows: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self {
            max_log_postings: 4096,
            max_log_rows: 1024,
        }
    }
}

impl CompactionPolicy {
    /// A policy that compacts after any single ingested row — useful in
    /// tests and for workloads where probes vastly outnumber ingests.
    pub fn eager() -> Self {
        Self {
            max_log_postings: 0,
            max_log_rows: 0,
        }
    }

    /// True when a log of `postings` postings / `rows` rows / `masks`
    /// masked tables exceeds the budget.  *Any* mask is due regardless of
    /// the size thresholds: a mask carries no postings or rows of its own
    /// (a `Truncate`, or a `Replace` with few rows) yet taxes every probe
    /// of its shard with per-posting filtering of the frozen candidates —
    /// only folding restores the fast path.
    pub fn is_due(&self, postings: usize, rows: usize, masks: usize) -> bool {
        masks > 0 || postings > self.max_log_postings || rows > self.max_log_rows
    }

    /// The shards whose logs exceed the budget, given the per-shard
    /// posting / row / mask gauges (as reported by
    /// `ShardStats::{log_postings, log_rows, log_masks}` or
    /// `ShardedInvertedIndex::{side_log_postings, side_log_rows,
    /// side_log_masks}`).
    pub fn due(
        &self,
        log_postings: &[usize],
        log_rows: &[usize],
        log_masks: &[usize],
    ) -> Vec<usize> {
        log_postings
            .iter()
            .enumerate()
            .filter(|&(i, &postings)| {
                self.is_due(
                    postings,
                    log_rows.get(i).copied().unwrap_or(0),
                    log_masks.get(i).copied().unwrap_or(0),
                )
            })
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_names_only_overgrown_shards() {
        let policy = CompactionPolicy {
            max_log_postings: 10,
            max_log_rows: 2,
        };
        let due = policy.due(&[0, 11, 5, 3], &[0, 0, 3, 2], &[0, 0, 0, 0]);
        assert_eq!(due, vec![1, 2]);
        assert!(policy.due(&[10, 0], &[2, 0], &[0, 0]).is_empty());
    }

    #[test]
    fn any_mask_is_due_regardless_of_size() {
        let policy = CompactionPolicy::default();
        assert!(policy.is_due(0, 0, 1));
        // A truncate-only log: no postings, no rows, one mask.
        assert_eq!(policy.due(&[0, 0], &[0, 0], &[0, 1]), vec![1]);
    }

    #[test]
    fn eager_fires_on_anything() {
        let policy = CompactionPolicy::eager();
        assert!(policy.is_due(1, 0, 0));
        assert!(policy.is_due(0, 1, 0));
        assert!(!policy.is_due(0, 0, 0));
    }

    #[test]
    fn missing_gauges_default_to_zero() {
        let policy = CompactionPolicy {
            max_log_postings: 0,
            max_log_rows: 0,
        };
        assert_eq!(policy.due(&[1, 1], &[], &[]), vec![0, 1]);
    }
}
