//! Row-level change events and the ordered feed that carries them.

use soda_relation::codec::{CodecError, CodecResult, Decoder, Encoder};
use soda_relation::Row;

/// One row-level change to one table.
///
/// Events are ordered: a feed replays them in sequence, so `Replace`
/// supersedes earlier events for the same table and later `Append`s extend
/// the replacement.
#[derive(Debug, Clone, PartialEq)]
pub enum RowEvent {
    /// One row appended after the table's existing rows.
    Append {
        /// Target table (matched case-insensitively, like the catalog).
        table: String,
        /// The appended row.
        row: Row,
    },
    /// The table's content replaced wholesale (dimension restatement).
    Replace {
        /// Target table.
        table: String,
        /// The replacement rows.
        rows: Vec<Row>,
    },
    /// Every row of the table dropped.
    Truncate {
        /// Target table.
        table: String,
    },
}

impl RowEvent {
    /// The table this event touches.
    pub fn table(&self) -> &str {
        match self {
            RowEvent::Append { table, .. }
            | RowEvent::Replace { table, .. }
            | RowEvent::Truncate { table } => table,
        }
    }

    /// Number of rows this event carries.
    pub fn row_count(&self) -> usize {
        match self {
            RowEvent::Append { .. } => 1,
            RowEvent::Replace { rows, .. } => rows.len(),
            RowEvent::Truncate { .. } => 0,
        }
    }

    /// Appends this event's binary encoding to `enc` (see
    /// [`ChangeFeed::encode`] for the framing this participates in).
    pub fn encode(&self, enc: &mut Encoder) {
        match self {
            RowEvent::Append { table, row } => {
                enc.put_u8(0);
                enc.put_str(table);
                enc.put_row(row);
            }
            RowEvent::Replace { table, rows } => {
                enc.put_u8(1);
                enc.put_str(table);
                enc.put_usize(rows.len());
                for row in rows {
                    enc.put_row(row);
                }
            }
            RowEvent::Truncate { table } => {
                enc.put_u8(2);
                enc.put_str(table);
            }
        }
    }

    /// Decodes one event previously written by [`RowEvent::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> CodecResult<Self> {
        match dec.get_u8()? {
            0 => Ok(RowEvent::Append {
                table: dec.get_str()?,
                row: dec.get_row()?,
            }),
            1 => {
                let table = dec.get_str()?;
                let n = dec.get_usize()?;
                if n > dec.remaining() {
                    return Err(CodecError::BadLength);
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(dec.get_row()?);
                }
                Ok(RowEvent::Replace { table, rows })
            }
            2 => Ok(RowEvent::Truncate {
                table: dec.get_str()?,
            }),
            tag => Err(CodecError::BadTag {
                what: "RowEvent",
                tag,
            }),
        }
    }
}

/// An ordered sequence of [`RowEvent`]s — the unit an ingestion absorbs.
///
/// Builder-style construction mirrors `soda_warehouse::delta::WarehouseDelta`
/// (whose `to_feed` adapter produces exactly this type):
///
/// ```
/// use soda_ingest::ChangeFeed;
/// use soda_relation::Value;
///
/// let feed = ChangeFeed::new()
///     .append_row("trades", vec![Value::Int(1), Value::from("CHF")])
///     .truncate("stale_dim");
/// assert_eq!(feed.len(), 2);
/// assert_eq!(feed.row_count(), 1);
/// assert_eq!(feed.tables(), vec!["stale_dim".to_string(), "trades".to_string()]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChangeFeed {
    events: Vec<RowEvent>,
}

impl ChangeFeed {
    /// An empty feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one row to `table`.
    pub fn append_row(mut self, table: impl Into<String>, row: Row) -> Self {
        self.events.push(RowEvent::Append {
            table: table.into(),
            row,
        });
        self
    }

    /// Appends many rows to `table` (one event per row, preserving order).
    pub fn append_rows(mut self, table: impl Into<String>, rows: Vec<Row>) -> Self {
        let table = table.into();
        for row in rows {
            self.events.push(RowEvent::Append {
                table: table.clone(),
                row,
            });
        }
        self
    }

    /// Replaces `table`'s content wholesale.
    pub fn replace(mut self, table: impl Into<String>, rows: Vec<Row>) -> Self {
        self.events.push(RowEvent::Replace {
            table: table.into(),
            rows,
        });
        self
    }

    /// Truncates `table`.
    pub fn truncate(mut self, table: impl Into<String>) -> Self {
        self.events.push(RowEvent::Truncate {
            table: table.into(),
        });
        self
    }

    /// Pushes a pre-built event.
    pub fn push(&mut self, event: RowEvent) {
        self.events.push(event);
    }

    /// Appends every event of `other` after this feed's events.
    pub fn merge(mut self, other: ChangeFeed) -> Self {
        self.events.extend(other.events);
        self
    }

    /// The events, in order.
    pub fn events(&self) -> &[RowEvent] {
        &self.events
    }

    /// Consumes the feed into its events — the zero-copy ingestion path:
    /// appended rows move straight into the database instead of being
    /// cloned out of a borrowed feed
    /// ([`Ingestor::absorb_feed`](crate::Ingestor::absorb_feed)).
    pub fn into_events(self) -> Vec<RowEvent> {
        self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the feed carries no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total rows carried by the feed's events.
    pub fn row_count(&self) -> usize {
        self.events.iter().map(RowEvent::row_count).sum()
    }

    /// The distinct tables the feed touches, lower-cased and sorted — the
    /// set whose owning shards an absorb dirties (and what a cache-retention
    /// check needs to know).
    pub fn tables(&self) -> Vec<String> {
        let mut tables: Vec<String> = self
            .events
            .iter()
            .map(|e| e.table().to_lowercase())
            .collect();
        tables.sort_unstable();
        tables.dedup();
        tables
    }

    /// A one-line human-readable summary of the feed — what the serving
    /// layer stamps into its operational-event log
    /// ([`QueryService::events`](../soda_service/struct.QueryService.html#method.events)).
    ///
    /// ```
    /// use soda_ingest::ChangeFeed;
    /// use soda_relation::Value;
    ///
    /// let feed = ChangeFeed::new()
    ///     .append_row("trades", vec![Value::Int(1)])
    ///     .truncate("stale_dim");
    /// assert_eq!(feed.describe(), "2 events, 1 row over stale_dim, trades");
    /// ```
    pub fn describe(&self) -> String {
        let rows = self.row_count();
        format!(
            "{} event{}, {} row{} over {}",
            self.len(),
            if self.len() == 1 { "" } else { "s" },
            rows,
            if rows == 1 { "" } else { "s" },
            self.tables().join(", "),
        )
    }

    /// Serializes the feed to the compact binary form the durability journal
    /// stores on disk: an event count followed by each event in order.
    ///
    /// ```
    /// use soda_ingest::ChangeFeed;
    /// use soda_relation::Value;
    ///
    /// let feed = ChangeFeed::new()
    ///     .append_row("trades", vec![Value::Int(7), Value::from("CHF")])
    ///     .truncate("stale_dim");
    /// let bytes = feed.encode();
    /// assert_eq!(ChangeFeed::decode(&bytes).unwrap(), feed);
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode_into(&mut enc);
        enc.into_bytes()
    }

    /// Appends the feed's encoding to an existing [`Encoder`] — used when the
    /// feed is embedded in a larger frame (e.g. a journal record).
    pub fn encode_into(&self, enc: &mut Encoder) {
        enc.put_usize(self.events.len());
        for event in &self.events {
            event.encode(enc);
        }
    }

    /// Deserializes a feed previously written by [`ChangeFeed::encode`].
    pub fn decode(bytes: &[u8]) -> CodecResult<Self> {
        let mut dec = Decoder::new(bytes);
        let feed = Self::decode_from(&mut dec)?;
        if !dec.is_empty() {
            return Err(CodecError::BadLength);
        }
        Ok(feed)
    }

    /// Reads a feed out of a decoder positioned at an embedded encoding.
    pub fn decode_from(dec: &mut Decoder<'_>) -> CodecResult<Self> {
        let n = dec.get_usize()?;
        if n > dec.remaining() {
            return Err(CodecError::BadLength);
        }
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            events.push(RowEvent::decode(dec)?);
        }
        Ok(Self { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_relation::Value;

    #[test]
    fn builder_preserves_event_order() {
        let feed = ChangeFeed::new()
            .append_row("a", vec![Value::Int(1)])
            .replace("b", vec![vec![Value::Int(2)], vec![Value::Int(3)]])
            .truncate("a");
        assert_eq!(feed.len(), 3);
        assert_eq!(feed.row_count(), 3);
        assert!(matches!(feed.events()[2], RowEvent::Truncate { .. }));
        assert_eq!(feed.events()[1].row_count(), 2);
    }

    #[test]
    fn tables_are_case_folded_sorted_and_deduped() {
        let feed = ChangeFeed::new()
            .append_row("Trades", vec![])
            .append_row("ADDRESSES", vec![])
            .truncate("trades");
        assert_eq!(
            feed.tables(),
            vec!["addresses".to_string(), "trades".to_string()]
        );
    }

    #[test]
    fn encode_decode_round_trips_every_event_kind() {
        let feed = ChangeFeed::new()
            .append_row("trades", vec![Value::Int(1), Value::Float(2.5)])
            .replace("dim", vec![vec![Value::from("a")], vec![Value::Null]])
            .truncate("stale");
        let bytes = feed.encode();
        assert_eq!(ChangeFeed::decode(&bytes).unwrap(), feed);
        // An empty feed round-trips too.
        assert_eq!(
            ChangeFeed::decode(&ChangeFeed::new().encode()).unwrap(),
            ChangeFeed::new()
        );
    }

    #[test]
    fn decode_rejects_truncated_and_trailing_bytes() {
        let bytes = ChangeFeed::new()
            .append_row("t", vec![Value::Int(1)])
            .encode();
        assert!(ChangeFeed::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(ChangeFeed::decode(&padded).is_err());
    }

    #[test]
    fn merge_concatenates_in_order() {
        let a = ChangeFeed::new().append_row("t", vec![Value::Int(1)]);
        let b = ChangeFeed::new().truncate("t");
        let merged = a.merge(b);
        assert_eq!(merged.len(), 2);
        assert!(matches!(merged.events()[1], RowEvent::Truncate { .. }));
        assert!(ChangeFeed::new().is_empty());
    }
}
