//! CRC-32 (IEEE 802.3 polynomial, the `cksum`/zlib variant) over byte
//! slices.  Table-driven and allocation-free; the table is computed at
//! compile time so the crate stays dependency-free.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// The CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for the IEEE polynomial.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }
}
