//! The feed journal: an append-only log of [`ChangeFeed`]s with checkpoint
//! truncation, bound to one engine configuration by fingerprint.

use std::fmt;
use std::path::{Path, PathBuf};

use soda_ingest::ChangeFeed;
use soda_relation::codec::{CodecError, CodecResult, Decoder, Encoder};
use soda_relation::Row;

use crate::frame::{FrameFile, FrameScan};

/// Magic prefix of a feed-journal file (`2` is the format version, bumped
/// when the header grew a tenant-fingerprint field).  Version-`1` journals
/// — written before tenancy existed, with a 16-byte header — are still
/// recovered: the missing tenant field reads as `0` (the default tenant)
/// and the file is upgraded to the current layout by an atomic rewrite at
/// open time.
pub const JOURNAL_MAGIC: [u8; 8] = *b"SODAJNL2";

const KIND_FEED: u8 = 0x01;
const KIND_CHECKPOINT: u8 = 0x02;

/// When appends are forced to stable storage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append — an acknowledged ingest survives a crash.
    /// The default, and what the crash-recovery guarantee assumes.
    #[default]
    Always,
    /// Leave flushing to the OS.  Faster; a crash may lose the most recent
    /// appends (the checksummed frames still guarantee the journal never
    /// replays a half-written record).
    Never,
}

impl FsyncPolicy {
    pub(crate) fn should_sync(self) -> bool {
        matches!(self, FsyncPolicy::Always)
    }
}

/// A point-in-time fold of everything the journal had recorded: the full
/// content of every table feeds have ever touched, plus the snapshot
/// generation stamps at the moment the checkpoint was cut.
///
/// Replaying a checkpoint (apply the rows over the base warehouse, restore
/// the generation stamps, then absorb any feeds journaled after it) lands a
/// rebooted engine on the same answers — and the same cache fingerprint — as
/// the process that wrote it.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    /// Snapshot generation at the time of the checkpoint.
    pub generation: u64,
    /// Per-shard generation stamps at the time of the checkpoint.
    pub shard_generations: Vec<u64>,
    /// Full replacement content for every table any journaled feed ever
    /// touched: `(lower-cased table name, rows)`.
    pub tables: Vec<(String, Vec<Row>)>,
}

impl Checkpoint {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u8(KIND_CHECKPOINT);
        enc.put_u64(self.generation);
        enc.put_usize(self.shard_generations.len());
        for &g in &self.shard_generations {
            enc.put_u64(g);
        }
        enc.put_usize(self.tables.len());
        for (name, rows) in &self.tables {
            enc.put_str(name);
            enc.put_usize(rows.len());
            for row in rows {
                enc.put_row(row);
            }
        }
        enc.into_bytes()
    }

    fn decode_from(dec: &mut Decoder<'_>) -> CodecResult<Self> {
        let generation = dec.get_u64()?;
        let n = dec.get_usize()?;
        if n > dec.remaining() {
            return Err(CodecError::BadLength);
        }
        let mut shard_generations = Vec::with_capacity(n);
        for _ in 0..n {
            shard_generations.push(dec.get_u64()?);
        }
        let n = dec.get_usize()?;
        if n > dec.remaining() {
            return Err(CodecError::BadLength);
        }
        let mut tables = Vec::with_capacity(n);
        for _ in 0..n {
            let name = dec.get_str()?;
            let rows_n = dec.get_usize()?;
            if rows_n > dec.remaining() {
                return Err(CodecError::BadLength);
            }
            let mut rows = Vec::with_capacity(rows_n);
            for _ in 0..rows_n {
                rows.push(dec.get_row()?);
            }
            tables.push((name, rows));
        }
        Ok(Self {
            generation,
            shard_generations,
            tables,
        })
    }

    /// Total rows carried across all tables.
    pub fn row_count(&self) -> usize {
        self.tables.iter().map(|(_, rows)| rows.len()).sum()
    }
}

/// One record replayed out of the journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    /// A change feed appended by `ingest`.
    Feed(ChangeFeed),
    /// A checkpoint written by compaction (always the journal's first record
    /// when present — writing one truncates everything before it).
    Checkpoint(Checkpoint),
}

/// Everything recovery needs, read back in one pass at open time.
#[derive(Debug)]
pub struct Replay {
    /// The journal's records in append order.
    pub records: Vec<JournalRecord>,
    /// Bytes of torn/corrupt tail discarded during the scan.
    pub truncated_bytes: u64,
    /// True when no journal existed — this boot starts a fresh log.
    pub created: bool,
}

impl Replay {
    /// Splits the records into the latest checkpoint (if any) and the feeds
    /// journaled after it — the minimal work a recovery has to do.
    pub fn into_plan(self) -> (Option<Checkpoint>, Vec<ChangeFeed>) {
        let mut checkpoint = None;
        let mut feeds = Vec::new();
        for record in self.records {
            match record {
                JournalRecord::Checkpoint(c) => {
                    checkpoint = Some(c);
                    feeds.clear();
                }
                JournalRecord::Feed(f) => feeds.push(f),
            }
        }
        (checkpoint, feeds)
    }
}

/// Errors from journal operations.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A checksummed frame decoded to garbage — version skew or a logic bug,
    /// never ordinary corruption (that is caught by the CRC and truncated).
    Codec(CodecError),
    /// The journal on disk was written under a different engine
    /// configuration; replaying it would silently produce different answers.
    ConfigMismatch {
        /// Fingerprint stored in the journal header.
        journal: u64,
        /// Fingerprint of the engine attempting recovery.
        engine: u64,
    },
    /// The journal on disk belongs to a different tenant; replaying it
    /// would leak one tenant's ingests into another's warehouse.
    TenantMismatch {
        /// Tenant fingerprint stored in the journal header.
        journal: u64,
        /// Tenant fingerprint of the tenant attempting recovery.
        tenant: u64,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O error: {e}"),
            JournalError::Codec(e) => write!(f, "journal record failed to decode: {e}"),
            JournalError::ConfigMismatch { journal, engine } => write!(
                f,
                "journal was written under config fingerprint {journal:#018x}, \
                 but the engine recovering it has {engine:#018x}"
            ),
            JournalError::TenantMismatch { journal, tenant } => write!(
                f,
                "journal belongs to tenant fingerprint {journal:#018x}, \
                 but tenant {tenant:#018x} attempted to recover it"
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io(e) => Some(e),
            JournalError::Codec(e) => Some(e),
            JournalError::ConfigMismatch { .. } => None,
            JournalError::TenantMismatch { .. } => None,
        }
    }
}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

impl From<CodecError> for JournalError {
    fn from(e: CodecError) -> Self {
        JournalError::Codec(e)
    }
}

/// Result alias for journal operations.
pub type JournalResult<T> = std::result::Result<T, JournalError>;

/// The crash-safe feed journal.
///
/// One file, bound to one engine configuration: the header stores the
/// config fingerprint and [`FeedJournal::recover`] refuses to replay a
/// journal written under a different one.  [`append_feed`] logs a
/// [`ChangeFeed`] *before* the service absorbs it (write-ahead);
/// [`write_checkpoint`] atomically replaces the whole log with a single
/// checkpoint record, bounding replay time.
///
/// [`append_feed`]: FeedJournal::append_feed
/// [`write_checkpoint`]: FeedJournal::write_checkpoint
#[derive(Debug)]
pub struct FeedJournal {
    file: FrameFile,
}

impl FeedJournal {
    /// Opens (or creates) the journal at `path` and replays what it holds.
    ///
    /// A torn tail — the process died mid-append — is truncated in place and
    /// reported via [`Replay::truncated_bytes`]; everything before it
    /// replays normally.  An existing journal whose header fingerprint
    /// differs from `config_fingerprint` is a hard
    /// [`JournalError::ConfigMismatch`], and one whose header tenant
    /// fingerprint differs from `tenant_fingerprint` is a hard
    /// [`JournalError::TenantMismatch`]: silently ignoring either would
    /// discard acknowledged ingests (or replay another tenant's).
    pub fn recover(
        path: &Path,
        config_fingerprint: u64,
        tenant_fingerprint: u64,
        fsync: FsyncPolicy,
    ) -> JournalResult<(Self, Replay)> {
        let (file, scan) = FrameFile::open_or_create(
            path,
            JOURNAL_MAGIC,
            config_fingerprint,
            tenant_fingerprint,
            fsync,
        )?;
        if !scan.created && scan.fingerprint != config_fingerprint {
            return Err(JournalError::ConfigMismatch {
                journal: scan.fingerprint,
                engine: config_fingerprint,
            });
        }
        if !scan.created && scan.tenant != tenant_fingerprint {
            return Err(JournalError::TenantMismatch {
                journal: scan.tenant,
                tenant: tenant_fingerprint,
            });
        }
        let replay = decode_scan(scan)?;
        Ok((Self { file }, replay))
    }

    /// Appends one feed and (per the fsync policy) forces it to disk.
    /// Returns the bytes appended.
    pub fn append_feed(&mut self, feed: &ChangeFeed) -> JournalResult<u64> {
        let mut enc = Encoder::new();
        enc.put_u8(KIND_FEED);
        feed.encode_into(&mut enc);
        Ok(self.file.append(&enc.into_bytes())?)
    }

    /// Atomically replaces the journal's entire content with `checkpoint` —
    /// the checkpoint truncation step.  A crash during the rewrite leaves
    /// either the old journal or the new one, never a mix.  Returns the
    /// journal's new size in bytes.
    pub fn write_checkpoint(&mut self, checkpoint: &Checkpoint) -> JournalResult<u64> {
        let payload = checkpoint.encode();
        self.file.rewrite(&[&payload])?;
        Ok(self.file.len_bytes())
    }

    /// Current journal size in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.file.len_bytes()
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        self.file.path()
    }
}

/// The conventional journal file name under a durability directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join("feed.journal")
}

/// The durability sub-directory owned by one named tenant:
/// `<dir>/tenants/<sanitized name>/`.  The default tenant keeps the
/// top-level directory (and thus the pre-tenancy `feed.journal` location),
/// so single-tenant deployments recover files written before tenancy
/// existed.  Tenant names are sanitized to a conservative filesystem-safe
/// alphabet; distinct names that sanitize identically are disambiguated by
/// the tenant fingerprint suffix.
pub fn tenant_journal_dir(dir: &Path, tenant: &str, tenant_fingerprint: u64) -> PathBuf {
    if tenant_fingerprint == 0 {
        return dir.to_path_buf();
    }
    let sanitized: String = tenant
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join("tenants")
        .join(format!("{sanitized}-{tenant_fingerprint:016x}"))
}

fn decode_scan(scan: FrameScan) -> JournalResult<Replay> {
    let mut records = Vec::with_capacity(scan.frames.len());
    for frame in &scan.frames {
        records.push(decode_record(frame)?);
    }
    Ok(Replay {
        records,
        truncated_bytes: scan.truncated_bytes,
        created: scan.created,
    })
}

fn decode_record(payload: &[u8]) -> JournalResult<JournalRecord> {
    let mut dec = Decoder::new(payload);
    let record = match dec.get_u8()? {
        KIND_FEED => JournalRecord::Feed(ChangeFeed::decode_from(&mut dec)?),
        KIND_CHECKPOINT => JournalRecord::Checkpoint(Checkpoint::decode_from(&mut dec)?),
        tag => {
            return Err(JournalError::Codec(CodecError::BadTag {
                what: "JournalRecord",
                tag,
            }))
        }
    };
    if !dec.is_empty() {
        return Err(JournalError::Codec(CodecError::BadLength));
    }
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;
    use soda_relation::Value;

    fn feed(n: i64) -> ChangeFeed {
        ChangeFeed::new().append_row("trades", vec![Value::Int(n), Value::from("CHF")])
    }

    #[test]
    fn fresh_journal_replays_empty() {
        let dir = TempDir::new("jnl-fresh");
        let path = journal_path(dir.path());
        let (_j, replay) = FeedJournal::recover(&path, 42, 0, FsyncPolicy::Always).unwrap();
        assert!(replay.created);
        assert!(replay.records.is_empty());
        let (checkpoint, feeds) = replay.into_plan();
        assert!(checkpoint.is_none());
        assert!(feeds.is_empty());
    }

    #[test]
    fn appended_feeds_replay_in_order() {
        let dir = TempDir::new("jnl-replay");
        let path = journal_path(dir.path());
        {
            let (mut j, _) = FeedJournal::recover(&path, 42, 0, FsyncPolicy::Always).unwrap();
            j.append_feed(&feed(1)).unwrap();
            j.append_feed(&feed(2)).unwrap();
        }
        let (_j, replay) = FeedJournal::recover(&path, 42, 0, FsyncPolicy::Always).unwrap();
        assert!(!replay.created);
        assert_eq!(replay.truncated_bytes, 0);
        assert_eq!(
            replay.records,
            vec![JournalRecord::Feed(feed(1)), JournalRecord::Feed(feed(2)),]
        );
    }

    #[test]
    fn config_mismatch_is_a_hard_error() {
        let dir = TempDir::new("jnl-config");
        let path = journal_path(dir.path());
        {
            let (mut j, _) = FeedJournal::recover(&path, 1, 0, FsyncPolicy::Always).unwrap();
            j.append_feed(&feed(1)).unwrap();
        }
        match FeedJournal::recover(&path, 2, 0, FsyncPolicy::Always) {
            Err(JournalError::ConfigMismatch { journal, engine }) => {
                assert_eq!((journal, engine), (1, 2));
            }
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
    }

    /// A journal written before tenancy existed (version-1 magic, 16-byte
    /// header with no tenant field) must recover losslessly as the default
    /// tenant — the PR 6 durability guarantee survives the format bump.
    #[test]
    fn pre_tenancy_journal_recovers_and_upgrades() {
        let dir = TempDir::new("jnl-upgrade");
        let path = journal_path(dir.path());
        // Write a current journal for the default tenant, then rewrite it
        // into the exact pre-tenancy layout: version-1 magic, fingerprint,
        // frames — no tenant field (bytes 16..24 removed).
        {
            let (mut j, _) = FeedJournal::recover(&path, 42, 0, FsyncPolicy::Always).unwrap();
            j.append_feed(&feed(1)).unwrap();
            j.append_feed(&feed(2)).unwrap();
        }
        let current = std::fs::read(&path).unwrap();
        let mut legacy = Vec::with_capacity(current.len() - 8);
        legacy.extend_from_slice(b"SODAJNL1");
        legacy.extend_from_slice(&current[8..16]);
        legacy.extend_from_slice(&current[24..]);
        std::fs::write(&path, &legacy).unwrap();

        // A named tenant must NOT claim it — and must leave it untouched.
        match FeedJournal::recover(&path, 42, 9, FsyncPolicy::Always) {
            Err(JournalError::TenantMismatch { journal, tenant }) => {
                assert_eq!((journal, tenant), (0, 9));
            }
            other => panic!("expected TenantMismatch, got {other:?}"),
        }
        assert_eq!(
            std::fs::read(&path).unwrap(),
            legacy,
            "legacy journal modified"
        );
        // A foreign engine config must not claim it either.
        assert!(matches!(
            FeedJournal::recover(&path, 77, 0, FsyncPolicy::Always),
            Err(JournalError::ConfigMismatch { .. })
        ));
        assert_eq!(
            std::fs::read(&path).unwrap(),
            legacy,
            "legacy journal modified"
        );

        // The default tenant replays every acknowledged ingest and the file
        // comes out in the current format.
        let (mut j, replay) = FeedJournal::recover(&path, 42, 0, FsyncPolicy::Always).unwrap();
        assert_eq!(
            replay.records,
            vec![JournalRecord::Feed(feed(1)), JournalRecord::Feed(feed(2))]
        );
        assert_eq!(&std::fs::read(&path).unwrap()[..8], b"SODAJNL2");
        j.append_feed(&feed(3)).unwrap();
        drop(j);
        let (_j, replay) = FeedJournal::recover(&path, 42, 0, FsyncPolicy::Always).unwrap();
        assert_eq!(replay.records.len(), 3);
    }

    #[test]
    fn tenant_mismatch_is_a_hard_error() {
        let dir = TempDir::new("jnl-tenant");
        let path = journal_path(dir.path());
        {
            let (mut j, _) = FeedJournal::recover(&path, 42, 7, FsyncPolicy::Always).unwrap();
            j.append_feed(&feed(1)).unwrap();
        }
        // The right tenant replays normally …
        let (_j, replay) = FeedJournal::recover(&path, 42, 7, FsyncPolicy::Always).unwrap();
        assert_eq!(replay.records.len(), 1);
        // … a different tenant is rejected outright.
        match FeedJournal::recover(&path, 42, 8, FsyncPolicy::Always) {
            Err(JournalError::TenantMismatch { journal, tenant }) => {
                assert_eq!((journal, tenant), (7, 8));
            }
            other => panic!("expected TenantMismatch, got {other:?}"),
        }
    }

    #[test]
    fn tenant_journal_dirs_are_disjoint_and_default_stays_top_level() {
        let base = Path::new("/var/soda");
        assert_eq!(tenant_journal_dir(base, "default", 0), base);
        let acme = tenant_journal_dir(base, "acme", 0xABCD);
        let globex = tenant_journal_dir(base, "globex", 0x1234);
        assert_ne!(acme, globex);
        assert!(acme.starts_with(base.join("tenants")));
        // Hostile names sanitize to a filesystem-safe directory and distinct
        // fingerprints keep sanitization collisions apart.
        let dotty = tenant_journal_dir(base, "../etc", 0x9999);
        assert!(dotty.starts_with(base.join("tenants")));
        assert!(!dotty.to_string_lossy().contains(".."));
        assert_ne!(
            tenant_journal_dir(base, "a/b", 1),
            tenant_journal_dir(base, "a_b", 2)
        );
    }

    #[test]
    fn checkpoint_truncates_and_bounds_replay() {
        let dir = TempDir::new("jnl-ckpt");
        let path = journal_path(dir.path());
        let (mut j, _) = FeedJournal::recover(&path, 42, 0, FsyncPolicy::Always).unwrap();
        j.append_feed(&feed(1)).unwrap();
        j.append_feed(&feed(2)).unwrap();
        let before = j.len_bytes();
        let checkpoint = Checkpoint {
            generation: 5,
            shard_generations: vec![5, 3],
            tables: vec![(
                "trades".into(),
                vec![vec![Value::Int(1)], vec![Value::Int(2)]],
            )],
        };
        j.write_checkpoint(&checkpoint).unwrap();
        // Checkpointing dropped the two feed records.
        assert!(j.len_bytes() < before + 64);
        j.append_feed(&feed(3)).unwrap();
        drop(j);

        let (_j, replay) = FeedJournal::recover(&path, 42, 0, FsyncPolicy::Always).unwrap();
        let (recovered, feeds) = replay.into_plan();
        assert_eq!(recovered.unwrap(), checkpoint);
        assert_eq!(feeds, vec![feed(3)]);
    }

    #[test]
    fn torn_tail_loses_only_the_torn_record() {
        let dir = TempDir::new("jnl-torn");
        let path = journal_path(dir.path());
        {
            let (mut j, _) = FeedJournal::recover(&path, 42, 0, FsyncPolicy::Always).unwrap();
            j.append_feed(&feed(1)).unwrap();
            j.append_feed(&feed(2)).unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();

        let (mut j, replay) = FeedJournal::recover(&path, 42, 0, FsyncPolicy::Always).unwrap();
        assert_eq!(replay.records, vec![JournalRecord::Feed(feed(1))]);
        assert!(replay.truncated_bytes > 0);
        // The journal stays usable after the truncation.
        j.append_feed(&feed(3)).unwrap();
        drop(j);
        let (_j, replay) = FeedJournal::recover(&path, 42, 0, FsyncPolicy::Always).unwrap();
        assert_eq!(
            replay.records,
            vec![JournalRecord::Feed(feed(1)), JournalRecord::Feed(feed(3))]
        );
    }

    #[test]
    fn into_plan_keeps_only_records_after_the_last_checkpoint() {
        let a = Checkpoint {
            generation: 1,
            ..Checkpoint::default()
        };
        let b = Checkpoint {
            generation: 2,
            ..Checkpoint::default()
        };
        let replay = Replay {
            records: vec![
                JournalRecord::Feed(feed(1)),
                JournalRecord::Checkpoint(a),
                JournalRecord::Feed(feed(2)),
                JournalRecord::Checkpoint(b.clone()),
                JournalRecord::Feed(feed(3)),
            ],
            truncated_bytes: 0,
            created: false,
        };
        let (checkpoint, feeds) = replay.into_plan();
        assert_eq!(checkpoint.unwrap(), b);
        assert_eq!(feeds, vec![feed(3)]);
    }
}
