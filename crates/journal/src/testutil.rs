//! Test-only helpers: a self-cleaning temporary directory (the workspace
//! builds offline, so there is no `tempfile` crate to lean on).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `soda-journal-<label>-<pid>-<n>` under the system temp dir.
    pub fn new(label: &str) -> Self {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("soda-journal-{label}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self { path }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}
