//! # soda-journal
//!
//! Crash-safe durability for the SODA serving layer.  The engine built by
//! `soda-core` is immutable-in-memory; the serving layer (`soda-service`)
//! absorbs streaming [`ChangeFeed`](soda_ingest::ChangeFeed)s into it at
//! runtime — and before this crate, a restart silently forgot every one of
//! them.  This crate is the write-ahead half of the fix:
//!
//! * [`FeedJournal`] — an append-only log of change feeds.  Every record is
//!   a length-prefixed, CRC-32-checksummed frame; the file header binds the
//!   log to one engine-configuration fingerprint.  On open, a torn tail
//!   (crash mid-append) is detected and truncated in place, so an
//!   acknowledged ingest either replays fully or was never acknowledged.
//! * [`Checkpoint`] — a fold of everything the journal recorded (full
//!   content of every touched table + the snapshot generation stamps).
//!   [`FeedJournal::write_checkpoint`] atomically replaces the log with one
//!   checkpoint record, so replay time is bounded by data size, not by
//!   ingest history.
//! * [`FsyncPolicy`] — whether appends fsync ([`FsyncPolicy::Always`], the
//!   default and the crash-safety guarantee) or leave flushing to the OS.
//! * [`frame`] — the raw framed-file primitives ([`frame::FrameFile`],
//!   [`frame::write_frame_file`], [`frame::read_frame_file`]), reused by
//!   `soda-service` for its persistent page-cache file.
//!
//! Everything is `std`-only and byte-exact: feeds round-trip through the
//! compact binary codec in [`soda_relation::codec`], floats included, so a
//! recovered engine answers queries byte-identically to one that never
//! crashed.
//!
//! ```
//! use soda_ingest::ChangeFeed;
//! use soda_journal::{journal_path, FeedJournal, FsyncPolicy};
//! use soda_relation::Value;
//!
//! let dir = std::env::temp_dir().join(format!("soda-jnl-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = journal_path(&dir);
//!
//! // First boot: journal is created empty; ingests are logged.  The `0` is
//! // the tenant fingerprint — `0` for the default tenant.
//! let (mut journal, replay) = FeedJournal::recover(&path, 42, 0, FsyncPolicy::Always).unwrap();
//! assert!(replay.created);
//! journal.append_feed(&ChangeFeed::new().append_row("trades", vec![Value::Int(7)])).unwrap();
//! drop(journal);
//!
//! // Next boot: the feed replays.
//! let (_journal, replay) = FeedJournal::recover(&path, 42, 0, FsyncPolicy::Always).unwrap();
//! let (checkpoint, feeds) = replay.into_plan();
//! assert!(checkpoint.is_none());
//! assert_eq!(feeds.len(), 1);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

pub mod crc32;
pub mod frame;
mod journal;
#[cfg(test)]
mod testutil;

pub use crc32::crc32;
pub use journal::{
    journal_path, tenant_journal_dir, Checkpoint, FeedJournal, FsyncPolicy, JournalError,
    JournalRecord, JournalResult, Replay, JOURNAL_MAGIC,
};
