//! Checksummed length-prefixed frame files — the on-disk container shared by
//! the feed journal and the service's persistent page cache.
//!
//! Layout:
//!
//! ```text
//! ┌─────────────────┬──────────────────────┬───────────────────┬───────────┬─────┐
//! │ magic (8 bytes) │ fingerprint (u64 LE) │ tenant (u64 LE)   │ frame ... │ ... │
//! └─────────────────┴──────────────────────┴───────────────────┴───────────┴─────┘
//! frame := payload_len (u32 LE) · crc32(payload) (u32 LE) · payload
//! ```
//!
//! The magic identifies the file kind (journal vs. cache) and, through its
//! final byte (an ASCII digit), the format version; the fingerprint binds
//! the file to one engine configuration; the tenant fingerprint binds it to
//! one hosted tenant (`0` for the default tenant and for service-wide files
//! such as the page cache).  Every frame is individually checksummed, so a
//! reader can detect both a torn tail (the process died mid-append) and bit
//! rot, and recover the longest valid prefix.
//!
//! ## Format versions
//!
//! Version `2` (current) is the layout above.  Version `1` — everything
//! written before tenancy existed — has a **16-byte** header with no tenant
//! field.  A scan accepts both: a version-`1` file reads with its tenant
//! fingerprint taken as `0` (those files can only belong to the default
//! tenant), and [`FrameFile::open_or_create`] upgrades it to the current
//! layout via an atomic rewrite **only after** the caller-supplied
//! fingerprints match the header — a file that is about to be rejected is
//! never modified, and a misparse can never masquerade as a torn tail.

use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc32::crc32;
use crate::FsyncPolicy;

/// Bytes before the first frame: magic + fingerprint + tenant fingerprint.
pub const FILE_HEADER_LEN: u64 = 24;

/// Header length of a legacy (version-`1`, pre-tenancy) file: magic +
/// fingerprint only.
const LEGACY_FILE_HEADER_LEN: u64 = 16;

/// The version byte of the legacy pre-tenancy format.
const LEGACY_VERSION: u8 = b'1';

/// Bytes before each frame's payload: length + checksum.
pub const FRAME_HEADER_LEN: u64 = 8;

/// A frame payload may not exceed this (1 GiB) — a sanity bound so a corrupt
/// length prefix that happens to pass the short-read check cannot trigger an
/// absurd allocation.
const MAX_FRAME_LEN: u32 = 1 << 30;

/// What a scan of an existing frame file found.
#[derive(Debug)]
pub struct FrameScan {
    /// The fingerprint stored in the file header.
    pub fingerprint: u64,
    /// The tenant fingerprint stored in the file header (`0` for the
    /// default tenant and for service-wide files).
    pub tenant: u64,
    /// Every frame payload that passed its checksum, in file order.
    pub frames: Vec<Vec<u8>>,
    /// Bytes of torn/corrupt tail discarded past the last valid frame.
    pub truncated_bytes: u64,
    /// True when the file did not exist (or was empty) and a fresh header
    /// was written.
    pub created: bool,
    /// True when the file was in the legacy pre-tenancy format (16-byte
    /// header, no tenant field — `tenant` reads as `0`).
    pub legacy: bool,
}

/// An open frame file positioned for appending.
#[derive(Debug)]
pub struct FrameFile {
    file: File,
    path: PathBuf,
    magic: [u8; 8],
    fingerprint: u64,
    tenant: u64,
    fsync: FsyncPolicy,
    len: u64,
}

impl FrameFile {
    /// Opens `path` for appending, creating it (with a fresh header) when
    /// missing or empty.  An existing file must start with `magic` (or its
    /// legacy version-`1` spelling); its frames are scanned and the
    /// returned [`FrameScan`] carries the valid payloads.
    ///
    /// The header fingerprint (and tenant fingerprint) of an existing file
    /// is returned, not validated — the caller decides whether a mismatch
    /// is fatal (journal) or means "ignore the file" (cache).  The file is
    /// only ever **modified** when its header matches the caller-supplied
    /// `fingerprint` and `tenant` exactly: then a torn or corrupt tail is
    /// truncated in place, and a legacy-format file is upgraded to the
    /// current layout by an atomic rewrite.  A file the caller is about to
    /// reject is left byte-for-byte untouched.
    pub fn open_or_create(
        path: &Path,
        magic: [u8; 8],
        fingerprint: u64,
        tenant: u64,
        fsync: FsyncPolicy,
    ) -> std::io::Result<(Self, FrameScan)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let existing_len = file.metadata()?.len();
        if existing_len == 0 {
            let mut header = Vec::with_capacity(FILE_HEADER_LEN as usize);
            header.extend_from_slice(&magic);
            header.extend_from_slice(&fingerprint.to_le_bytes());
            header.extend_from_slice(&tenant.to_le_bytes());
            file.write_all(&header)?;
            if fsync.should_sync() {
                file.sync_all()?;
            }
            let frame_file = Self {
                file,
                path: path.to_path_buf(),
                magic,
                fingerprint,
                tenant,
                fsync,
                len: FILE_HEADER_LEN,
            };
            return Ok((
                frame_file,
                FrameScan {
                    fingerprint,
                    tenant,
                    frames: Vec::new(),
                    truncated_bytes: 0,
                    created: true,
                    legacy: false,
                },
            ));
        }

        let mut bytes = Vec::with_capacity(existing_len as usize);
        file.read_to_end(&mut bytes)?;
        let scan = scan_frames(&bytes, magic)?;
        // Modify the file only once the header semantically matches what
        // the caller expects — a file about to be rejected (foreign config,
        // foreign tenant) is returned for inspection but never touched.
        let owned = scan.fingerprint == fingerprint && scan.tenant == tenant;
        if scan.legacy && owned {
            // Upgrade a pre-tenancy file to the current layout: current
            // header + every valid frame, via write-temp → fsync → rename.
            // A crash leaves either the complete old file or the complete
            // new one; the torn tail (if any) is dropped by the rewrite.
            let refs: Vec<&[u8]> = scan.frames.iter().map(Vec::as_slice).collect();
            write_frame_file(path, magic, scan.fingerprint, scan.tenant, &refs)?;
            let mut file = OpenOptions::new().read(true).write(true).open(path)?;
            let len = file.seek(SeekFrom::End(0))?;
            let frame_file = Self {
                file,
                path: path.to_path_buf(),
                magic,
                fingerprint: scan.fingerprint,
                tenant: scan.tenant,
                fsync,
                len,
            };
            return Ok((frame_file, scan));
        }
        let valid_len = existing_len - scan.truncated_bytes;
        if scan.truncated_bytes > 0 && owned {
            file.set_len(valid_len)?;
            if fsync.should_sync() {
                file.sync_all()?;
            }
        }
        file.seek(SeekFrom::Start(valid_len))?;
        let frame_file = Self {
            file,
            path: path.to_path_buf(),
            magic,
            fingerprint: scan.fingerprint,
            tenant: scan.tenant,
            fsync,
            len: valid_len,
        };
        Ok((frame_file, scan))
    }

    /// Appends one frame and (per the fsync policy) forces it to disk.
    /// Returns the bytes written.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<u64> {
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN as usize + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        if self.fsync.should_sync() {
            self.file.sync_all()?;
        }
        self.len += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Atomically replaces the whole file with a fresh header followed by
    /// `payloads`, via write-temp → fsync → rename, then reopens the handle
    /// on the new file.  This is how a checkpoint truncates the journal: a
    /// crash at any point leaves either the complete old file or the
    /// complete new one.
    pub fn rewrite(&mut self, payloads: &[&[u8]]) -> std::io::Result<()> {
        write_frame_file(
            &self.path,
            self.magic,
            self.fingerprint,
            self.tenant,
            payloads,
        )?;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.len = file.seek(SeekFrom::End(0))?;
        self.file = file;
        Ok(())
    }

    /// Current file length in bytes (header included).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Writes a complete frame file atomically: header + `payloads` go to a
/// temporary sibling, are fsynced, and are renamed over `path`.
pub fn write_frame_file(
    path: &Path,
    magic: [u8; 8],
    fingerprint: u64,
    tenant: u64,
    payloads: &[&[u8]],
) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = File::create(&tmp)?;
        let mut buf = Vec::new();
        buf.extend_from_slice(&magic);
        buf.extend_from_slice(&fingerprint.to_le_bytes());
        buf.extend_from_slice(&tenant.to_le_bytes());
        for payload in payloads {
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(payload).to_le_bytes());
            buf.extend_from_slice(payload);
        }
        file.write_all(&buf)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads a frame file leniently: `Ok(None)` when the file is missing, has
/// the wrong magic, or is shorter than a header — any state where the only
/// sensible reaction is "there is nothing here to load".  Torn or corrupt
/// tails are skipped (the valid prefix is returned) and the file is left
/// untouched.  Used for the page cache, where a bad file must never block
/// recovery.
pub fn read_frame_file(path: &Path, magic: [u8; 8]) -> std::io::Result<Option<FrameScan>> {
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    match scan_frames(&bytes, magic) {
        Ok(scan) => Ok(Some(scan)),
        Err(_) => Ok(None),
    }
}

/// Scans `bytes` as a frame file: validates the magic (current or legacy
/// version), then walks frames until the first short, oversized or
/// checksum-failing one.  Everything from that point on counts as
/// `truncated_bytes`.
///
/// Distinguishing the two versions **before** reading any frame is what
/// keeps a pre-tenancy file safe: its 16-byte header must not be parsed as
/// a 24-byte one, or the first frame's length/CRC words would be read as
/// the tenant field and frame scanning would start mid-frame.
fn scan_frames(bytes: &[u8], magic: [u8; 8]) -> std::io::Result<FrameScan> {
    let bad = || {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "not a soda frame file (bad magic or short header)",
        )
    };
    if bytes.len() < 8 {
        return Err(bad());
    }
    let legacy = if bytes[..8] == magic {
        false
    } else if bytes[..7] == magic[..7] && bytes[7] == LEGACY_VERSION {
        true
    } else {
        return Err(bad());
    };
    let header_len = if legacy {
        LEGACY_FILE_HEADER_LEN
    } else {
        FILE_HEADER_LEN
    } as usize;
    if bytes.len() < header_len {
        return Err(bad());
    }
    let fingerprint = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let tenant = if legacy {
        // Pre-tenancy files have no tenant field; they can only have been
        // written by (and for) the default tenant, whose fingerprint is 0.
        0
    } else {
        u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"))
    };
    let mut frames = Vec::new();
    let mut pos = header_len;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            break;
        }
        if rest.len() < FRAME_HEADER_LEN as usize {
            break; // torn frame header
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        if len > MAX_FRAME_LEN {
            break; // corrupt length
        }
        let end = FRAME_HEADER_LEN as usize + len as usize;
        if rest.len() < end {
            break; // torn payload
        }
        let payload = &rest[FRAME_HEADER_LEN as usize..end];
        if crc32(payload) != crc {
            break; // bit rot — stop at the last trustworthy frame
        }
        frames.push(payload.to_vec());
        pos += end;
    }
    Ok(FrameScan {
        fingerprint,
        tenant,
        frames,
        truncated_bytes: (bytes.len() - pos) as u64,
        created: false,
        legacy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    const MAGIC: [u8; 8] = *b"SODATST2";
    const LEGACY_MAGIC: [u8; 8] = *b"SODATST1";

    /// A version-1 (pre-tenancy) file: 16-byte header, no tenant field.
    fn write_legacy_file(path: &Path, fingerprint: u64, payloads: &[&[u8]]) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&LEGACY_MAGIC);
        bytes.extend_from_slice(&fingerprint.to_le_bytes());
        for payload in payloads {
            bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&crc32(payload).to_le_bytes());
            bytes.extend_from_slice(payload);
        }
        fs::write(path, bytes).unwrap();
    }

    #[test]
    fn fresh_file_appends_and_rescans() {
        let dir = TempDir::new("frame-fresh");
        let path = dir.path().join("frames.bin");
        let (mut file, scan) =
            FrameFile::open_or_create(&path, MAGIC, 7, 0, FsyncPolicy::Always).unwrap();
        assert!(scan.created);
        file.append(b"one").unwrap();
        file.append(b"two").unwrap();
        assert_eq!(
            file.len_bytes(),
            FILE_HEADER_LEN + 2 * (FRAME_HEADER_LEN + 3)
        );
        drop(file);

        let (_file, scan) =
            FrameFile::open_or_create(&path, MAGIC, 7, 0, FsyncPolicy::Always).unwrap();
        assert!(!scan.created);
        assert_eq!(scan.fingerprint, 7);
        assert_eq!(scan.frames, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(scan.truncated_bytes, 0);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let dir = TempDir::new("frame-torn");
        let path = dir.path().join("frames.bin");
        let (mut file, _) =
            FrameFile::open_or_create(&path, MAGIC, 1, 0, FsyncPolicy::Always).unwrap();
        file.append(b"kept").unwrap();
        file.append(b"doomed-by-the-tear").unwrap();
        drop(file);

        // Tear mid-way through the second frame's payload.
        let full = fs::read(&path).unwrap();
        let keep = FILE_HEADER_LEN + FRAME_HEADER_LEN + 4 + FRAME_HEADER_LEN + 3;
        fs::write(&path, &full[..keep as usize]).unwrap();

        let (mut file, scan) =
            FrameFile::open_or_create(&path, MAGIC, 1, 0, FsyncPolicy::Always).unwrap();
        assert_eq!(scan.frames, vec![b"kept".to_vec()]);
        assert_eq!(scan.truncated_bytes, FRAME_HEADER_LEN + 3);
        // The tail is gone from disk, so a new append lands cleanly.
        file.append(b"after").unwrap();
        drop(file);
        let (_file, scan) =
            FrameFile::open_or_create(&path, MAGIC, 1, 0, FsyncPolicy::Always).unwrap();
        assert_eq!(scan.frames, vec![b"kept".to_vec(), b"after".to_vec()]);
        assert_eq!(scan.truncated_bytes, 0);
    }

    #[test]
    fn corrupt_payload_fails_crc_and_is_dropped() {
        let dir = TempDir::new("frame-crc");
        let path = dir.path().join("frames.bin");
        let (mut file, _) =
            FrameFile::open_or_create(&path, MAGIC, 1, 0, FsyncPolicy::Always).unwrap();
        file.append(b"good").unwrap();
        file.append(b"flipped").unwrap();
        drop(file);

        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();

        let (_file, scan) =
            FrameFile::open_or_create(&path, MAGIC, 1, 0, FsyncPolicy::Always).unwrap();
        assert_eq!(scan.frames, vec![b"good".to_vec()]);
        assert!(scan.truncated_bytes > 0);
    }

    #[test]
    fn wrong_magic_is_an_error_for_open_and_none_for_lenient_read() {
        let dir = TempDir::new("frame-magic");
        let path = dir.path().join("frames.bin");
        fs::write(&path, b"NOTSODA!AAAAAAAA").unwrap();
        assert!(FrameFile::open_or_create(&path, MAGIC, 1, 0, FsyncPolicy::Always).is_err());
        assert!(read_frame_file(&path, MAGIC).unwrap().is_none());
        assert!(read_frame_file(&dir.path().join("missing"), MAGIC)
            .unwrap()
            .is_none());
    }

    #[test]
    fn rewrite_replaces_contents_atomically() {
        let dir = TempDir::new("frame-rewrite");
        let path = dir.path().join("frames.bin");
        let (mut file, _) =
            FrameFile::open_or_create(&path, MAGIC, 9, 0, FsyncPolicy::Never).unwrap();
        file.append(b"a").unwrap();
        file.append(b"b").unwrap();
        file.rewrite(&[b"checkpoint"]).unwrap();
        file.append(b"c").unwrap();
        drop(file);
        let scan = read_frame_file(&path, MAGIC).unwrap().unwrap();
        assert_eq!(scan.fingerprint, 9);
        assert_eq!(scan.frames, vec![b"checkpoint".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn legacy_file_is_recovered_and_upgraded_in_place() {
        let dir = TempDir::new("frame-legacy");
        let path = dir.path().join("frames.bin");
        write_legacy_file(&path, 7, &[b"old-one", b"old-two"]);

        let (mut file, scan) =
            FrameFile::open_or_create(&path, MAGIC, 7, 0, FsyncPolicy::Always).unwrap();
        assert!(scan.legacy);
        assert_eq!(scan.fingerprint, 7);
        assert_eq!(scan.tenant, 0, "missing tenant field reads as 0");
        assert_eq!(scan.frames, vec![b"old-one".to_vec(), b"old-two".to_vec()]);
        assert_eq!(scan.truncated_bytes, 0);

        // The file was upgraded to the current layout and stays appendable.
        file.append(b"new").unwrap();
        drop(file);
        let bytes = fs::read(&path).unwrap();
        assert_eq!(&bytes[..8], &MAGIC);
        let (_file, scan) =
            FrameFile::open_or_create(&path, MAGIC, 7, 0, FsyncPolicy::Always).unwrap();
        assert!(!scan.legacy);
        assert_eq!(
            scan.frames,
            vec![b"old-one".to_vec(), b"old-two".to_vec(), b"new".to_vec()]
        );
    }

    #[test]
    fn legacy_upgrade_drops_only_the_torn_tail() {
        let dir = TempDir::new("frame-legacy-torn");
        let path = dir.path().join("frames.bin");
        write_legacy_file(&path, 7, &[b"kept"]);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2]); // torn frame header + start
        fs::write(&path, &bytes).unwrap();

        let (_file, scan) =
            FrameFile::open_or_create(&path, MAGIC, 7, 0, FsyncPolicy::Always).unwrap();
        assert!(scan.legacy);
        assert_eq!(scan.frames, vec![b"kept".to_vec()]);
        assert_eq!(scan.truncated_bytes, 6);
        let (_file, scan) =
            FrameFile::open_or_create(&path, MAGIC, 7, 0, FsyncPolicy::Always).unwrap();
        assert!(!scan.legacy);
        assert_eq!(scan.frames, vec![b"kept".to_vec()]);
        assert_eq!(scan.truncated_bytes, 0);
    }

    #[test]
    fn mismatched_headers_leave_the_file_untouched() {
        // A legacy file whose fingerprint does not match the caller's is
        // returned for inspection but neither upgraded nor truncated …
        let dir = TempDir::new("frame-foreign");
        let path = dir.path().join("frames.bin");
        write_legacy_file(&path, 7, &[b"kept"]);
        let before = fs::read(&path).unwrap();
        let (file, scan) =
            FrameFile::open_or_create(&path, MAGIC, 999, 0, FsyncPolicy::Always).unwrap();
        assert!(scan.legacy);
        assert_eq!(scan.fingerprint, 7);
        drop(file);
        assert_eq!(fs::read(&path).unwrap(), before, "foreign file modified");

        // … and so is a current-format file opened under the wrong tenant,
        // torn tail included.
        let path = dir.path().join("tenant.bin");
        let (mut file, _) =
            FrameFile::open_or_create(&path, MAGIC, 1, 5, FsyncPolicy::Always).unwrap();
        file.append(b"payload").unwrap();
        drop(file);
        let mut bytes = fs::read(&path).unwrap();
        bytes.push(0xFF); // torn tail
        fs::write(&path, &bytes).unwrap();
        let (file, scan) =
            FrameFile::open_or_create(&path, MAGIC, 1, 6, FsyncPolicy::Always).unwrap();
        assert_eq!(scan.tenant, 5);
        assert_eq!(scan.truncated_bytes, 1);
        drop(file);
        assert_eq!(fs::read(&path).unwrap(), bytes, "foreign file modified");
    }
}
