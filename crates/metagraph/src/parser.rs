//! Parser for the textual pattern syntax used throughout the paper, e.g.
//!
//! ```text
//! ( x tablename t:y ) &
//! ( x type physical_table )
//! ```
//!
//! ## Term classification rules
//!
//! The paper distinguishes variables typographically (italics), which a plain
//! text syntax cannot do, so the parser applies the following documented rules
//! to each token:
//!
//! * `?name` is always a node variable; `t:?name` is always a text variable.
//! * `t:"literal"` (or `t:'literal'`) is a text literal.
//! * `t:tok` where `tok` looks like a short variable (see below) is a text
//!   variable, matching the paper's `t:y`; otherwise it is a text literal.
//! * A bare token that looks like a short variable — one lowercase letter
//!   optionally followed by a single digit (`x`, `y`, `z`, `p`, `c1`, `c2`) —
//!   is a node variable.  Everything else is a static URI.
//! * A two-term group `( term matches-<name> )` is a reference to the named
//!   pattern (the paper's `matches-column`).

use std::fmt;

use crate::pattern::{Pattern, PatternItem, Term, TriplePattern};

/// Error produced while parsing a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset in the input where the problem was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pattern parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err<T>(message: impl Into<String>, offset: usize) -> Result<T, ParseError> {
    Err(ParseError {
        message: message.into(),
        offset,
    })
}

/// Whether a bare token should be treated as a variable.
fn looks_like_var(tok: &str) -> bool {
    let bytes = tok.as_bytes();
    match bytes.len() {
        1 => bytes[0].is_ascii_lowercase(),
        2 => bytes[0].is_ascii_lowercase() && bytes[1].is_ascii_digit(),
        _ => false,
    }
}

fn classify_node_term(tok: &str) -> Term {
    if let Some(stripped) = tok.strip_prefix('?') {
        Term::Var(stripped.to_string())
    } else if looks_like_var(tok) {
        Term::Var(tok.to_string())
    } else {
        Term::Uri(tok.to_string())
    }
}

fn classify_object_term(tok: &str) -> Term {
    if let Some(rest) = tok.strip_prefix("t:") {
        if let Some(v) = rest.strip_prefix('?') {
            return Term::TextVar(v.to_string());
        }
        let unquoted = rest
            .strip_prefix('"')
            .and_then(|r| r.strip_suffix('"'))
            .or_else(|| rest.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')));
        if let Some(lit) = unquoted {
            return Term::TextLit(lit.to_string());
        }
        if looks_like_var(rest) {
            return Term::TextVar(rest.to_string());
        }
        return Term::TextLit(rest.to_string());
    }
    classify_node_term(tok)
}

/// Splits the input into parenthesised groups of whitespace-separated tokens.
/// Quoted strings (after `t:`) may contain spaces.
fn tokenize_groups(text: &str) -> Result<Vec<(Vec<String>, usize)>, ParseError> {
    let mut groups = Vec::new();
    let mut chars = text.char_indices().peekable();
    while let Some((i, c)) = chars.next() {
        match c {
            '(' => {
                let mut tokens: Vec<String> = Vec::new();
                let mut current = String::new();
                let mut in_quote: Option<char> = None;
                let mut closed = false;
                for (j, c2) in chars.by_ref() {
                    if let Some(q) = in_quote {
                        current.push(c2);
                        if c2 == q {
                            in_quote = None;
                        }
                        continue;
                    }
                    match c2 {
                        '"' | '\'' => {
                            in_quote = Some(c2);
                            current.push(c2);
                        }
                        ')' => {
                            if !current.is_empty() {
                                tokens.push(std::mem::take(&mut current));
                            }
                            closed = true;
                            let _ = j;
                            break;
                        }
                        c2 if c2.is_whitespace() => {
                            if !current.is_empty() {
                                tokens.push(std::mem::take(&mut current));
                            }
                        }
                        _ => current.push(c2),
                    }
                }
                if !closed {
                    return err("unclosed '(' in pattern", i);
                }
                groups.push((tokens, i));
            }
            '&' => {}
            c if c.is_whitespace() => {}
            _ => return err(format!("unexpected character {c:?}"), i),
        }
    }
    Ok(groups)
}

/// Parses a pattern written in the paper's syntax.
///
/// `name` becomes the pattern name used by the registry; the anchor variable
/// defaults to `x`.
pub fn parse_pattern(name: &str, text: &str) -> Result<Pattern, ParseError> {
    let groups = tokenize_groups(text)?;
    if groups.is_empty() {
        return err("pattern contains no triples", 0);
    }
    let mut items = Vec::with_capacity(groups.len());
    for (tokens, offset) in groups {
        match tokens.len() {
            2 => {
                let var = classify_node_term(&tokens[0]);
                let Some(pattern) = tokens[1].strip_prefix("matches-") else {
                    return err(
                        format!(
                            "two-term group must be a 'matches-<pattern>' reference, got {:?}",
                            tokens[1]
                        ),
                        offset,
                    );
                };
                if pattern.is_empty() {
                    return err("empty pattern reference after 'matches-'", offset);
                }
                items.push(PatternItem::Reference {
                    var,
                    pattern: pattern.to_string(),
                });
            }
            3 => {
                let subject = classify_object_term(&tokens[0]);
                if matches!(subject, Term::TextLit(_) | Term::TextVar(_)) {
                    return err("subject of a triple cannot be a text label", offset);
                }
                let predicate = tokens[1].clone();
                let object = classify_object_term(&tokens[2]);
                items.push(PatternItem::Triple(TriplePattern {
                    subject,
                    predicate,
                    object,
                }));
            }
            n => {
                return err(
                    format!("triple group must have 2 or 3 terms, got {n}"),
                    offset,
                );
            }
        }
    }
    Ok(Pattern::new(name, items))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_table_pattern_from_the_paper() {
        let p = parse_pattern("table", "( x tablename t:y ) &\n( x type physical_table )").unwrap();
        assert_eq!(p.items.len(), 2);
        assert_eq!(
            p.items[0],
            PatternItem::Triple(TriplePattern {
                subject: Term::Var("x".into()),
                predicate: "tablename".into(),
                object: Term::TextVar("y".into()),
            })
        );
        assert_eq!(
            p.items[1],
            PatternItem::Triple(TriplePattern {
                subject: Term::Var("x".into()),
                predicate: "type".into(),
                object: Term::Uri("physical_table".into()),
            })
        );
    }

    #[test]
    fn parses_column_pattern_with_incoming_edge() {
        let p = parse_pattern(
            "column",
            "( x columnname t:y ) & ( x type physical_column ) & ( z column x )",
        )
        .unwrap();
        assert_eq!(p.items.len(), 3);
        if let PatternItem::Triple(t) = &p.items[2] {
            assert_eq!(t.subject, Term::Var("z".into()));
            assert_eq!(t.object, Term::Var("x".into()));
        } else {
            panic!("expected triple");
        }
    }

    #[test]
    fn parses_foreign_key_pattern_with_references() {
        let p = parse_pattern(
            "foreign_key",
            "( x foreign_key y ) & ( x matches-column ) & ( y matches-column )",
        )
        .unwrap();
        assert_eq!(p.references(), vec!["column", "column"]);
    }

    #[test]
    fn parses_inheritance_child_pattern() {
        let p = parse_pattern(
            "inheritance_child",
            "( y inheritance_child x ) & ( y type inheritance_node ) & \
             ( y inheritance_parent p ) & ( y inheritance_child c1 ) & ( y inheritance_child c2 )",
        )
        .unwrap();
        assert_eq!(p.items.len(), 5);
        assert_eq!(
            p.variables(),
            vec!["x", "y", "p", "c1", "c2"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn explicit_variables_and_literals() {
        let p = parse_pattern(
            "filter",
            "( ?concept defined_filter ?f ) & ( ?f filter_value t:\"Zurich City\" )",
        )
        .unwrap();
        if let PatternItem::Triple(t) = &p.items[1] {
            assert_eq!(t.object, Term::TextLit("Zurich City".into()));
            assert_eq!(t.subject, Term::Var("f".into()));
        } else {
            panic!("expected triple");
        }
    }

    #[test]
    fn long_tokens_are_uris_not_variables() {
        let p = parse_pattern("t", "( x type physical_table )").unwrap();
        if let PatternItem::Triple(t) = &p.items[0] {
            assert_eq!(t.object, Term::Uri("physical_table".into()));
        } else {
            panic!("expected triple");
        }
    }

    #[test]
    fn rejects_unclosed_group() {
        assert!(parse_pattern("bad", "( x type physical_table").is_err());
    }

    #[test]
    fn rejects_wrong_arity() {
        assert!(parse_pattern("bad", "( x )").is_err());
        assert!(parse_pattern("bad", "( x a b c )").is_err());
    }

    #[test]
    fn rejects_garbage_between_groups() {
        assert!(parse_pattern("bad", "( x type y ) garbage ( x a b )").is_err());
    }

    #[test]
    fn rejects_text_label_in_subject_position() {
        assert!(parse_pattern("bad", "( t:x type y )").is_err());
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse_pattern("bad", "   ").is_err());
    }
}
