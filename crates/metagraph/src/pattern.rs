//! The metadata-graph pattern language.
//!
//! Patterns follow §4.2.1 of the paper: a pattern is a conjunction of triples;
//! each triple either connects two nodes or connects a node with a text label.
//! A node position is either a static URI or a variable; variables keep their
//! assignment within one match.  In addition, a pattern item may *reference*
//! another named pattern (the paper writes `( x matches-column )` to reuse the
//! column pattern inside the foreign-key pattern).
//!
//! The conventional anchor variable is `x`: when a pattern is tested at a node
//! during graph traversal, `x` is pre-bound to that node.

use std::fmt;

/// A term in subject/object position of a triple pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A variable over nodes (e.g. `x`, `y`, `?join`).
    Var(String),
    /// A static node URI (e.g. `physical_table`).
    Uri(String),
    /// A variable over text labels (the paper writes `t:y`).
    TextVar(String),
    /// A literal text label (e.g. `t:"parties"`).
    TextLit(String),
}

impl Term {
    /// Returns the variable name if this term is a node or text variable.
    pub fn var_name(&self) -> Option<&str> {
        match self {
            Term::Var(v) | Term::TextVar(v) => Some(v),
            _ => None,
        }
    }

    /// True if the term is a variable (node or text).
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_) | Term::TextVar(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Uri(u) => write!(f, "{u}"),
            Term::TextVar(v) => write!(f, "t:{v}"),
            Term::TextLit(s) => write!(f, "t:\"{s}\""),
        }
    }
}

/// A single triple pattern `( subject predicate object )`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject term (node variable or URI).
    pub subject: Term,
    /// Predicate URI (always static in SODA's patterns).
    pub predicate: String,
    /// Object term (node variable/URI or text variable/literal).
    pub object: Term,
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "( {} {} {} )", self.subject, self.predicate, self.object)
    }
}

/// One conjunct of a pattern: either a plain triple or a reference to another
/// named pattern evaluated with its anchor bound to `var`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternItem {
    /// A triple pattern.
    Triple(TriplePattern),
    /// `( var matches-<name> )`: the referenced pattern must match with its
    /// anchor variable bound to `var`'s assignment.
    Reference {
        /// The variable whose binding anchors the referenced pattern.
        var: Term,
        /// Name of the referenced pattern in the [`crate::matcher::PatternRegistry`].
        pattern: String,
    },
}

impl fmt::Display for PatternItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternItem::Triple(t) => write!(f, "{t}"),
            PatternItem::Reference { var, pattern } => {
                write!(f, "( {var} matches-{pattern} )")
            }
        }
    }
}

/// A named, conjunctive metadata-graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    /// Pattern name (e.g. `"table"`, `"column"`, `"foreign_key"`).
    pub name: String,
    /// The conjuncts.
    pub items: Vec<PatternItem>,
    /// The anchor variable, bound to the node being tested (default `"x"`).
    pub anchor: String,
}

impl Pattern {
    /// Builds a pattern from parts, using the conventional anchor `x`.
    pub fn new(name: impl Into<String>, items: Vec<PatternItem>) -> Self {
        Self {
            name: name.into(),
            items,
            anchor: "x".to_string(),
        }
    }

    /// Parses a pattern from the paper's textual syntax; see [`crate::parser`].
    pub fn parse(name: &str, text: &str) -> Result<Self, crate::parser::ParseError> {
        crate::parser::parse_pattern(name, text)
    }

    /// Overrides the anchor variable.
    pub fn with_anchor(mut self, anchor: impl Into<String>) -> Self {
        self.anchor = anchor.into();
        self
    }

    /// All distinct variable names mentioned by the pattern, anchor first.
    pub fn variables(&self) -> Vec<String> {
        let mut vars = vec![self.anchor.clone()];
        let mut push = |t: &Term| {
            if let Some(v) = t.var_name() {
                if !vars.iter().any(|x| x == v) {
                    vars.push(v.to_string());
                }
            }
        };
        for item in &self.items {
            match item {
                PatternItem::Triple(t) => {
                    push(&t.subject);
                    push(&t.object);
                }
                PatternItem::Reference { var, .. } => push(var),
            }
        }
        vars
    }

    /// Names of patterns referenced through `matches-` items.
    pub fn references(&self) -> Vec<&str> {
        self.items
            .iter()
            .filter_map(|i| match i {
                PatternItem::Reference { pattern, .. } => Some(pattern.as_str()),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let body = self
            .items
            .iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(" &\n");
        write!(f, "{body}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_pattern() -> Pattern {
        Pattern::new(
            "table",
            vec![
                PatternItem::Triple(TriplePattern {
                    subject: Term::Var("x".into()),
                    predicate: "tablename".into(),
                    object: Term::TextVar("y".into()),
                }),
                PatternItem::Triple(TriplePattern {
                    subject: Term::Var("x".into()),
                    predicate: "type".into(),
                    object: Term::Uri("physical_table".into()),
                }),
            ],
        )
    }

    #[test]
    fn variables_are_collected_in_order_anchor_first() {
        let p = table_pattern();
        assert_eq!(p.variables(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn references_are_extracted() {
        let p = Pattern::new(
            "foreign_key",
            vec![
                PatternItem::Triple(TriplePattern {
                    subject: Term::Var("x".into()),
                    predicate: "foreign_key".into(),
                    object: Term::Var("y".into()),
                }),
                PatternItem::Reference {
                    var: Term::Var("x".into()),
                    pattern: "column".into(),
                },
                PatternItem::Reference {
                    var: Term::Var("y".into()),
                    pattern: "column".into(),
                },
            ],
        );
        assert_eq!(p.references(), vec!["column", "column"]);
    }

    #[test]
    fn display_round_trips_through_parser() {
        let p = table_pattern();
        let text = p.to_string();
        let reparsed = Pattern::parse("table", &text).unwrap();
        assert_eq!(reparsed.items, p.items);
    }

    #[test]
    fn term_display_forms() {
        assert_eq!(Term::Var("x".into()).to_string(), "x");
        assert_eq!(
            Term::Uri("physical_table".into()).to_string(),
            "physical_table"
        );
        assert_eq!(Term::TextVar("y".into()).to_string(), "t:y");
        assert_eq!(Term::TextLit("Zurich".into()).to_string(), "t:\"Zurich\"");
    }

    #[test]
    fn anchor_can_be_overridden() {
        let p = table_pattern().with_anchor("z");
        assert_eq!(p.anchor, "z");
        assert_eq!(p.variables()[0], "z");
    }
}
