//! A small fluent helper for constructing metadata graphs.
//!
//! The warehouse crate uses this builder to translate relational schemas,
//! domain ontologies and synonym stores into the node/edge vocabulary that the
//! SODA patterns expect (`physical_table`, `tablename`, `column`,
//! `foreign_key`, `inheritance_node`, …).

use crate::graph::{MetaGraph, NodeId};

/// Well-known node-type URIs used by the default SODA patterns.
pub mod types {
    /// Physical table node type.
    pub const PHYSICAL_TABLE: &str = "physical_table";
    /// Physical column node type.
    pub const PHYSICAL_COLUMN: &str = "physical_column";
    /// Logical entity node type.
    pub const LOGICAL_ENTITY: &str = "logical_entity";
    /// Logical attribute node type.
    pub const LOGICAL_ATTRIBUTE: &str = "logical_attribute";
    /// Conceptual entity node type.
    pub const CONCEPTUAL_ENTITY: &str = "conceptual_entity";
    /// Conceptual attribute node type.
    pub const CONCEPTUAL_ATTRIBUTE: &str = "conceptual_attribute";
    /// Explicit join node type (the Credit Suisse join-relationship pattern).
    pub const JOIN_NODE: &str = "join_node";
    /// Explicit inheritance node type.
    pub const INHERITANCE_NODE: &str = "inheritance_node";
    /// Domain-ontology concept node type.
    pub const ONTOLOGY_CONCEPT: &str = "ontology_concept";
    /// DBpedia synonym node type.
    pub const DBPEDIA_TERM: &str = "dbpedia_term";
    /// Metadata-defined filter node type (e.g. "wealthy customer").
    pub const METADATA_FILTER: &str = "metadata_filter";
    /// Bi-temporal historization annotation node type (links a history table
    /// to the table carrying the current state).
    pub const HISTORIZATION_NODE: &str = "historization_node";
}

/// Well-known predicate URIs used by the default SODA patterns.
pub mod preds {
    /// `type` edge from any node to its node-type node.
    pub const TYPE: &str = "type";
    /// Table-name text edge.
    pub const TABLENAME: &str = "tablename";
    /// Column-name text edge.
    pub const COLUMNNAME: &str = "columnname";
    /// Generic business-name text edge for conceptual/logical/ontology nodes.
    pub const NAME: &str = "name";
    /// Table → column edge.
    pub const COLUMN: &str = "column";
    /// Direct foreign-key edge between two columns.
    pub const FOREIGN_KEY: &str = "foreign_key";
    /// Join node → foreign-key column edge.
    pub const JOIN_FOREIGN_KEY: &str = "join_foreign_key";
    /// Join node → primary-key column edge.
    pub const JOIN_PRIMARY_KEY: &str = "join_primary_key";
    /// Inheritance node → parent table edge.
    pub const INHERITANCE_PARENT: &str = "inheritance_parent";
    /// Inheritance node → child table edge.
    pub const INHERITANCE_CHILD: &str = "inheritance_child";
    /// Logical/conceptual entity → implementing node at the next lower layer.
    pub const IMPLEMENTED_BY: &str = "implemented_by";
    /// Conceptual entity → refining logical entity.
    pub const REFINED_BY: &str = "refined_by";
    /// Attribute → attribute/column realisation at the next lower layer.
    pub const REALIZED_BY: &str = "realized_by";
    /// Entity → attribute edge at conceptual/logical level.
    pub const ATTRIBUTE: &str = "attribute";
    /// Ontology concept → classified entity (any layer).
    pub const CLASSIFIES: &str = "classifies";
    /// Ontology concept → parent concept.
    pub const BROADER: &str = "broader";
    /// DBpedia term → schema/ontology node it is a synonym of.
    pub const SYNONYM_OF: &str = "synonym_of";
    /// Ontology concept → metadata filter node.
    pub const DEFINED_FILTER: &str = "defined_filter";
    /// Metadata filter → column it constrains.
    pub const FILTER_COLUMN: &str = "filter_column";
    /// Metadata filter → comparison operator text (">", "=", "like", …).
    pub const FILTER_OP: &str = "filter_op";
    /// Metadata filter → literal value text.
    pub const FILTER_VALUE: &str = "filter_value";
    /// Base-data column node → physical column (connects inverted-index hits
    /// into the metadata graph).
    pub const INDEXED_BY: &str = "indexed_by";
    /// Historization node → history table.
    pub const HIST_TABLE: &str = "hist_table";
    /// Historization node → table carrying the current state.
    pub const CURRENT_TABLE: &str = "current_table";
    /// Historization node → name of the validity-start column (text).
    pub const VALID_FROM_COLUMN: &str = "valid_from_column";
    /// Historization node → name of the validity-end column (text).
    pub const VALID_TO_COLUMN: &str = "valid_to_column";
}

/// Fluent builder around a [`MetaGraph`].
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: MetaGraph,
}

impl GraphBuilder {
    /// Creates a builder with an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access to the graph under construction.
    pub fn graph(&self) -> &MetaGraph {
        &self.graph
    }

    /// Finishes building and returns the graph.
    pub fn build(self) -> MetaGraph {
        self.graph
    }

    /// Adds (or gets) a node and attaches a `type` edge to `type_uri`.
    pub fn typed_node(&mut self, uri: &str, type_uri: &str) -> NodeId {
        let node = self.graph.add_node(uri);
        let type_node = self.graph.add_node(type_uri);
        if !self
            .graph
            .objects_of(node, preds::TYPE)
            .contains(&type_node)
        {
            self.graph.add_edge(node, preds::TYPE, type_node);
        }
        node
    }

    /// Adds a physical table node with its `tablename` label.
    pub fn physical_table(&mut self, uri: &str, name: &str) -> NodeId {
        let n = self.typed_node(uri, types::PHYSICAL_TABLE);
        self.graph.add_text_edge(n, preds::TABLENAME, name);
        n
    }

    /// Adds a physical column node with its `columnname` label and links it to
    /// its table through a `column` edge.
    pub fn physical_column(&mut self, table: NodeId, uri: &str, name: &str) -> NodeId {
        let n = self.typed_node(uri, types::PHYSICAL_COLUMN);
        self.graph.add_text_edge(n, preds::COLUMNNAME, name);
        self.graph.add_edge(table, preds::COLUMN, n);
        n
    }

    /// Adds a direct foreign-key edge between two column nodes.
    pub fn foreign_key(&mut self, fk_column: NodeId, pk_column: NodeId) {
        self.graph
            .add_edge(fk_column, preds::FOREIGN_KEY, pk_column);
    }

    /// Adds an explicit join node (the Credit Suisse join-relationship
    /// pattern) between a foreign-key column and a primary-key column.
    pub fn join_relationship(&mut self, uri: &str, fk_column: NodeId, pk_column: NodeId) -> NodeId {
        let join = self.typed_node(uri, types::JOIN_NODE);
        self.graph
            .add_edge(join, preds::JOIN_FOREIGN_KEY, fk_column);
        self.graph
            .add_edge(join, preds::JOIN_PRIMARY_KEY, pk_column);
        // Also connect the columns to the join node so that outgoing traversal
        // from either side discovers it.
        self.graph.add_edge(fk_column, "join", join);
        self.graph.add_edge(pk_column, "join", join);
        join
    }

    /// Adds an explicit inheritance node with a parent and at least two
    /// children (mutually exclusive inheritance, Figures 1 and 2).
    pub fn inheritance(&mut self, uri: &str, parent: NodeId, children: &[NodeId]) -> NodeId {
        let inh = self.typed_node(uri, types::INHERITANCE_NODE);
        self.graph.add_edge(inh, preds::INHERITANCE_PARENT, parent);
        for &c in children {
            self.graph.add_edge(inh, preds::INHERITANCE_CHILD, c);
            // Children link back so traversal starting at a child can find the
            // inheritance node and through it the parent table.
            self.graph.add_edge(c, "inherits_via", inh);
        }
        self.graph.add_edge(parent, "specialized_via", inh);
        inh
    }

    /// Adds a named node of an arbitrary type carrying a `name` label.
    pub fn named_node(&mut self, uri: &str, type_uri: &str, name: &str) -> NodeId {
        let n = self.typed_node(uri, type_uri);
        self.graph.add_text_edge(n, preds::NAME, name);
        n
    }

    /// Adds an ontology concept node.
    pub fn ontology_concept(&mut self, uri: &str, name: &str) -> NodeId {
        self.named_node(uri, types::ONTOLOGY_CONCEPT, name)
    }

    /// Adds a DBpedia synonym node pointing at `target`.
    pub fn dbpedia_synonym(&mut self, uri: &str, term: &str, target: NodeId) -> NodeId {
        let n = self.named_node(uri, types::DBPEDIA_TERM, term);
        self.graph.add_edge(n, preds::SYNONYM_OF, target);
        n
    }

    /// Adds a metadata-defined filter (e.g. wealthy customer := salary >= 500000)
    /// hanging off an ontology concept.
    pub fn metadata_filter(
        &mut self,
        uri: &str,
        concept: NodeId,
        column: NodeId,
        op: &str,
        value: &str,
    ) -> NodeId {
        let f = self.typed_node(uri, types::METADATA_FILTER);
        self.graph.add_edge(concept, preds::DEFINED_FILTER, f);
        self.graph.add_edge(f, preds::FILTER_COLUMN, column);
        self.graph.add_text_edge(f, preds::FILTER_OP, op);
        self.graph.add_text_edge(f, preds::FILTER_VALUE, value);
        f
    }

    /// Adds a bi-temporal historization annotation: `hist_table` holds the
    /// history of `current_table`, with validity bounded by the named
    /// `valid_from` / `valid_to` columns of the history table.  This is the
    /// annotation the paper proposes as the remedy for the recall loss caused
    /// by unannotated historization joins (§5.2.1, §7).
    pub fn historization(
        &mut self,
        uri: &str,
        hist_table: NodeId,
        current_table: NodeId,
        valid_from: &str,
        valid_to: &str,
    ) -> NodeId {
        let h = self.typed_node(uri, types::HISTORIZATION_NODE);
        self.graph.add_edge(h, preds::HIST_TABLE, hist_table);
        self.graph.add_edge(h, preds::CURRENT_TABLE, current_table);
        self.graph
            .add_text_edge(h, preds::VALID_FROM_COLUMN, valid_from);
        self.graph
            .add_text_edge(h, preds::VALID_TO_COLUMN, valid_to);
        // Link both tables back so a traversal starting at either side can
        // discover the annotation.
        self.graph.add_edge(hist_table, "historized_via", h);
        self.graph.add_edge(current_table, "historized_via", h);
        h
    }

    /// Adds an arbitrary node-to-node edge.
    pub fn edge(&mut self, from: NodeId, predicate: &str, to: NodeId) {
        self.graph.add_edge(from, predicate, to);
    }

    /// Adds an arbitrary text edge.
    pub fn text(&mut self, from: NodeId, predicate: &str, text: &str) {
        self.graph.add_text_edge(from, predicate, text);
    }

    /// Adds (or gets) an untyped node.
    pub fn node(&mut self, uri: &str) -> NodeId {
        self.graph.add_node(uri)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{Matcher, PatternRegistry};
    use crate::pattern::Pattern;

    #[test]
    fn builder_produces_pattern_matchable_structures() {
        let mut b = GraphBuilder::new();
        let parties = b.physical_table("phys/parties", "parties");
        let individuals = b.physical_table("phys/individuals", "individuals");
        let organizations = b.physical_table("phys/organizations", "organizations");
        let p_id = b.physical_column(parties, "phys/parties/id", "id");
        let i_id = b.physical_column(individuals, "phys/individuals/id", "id");
        b.foreign_key(i_id, p_id);
        b.inheritance("inh/party", parties, &[individuals, organizations]);
        let g = b.build();

        let mut r = PatternRegistry::new();
        r.register(
            Pattern::parse("table", "( x tablename t:y ) & ( x type physical_table )").unwrap(),
        );
        r.register(
            Pattern::parse(
                "column",
                "( x columnname t:y ) & ( x type physical_column ) & ( z column x )",
            )
            .unwrap(),
        );
        r.register(
            Pattern::parse(
                "foreign_key",
                "( x foreign_key y ) & ( x matches-column ) & ( y matches-column )",
            )
            .unwrap(),
        );
        r.register(
            Pattern::parse(
                "inheritance_child",
                "( y inheritance_child x ) & ( y type inheritance_node ) & \
                 ( y inheritance_parent p ) & ( y inheritance_child c1 ) & ( y inheritance_child c2 )",
            )
            .unwrap(),
        );
        let m = Matcher::new(&g, &r);
        assert!(m.matches(r.get("table").unwrap(), parties));
        assert!(m.matches(r.get("column").unwrap(), i_id));
        assert!(m.matches(r.get("foreign_key").unwrap(), i_id));
        assert!(m.matches(r.get("inheritance_child").unwrap(), individuals));
        assert!(!m.matches(r.get("inheritance_child").unwrap(), parties));
    }

    #[test]
    fn typed_node_does_not_duplicate_type_edges() {
        let mut b = GraphBuilder::new();
        let a = b.typed_node("a", "thing");
        let a2 = b.typed_node("a", "thing");
        assert_eq!(a, a2);
        let g = b.build();
        assert_eq!(g.objects_of(a, preds::TYPE).len(), 1);
    }

    #[test]
    fn metadata_filter_links_concept_column_and_value() {
        let mut b = GraphBuilder::new();
        let table = b.physical_table("phys/individuals", "individuals");
        let salary = b.physical_column(table, "phys/individuals/salary", "salary");
        let concept = b.ontology_concept("onto/wealthy", "wealthy customers");
        b.metadata_filter("filter/wealthy", concept, salary, ">=", "500000");
        let g = b.build();
        let filters = g.objects_of(concept, preds::DEFINED_FILTER);
        assert_eq!(filters.len(), 1);
        let f = filters[0];
        assert_eq!(g.objects_of(f, preds::FILTER_COLUMN), vec![salary]);
        assert_eq!(g.text_of(f, preds::FILTER_OP), Some(">="));
        assert_eq!(g.text_of(f, preds::FILTER_VALUE), Some("500000"));
    }

    #[test]
    fn dbpedia_synonym_points_at_target() {
        let mut b = GraphBuilder::new();
        let concept = b.ontology_concept("onto/customers", "customers");
        let syn = b.dbpedia_synonym("dbp/client", "client", concept);
        let g = b.build();
        assert_eq!(g.objects_of(syn, preds::SYNONYM_OF), vec![concept]);
        assert_eq!(g.text_of(syn, preds::NAME), Some("client"));
        assert!(g.has_type(syn, types::DBPEDIA_TERM));
    }

    #[test]
    fn historization_links_history_to_current_table() {
        let mut b = GraphBuilder::new();
        let hist = b.physical_table("phys/individual_name_hist", "individual name hist");
        let current = b.physical_table("phys/individual", "individual");
        let h = b.historization("hist/individual", hist, current, "valid_from", "valid_to");
        let g = b.build();
        assert!(g.has_type(h, types::HISTORIZATION_NODE));
        assert_eq!(g.objects_of(h, preds::HIST_TABLE), vec![hist]);
        assert_eq!(g.objects_of(h, preds::CURRENT_TABLE), vec![current]);
        assert_eq!(g.text_of(h, preds::VALID_FROM_COLUMN), Some("valid_from"));
        assert_eq!(g.text_of(h, preds::VALID_TO_COLUMN), Some("valid_to"));
        assert!(g.objects_of(hist, "historized_via").contains(&h));
        assert!(g.objects_of(current, "historized_via").contains(&h));
    }

    #[test]
    fn join_relationship_creates_bidirectional_discovery_edges() {
        let mut b = GraphBuilder::new();
        let t1 = b.physical_table("phys/a", "a");
        let t2 = b.physical_table("phys/b", "b");
        let c1 = b.physical_column(t1, "phys/a/bid", "b_id");
        let c2 = b.physical_column(t2, "phys/b/id", "id");
        let join = b.join_relationship("join/a_b", c1, c2);
        let g = b.build();
        assert_eq!(g.objects_of(join, preds::JOIN_FOREIGN_KEY), vec![c1]);
        assert_eq!(g.objects_of(join, preds::JOIN_PRIMARY_KEY), vec![c2]);
        assert!(g.objects_of(c1, "join").contains(&join));
        assert!(g.objects_of(c2, "join").contains(&join));
    }
}
