//! String interning for node URIs, predicates and text labels.
//!
//! The metadata graph of a real data warehouse contains tens of thousands of
//! nodes and edges whose URIs repeat constantly (every physical column has a
//! `type` edge to the `physical_column` node, for example).  Interning keeps
//! comparisons cheap (a `u32` compare) and the graph compact.

use std::collections::HashMap;
use std::fmt;

/// Identifier of an interned predicate URI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub(crate) u32);

/// Identifier of an interned text label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub(crate) u32);

impl PredId {
    /// Raw index of the interned predicate.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LabelId {
    /// Raw index of the interned label.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A simple append-only string interner.
///
/// Lookups are case-sensitive; callers that want case-insensitive semantics
/// (such as the SODA classification index) normalise before interning.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its index.  Re-interning an existing string
    /// returns the original index.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), id);
        id
    }

    /// Returns the index of `s` if it has been interned before.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }

    /// Resolves an index back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this table.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates over `(index, string)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pred#{}", self.0)
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "label#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("tablename");
        let b = t.intern("tablename");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn intern_distinct_strings() {
        let mut t = SymbolTable::new();
        let a = t.intern("type");
        let b = t.intern("columnname");
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "type");
        assert_eq!(t.resolve(b), "columnname");
    }

    #[test]
    fn get_without_intern_returns_none() {
        let t = SymbolTable::new();
        assert_eq!(t.get("missing"), None);
        assert!(t.is_empty());
    }

    #[test]
    fn case_sensitivity_is_preserved() {
        let mut t = SymbolTable::new();
        let lower = t.intern("parties");
        let upper = t.intern("Parties");
        assert_ne!(lower, upper);
    }

    #[test]
    fn iteration_order_matches_interning_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        t.intern("c");
        let all: Vec<_> = t.iter().map(|(_, s)| s.to_string()).collect();
        assert_eq!(all, vec!["a", "b", "c"]);
    }
}
