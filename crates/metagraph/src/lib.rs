//! # soda-metagraph
//!
//! An in-memory, RDF-like metadata graph together with a SPARQL-filter-inspired
//! pattern language, a pattern matcher and traversal primitives.
//!
//! This crate is the substrate beneath the SODA pipeline (see the `soda-core`
//! crate): the data-warehouse schema at its conceptual, logical and physical
//! levels, the domain ontologies, the DBpedia synonyms and the links to the
//! base data are all represented as one [`MetaGraph`].  SODA's *metadata graph
//! patterns* (table pattern, column pattern, foreign-key pattern, inheritance
//! pattern, bridge-table pattern, …) are expressed in the [`pattern`] module's
//! language and evaluated by the [`matcher`].
//!
//! ## Data model
//!
//! * A **node** is identified by a URI (an interned string).  Nodes carry no
//!   payload of their own; everything is expressed as triples.
//! * An **edge** (triple) connects a subject node through a predicate either to
//!   another node or to a **text label**.
//! * Predicates and text labels are interned separately from node URIs.
//!
//! ## Example
//!
//! ```
//! use soda_metagraph::{MetaGraph, Pattern, PatternRegistry, Matcher};
//!
//! let mut g = MetaGraph::new();
//! let table = g.add_node("phys/parties");
//! let ptype = g.add_node("physical_table");
//! g.add_edge(table, "type", ptype);
//! g.add_text_edge(table, "tablename", "parties");
//!
//! let pattern = Pattern::parse(
//!     "table",
//!     "( x tablename t:y ) & ( x type physical_table )",
//! ).unwrap();
//!
//! let registry = PatternRegistry::new();
//! let matcher = Matcher::new(&g, &registry);
//! let matches = matcher.match_at(&pattern, table);
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].text("y"), Some("parties"));
//! ```

pub mod builder;
pub mod graph;
pub mod matcher;
pub mod parser;
pub mod pattern;
pub mod traversal;
pub mod uri;

pub use builder::GraphBuilder;
pub use graph::{Edge, MetaGraph, NodeId, Object};
pub use matcher::{Binding, Matcher, PatternRegistry};
pub use parser::{parse_pattern, ParseError};
pub use pattern::{Pattern, PatternItem, Term, TriplePattern};
pub use traversal::{Direction, Traversal};
pub use uri::{LabelId, PredId, SymbolTable};
