//! Graph traversal primitives used by the SODA "tables" step.
//!
//! The paper's algorithm starts at every entry point discovered by the lookup
//! step and "recursively follow\[s\] all the outgoing edges", testing the basic
//! patterns at every node.  This module provides bounded breadth-first
//! traversal, reachability, and shortest-path computation (the latter is used
//! to keep only join conditions that lie on a direct path between entry
//! points, Figure 9).

use std::collections::{HashMap, HashSet, VecDeque};

use crate::graph::{MetaGraph, NodeId};

/// Direction of traversal relative to edge direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from subject to object (the paper's default).
    Outgoing,
    /// Follow edges from object to subject.
    Incoming,
    /// Treat edges as undirected.
    Both,
}

/// Traversal helper bound to a graph.
pub struct Traversal<'a> {
    graph: &'a MetaGraph,
    direction: Direction,
    max_depth: usize,
    /// Predicates that the traversal must not follow (e.g. `type` edges, which
    /// would otherwise connect every table to every other table through the
    /// shared `physical_table` node).
    blocked_predicates: HashSet<String>,
}

impl<'a> Traversal<'a> {
    /// Creates an outgoing traversal with a generous depth bound.
    pub fn new(graph: &'a MetaGraph) -> Self {
        Self {
            graph,
            direction: Direction::Outgoing,
            max_depth: 16,
            blocked_predicates: HashSet::new(),
        }
    }

    /// Sets the traversal direction.
    pub fn direction(mut self, direction: Direction) -> Self {
        self.direction = direction;
        self
    }

    /// Sets the maximum depth (number of edges) explored from each start node.
    pub fn max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Blocks a predicate from being followed.
    pub fn block_predicate(mut self, predicate: &str) -> Self {
        self.blocked_predicates.insert(predicate.to_string());
        self
    }

    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let blocked: HashSet<_> = self
            .blocked_predicates
            .iter()
            .filter_map(|p| self.graph.find_predicate(p))
            .collect();
        if matches!(self.direction, Direction::Outgoing | Direction::Both) {
            for (p, o) in self.graph.outgoing(node) {
                if blocked.contains(p) {
                    continue;
                }
                if let Some(n) = o.as_node() {
                    out.push(n);
                }
            }
        }
        if matches!(self.direction, Direction::Incoming | Direction::Both) {
            for (p, s) in self.graph.incoming(node) {
                if blocked.contains(p) {
                    continue;
                }
                out.push(*s);
            }
        }
        out
    }

    /// Breadth-first visit from `starts`; calls `visit(node, depth)` for every
    /// reachable node (including the start nodes at depth 0).  Returning
    /// `false` from the visitor stops expansion *below* that node but the
    /// traversal continues elsewhere.
    pub fn visit<F: FnMut(NodeId, usize) -> bool>(&self, starts: &[NodeId], mut visit: F) {
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
        for &s in starts {
            if seen.insert(s) {
                queue.push_back((s, 0));
            }
        }
        while let Some((node, depth)) = queue.pop_front() {
            let expand = visit(node, depth);
            if !expand || depth >= self.max_depth {
                continue;
            }
            for n in self.neighbors(node) {
                if seen.insert(n) {
                    queue.push_back((n, depth + 1));
                }
            }
        }
    }

    /// All nodes reachable from `starts` within the depth bound.
    pub fn reachable(&self, starts: &[NodeId]) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.visit(starts, |n, _| {
            out.push(n);
            true
        });
        out
    }

    /// Shortest path (as a node sequence, inclusive of both endpoints) between
    /// `from` and `to`, or `None` if `to` is unreachable within the depth
    /// bound.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
        seen.insert(from);
        queue.push_back((from, 0));
        while let Some((node, depth)) = queue.pop_front() {
            if depth >= self.max_depth {
                continue;
            }
            for n in self.neighbors(node) {
                if seen.insert(n) {
                    prev.insert(n, node);
                    if n == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while let Some(&p) = prev.get(&cur) {
                            path.push(p);
                            cur = p;
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back((n, depth + 1));
                }
            }
        }
        None
    }

    /// Pairwise shortest paths between every pair of `nodes` (skipping
    /// unreachable pairs).  Used for the direct-path join pruning of Figure 9.
    pub fn pairwise_paths(&self, nodes: &[NodeId]) -> Vec<(NodeId, NodeId, Vec<NodeId>)> {
        let mut out = Vec::new();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in nodes.iter().skip(i + 1) {
                if let Some(p) = self.shortest_path(a, b) {
                    out.push((a, b, p));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a -> b -> c -> d, a -> e, plus d -> a making a cycle.
    fn chain_graph() -> (MetaGraph, Vec<NodeId>) {
        let mut g = MetaGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        let e = g.add_node("e");
        g.add_edge(a, "next", b);
        g.add_edge(b, "next", c);
        g.add_edge(c, "next", d);
        g.add_edge(a, "side", e);
        g.add_edge(d, "back", a);
        (g, vec![a, b, c, d, e])
    }

    #[test]
    fn reachable_follows_outgoing_edges_and_handles_cycles() {
        let (g, n) = chain_graph();
        let t = Traversal::new(&g);
        let mut r = t.reachable(&[n[0]]);
        r.sort();
        let mut expected = n.clone();
        expected.sort();
        assert_eq!(r, expected);
    }

    #[test]
    fn depth_bound_limits_expansion() {
        let (g, n) = chain_graph();
        let t = Traversal::new(&g).max_depth(1);
        let mut r = t.reachable(&[n[0]]);
        r.sort();
        let mut expected = vec![n[0], n[1], n[4]];
        expected.sort();
        assert_eq!(r, expected);
    }

    #[test]
    fn incoming_direction() {
        let (g, n) = chain_graph();
        let t = Traversal::new(&g)
            .direction(Direction::Incoming)
            .max_depth(2);
        let r = t.reachable(&[n[1]]);
        // b's predecessors within two hops: a directly, d via the back edge to a.
        assert!(r.contains(&n[0]));
        assert!(r.contains(&n[3]));
        // c is three incoming hops away (c -> d -> a -> b), beyond the bound.
        assert!(!r.contains(&n[2]));
    }

    #[test]
    fn blocked_predicates_are_not_followed() {
        let (g, n) = chain_graph();
        let t = Traversal::new(&g).block_predicate("side");
        let r = t.reachable(&[n[0]]);
        assert!(!r.contains(&n[4]));
        assert!(r.contains(&n[3]));
    }

    #[test]
    fn shortest_path_on_chain() {
        let (g, n) = chain_graph();
        let t = Traversal::new(&g);
        let p = t.shortest_path(n[0], n[3]).unwrap();
        assert_eq!(p, vec![n[0], n[1], n[2], n[3]]);
        assert_eq!(t.shortest_path(n[0], n[0]).unwrap(), vec![n[0]]);
    }

    #[test]
    fn shortest_path_prefers_fewer_hops_with_both_direction() {
        let (g, n) = chain_graph();
        // Undirected: a-d are adjacent through the "back" edge.
        let t = Traversal::new(&g).direction(Direction::Both);
        let p = t.shortest_path(n[0], n[3]).unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = MetaGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let t = Traversal::new(&g);
        assert!(t.shortest_path(a, b).is_none());
    }

    #[test]
    fn pairwise_paths_skip_unreachable_pairs() {
        let mut g = MetaGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, "x", b);
        let t = Traversal::new(&g);
        let pairs = t.pairwise_paths(&[a, b, c]);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, a);
        assert_eq!(pairs[0].1, b);
    }

    #[test]
    fn visitor_can_prune_expansion() {
        let (g, n) = chain_graph();
        let t = Traversal::new(&g);
        let mut visited = Vec::new();
        t.visit(&[n[0]], |node, _| {
            visited.push(node);
            node != n[1] // do not expand below b
        });
        assert!(visited.contains(&n[1]));
        assert!(!visited.contains(&n[2]));
    }
}
