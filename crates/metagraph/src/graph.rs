//! The metadata graph itself: nodes identified by URIs, edges (triples) that
//! connect a subject node through a predicate to either another node or a text
//! label, plus the indexes needed for fast pattern matching and keyword lookup.

use std::collections::HashMap;
use std::fmt;

use crate::uri::{LabelId, PredId, SymbolTable};

/// Identifier of a node in the metadata graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// The object position of a triple: either another node or a text label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Object {
    /// A link to another node in the graph.
    Node(NodeId),
    /// A text label (e.g. a table name or a business term).
    Text(LabelId),
}

impl Object {
    /// Returns the node if this object is a node link.
    pub fn as_node(self) -> Option<NodeId> {
        match self {
            Object::Node(n) => Some(n),
            Object::Text(_) => None,
        }
    }

    /// Returns the label if this object is a text label.
    pub fn as_text(self) -> Option<LabelId> {
        match self {
            Object::Text(l) => Some(l),
            Object::Node(_) => None,
        }
    }
}

/// A fully resolved edge of the graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// The subject node of the triple.
    pub subject: NodeId,
    /// The predicate (edge URI).
    pub predicate: PredId,
    /// The object: another node or a text label.
    pub object: Object,
}

/// An in-memory RDF-like metadata graph.
///
/// Nodes, predicates and labels are interned.  The graph maintains outgoing
/// and incoming adjacency lists as well as a label index used by the SODA
/// lookup step to find entry points by keyword.
#[derive(Debug, Default, Clone)]
pub struct MetaGraph {
    node_uris: SymbolTable,
    predicates: SymbolTable,
    labels: SymbolTable,
    /// Outgoing edges per node (indexed by `NodeId`).
    outgoing: Vec<Vec<(PredId, Object)>>,
    /// Incoming node-to-node edges per node (indexed by `NodeId`).
    incoming: Vec<Vec<(PredId, NodeId)>>,
    /// Label index: label → all `(subject, predicate)` pairs carrying it.
    label_index: HashMap<LabelId, Vec<(NodeId, PredId)>>,
    edge_count: usize,
}

impl MetaGraph {
    /// Creates an empty metadata graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node with the given URI, or returns the existing node when the
    /// URI was added before.
    pub fn add_node(&mut self, uri: &str) -> NodeId {
        if let Some(id) = self.node_uris.get(uri) {
            return NodeId(id);
        }
        let id = self.node_uris.intern(uri);
        debug_assert_eq!(id as usize, self.outgoing.len());
        self.outgoing.push(Vec::new());
        self.incoming.push(Vec::new());
        NodeId(id)
    }

    /// Looks up a node by URI without creating it.
    pub fn node(&self, uri: &str) -> Option<NodeId> {
        self.node_uris.get(uri).map(NodeId)
    }

    /// Returns the URI of a node.
    pub fn uri(&self, node: NodeId) -> &str {
        self.node_uris.resolve(node.0)
    }

    /// Interns a predicate URI.
    pub fn predicate(&mut self, uri: &str) -> PredId {
        PredId(self.predicates.intern(uri))
    }

    /// Looks up a predicate without creating it.
    pub fn find_predicate(&self, uri: &str) -> Option<PredId> {
        self.predicates.get(uri).map(PredId)
    }

    /// Returns the URI of a predicate.
    pub fn predicate_uri(&self, pred: PredId) -> &str {
        self.predicates.resolve(pred.0)
    }

    /// Interns a text label.
    pub fn label(&mut self, text: &str) -> LabelId {
        LabelId(self.labels.intern(text))
    }

    /// Looks up a text label without creating it.
    pub fn find_label(&self, text: &str) -> Option<LabelId> {
        self.labels.get(text).map(LabelId)
    }

    /// Returns the text of a label.
    pub fn label_text(&self, label: LabelId) -> &str {
        self.labels.resolve(label.0)
    }

    /// Adds a node-to-node edge `subject --predicate--> object`.
    pub fn add_edge(&mut self, subject: NodeId, predicate: &str, object: NodeId) -> Edge {
        let pred = self.predicate(predicate);
        self.outgoing[subject.index()].push((pred, Object::Node(object)));
        self.incoming[object.index()].push((pred, subject));
        self.edge_count += 1;
        Edge {
            subject,
            predicate: pred,
            object: Object::Node(object),
        }
    }

    /// Adds a node-to-text edge `subject --predicate--> "text"`.
    pub fn add_text_edge(&mut self, subject: NodeId, predicate: &str, text: &str) -> Edge {
        let pred = self.predicate(predicate);
        let label = self.label(text);
        self.outgoing[subject.index()].push((pred, Object::Text(label)));
        self.label_index
            .entry(label)
            .or_default()
            .push((subject, pred));
        self.edge_count += 1;
        Edge {
            subject,
            predicate: pred,
            object: Object::Text(label),
        }
    }

    /// Number of nodes in the graph.
    pub fn node_count(&self) -> usize {
        self.outgoing.len()
    }

    /// Number of edges (both node and text edges) in the graph.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.outgoing.len() as u32).map(NodeId)
    }

    /// Outgoing edges of a node.
    pub fn outgoing(&self, node: NodeId) -> &[(PredId, Object)] {
        &self.outgoing[node.index()]
    }

    /// Incoming node-to-node edges of a node.
    pub fn incoming(&self, node: NodeId) -> &[(PredId, NodeId)] {
        &self.incoming[node.index()]
    }

    /// All `(subject, predicate)` pairs that carry the given text label.
    pub fn nodes_with_label(&self, text: &str) -> Vec<(NodeId, PredId)> {
        match self.find_label(text) {
            Some(l) => self.label_index.get(&l).cloned().unwrap_or_default(),
            None => Vec::new(),
        }
    }

    /// Returns the first text label attached to `node` through `predicate`.
    pub fn text_of(&self, node: NodeId, predicate: &str) -> Option<&str> {
        let pred = self.find_predicate(predicate)?;
        self.outgoing(node).iter().find_map(|(p, o)| {
            if *p == pred {
                o.as_text().map(|l| self.label_text(l))
            } else {
                None
            }
        })
    }

    /// Returns all node objects reachable from `node` through `predicate`.
    pub fn objects_of(&self, node: NodeId, predicate: &str) -> Vec<NodeId> {
        let Some(pred) = self.find_predicate(predicate) else {
            return Vec::new();
        };
        self.outgoing(node)
            .iter()
            .filter_map(|(p, o)| if *p == pred { o.as_node() } else { None })
            .collect()
    }

    /// Returns all subjects that point to `node` through `predicate`.
    pub fn subjects_of(&self, node: NodeId, predicate: &str) -> Vec<NodeId> {
        let Some(pred) = self.find_predicate(predicate) else {
            return Vec::new();
        };
        self.incoming(node)
            .iter()
            .filter_map(|(p, s)| if *p == pred { Some(*s) } else { None })
            .collect()
    }

    /// True if `node` has a `type` edge to a node whose URI equals `type_uri`.
    ///
    /// This is such a common test in SODA's graph patterns that it deserves a
    /// shortcut.
    pub fn has_type(&self, node: NodeId, type_uri: &str) -> bool {
        let Some(type_node) = self.node(type_uri) else {
            return false;
        };
        self.objects_of(node, "type").contains(&type_node)
    }

    /// Iterates over every text label in the graph together with the nodes it
    /// is attached to.  Used to build the SODA classification index.
    pub fn all_labels(&self) -> impl Iterator<Item = (&str, &[(NodeId, PredId)])> {
        self.label_index
            .iter()
            .map(|(l, v)| (self.labels.resolve(l.0), v.as_slice()))
    }

    /// Approximate memory footprint report used by the experiments (the paper
    /// reports a 37 MB schema graph; our synthetic graph is far smaller).
    pub fn size_report(&self) -> GraphSize {
        GraphSize {
            nodes: self.node_count(),
            edges: self.edge_count(),
            labels: self.labels.len(),
            predicates: self.predicates.len(),
        }
    }
}

/// A summary of the graph size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct GraphSize {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges (node and text edges).
    pub edges: usize,
    /// Number of distinct text labels.
    pub labels: usize,
    /// Number of distinct predicates.
    pub predicates: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> (MetaGraph, NodeId, NodeId, NodeId) {
        let mut g = MetaGraph::new();
        let table = g.add_node("phys/parties");
        let col = g.add_node("phys/parties/id");
        let ttype = g.add_node("physical_table");
        g.add_edge(table, "type", ttype);
        g.add_edge(table, "column", col);
        g.add_text_edge(table, "tablename", "parties");
        g.add_text_edge(col, "columnname", "id");
        (g, table, col, ttype)
    }

    #[test]
    fn add_node_is_idempotent() {
        let mut g = MetaGraph::new();
        let a = g.add_node("x");
        let b = g.add_node("x");
        assert_eq!(a, b);
        assert_eq!(g.node_count(), 1);
    }

    #[test]
    fn node_lookup_by_uri() {
        let (g, table, ..) = tiny_graph();
        assert_eq!(g.node("phys/parties"), Some(table));
        assert_eq!(g.node("missing"), None);
        assert_eq!(g.uri(table), "phys/parties");
    }

    #[test]
    fn outgoing_and_incoming_adjacency() {
        let (g, table, col, ttype) = tiny_graph();
        assert_eq!(g.outgoing(table).len(), 3);
        assert_eq!(g.incoming(col).len(), 1);
        assert_eq!(g.incoming(ttype).len(), 1);
        assert_eq!(g.objects_of(table, "column"), vec![col]);
        assert_eq!(g.subjects_of(col, "column"), vec![table]);
    }

    #[test]
    fn text_edges_and_label_index() {
        let (g, table, col, _) = tiny_graph();
        assert_eq!(g.text_of(table, "tablename"), Some("parties"));
        assert_eq!(g.text_of(col, "columnname"), Some("id"));
        assert_eq!(g.text_of(col, "tablename"), None);
        let hits = g.nodes_with_label("parties");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, table);
        assert!(g.nodes_with_label("nope").is_empty());
    }

    #[test]
    fn has_type_shortcut() {
        let (g, table, col, _) = tiny_graph();
        assert!(g.has_type(table, "physical_table"));
        assert!(!g.has_type(col, "physical_table"));
        assert!(!g.has_type(table, "never_created_type"));
    }

    #[test]
    fn size_report_counts() {
        let (g, ..) = tiny_graph();
        let s = g.size_report();
        assert_eq!(s.nodes, 3);
        assert_eq!(s.edges, 4);
        assert_eq!(s.labels, 2);
    }

    #[test]
    fn all_labels_enumerates_every_text_label() {
        let (g, ..) = tiny_graph();
        let mut labels: Vec<_> = g.all_labels().map(|(t, _)| t.to_string()).collect();
        labels.sort();
        assert_eq!(labels, vec!["id", "parties"]);
    }
}
