//! The pattern matcher.
//!
//! To match a pattern on a given graph, the anchor variable (`x` by
//! convention) is assigned to the node being tested and each triple of the
//! pattern is matched against the graph, with variables keeping their
//! assignment within one match (§4.2.1).  References to other named patterns
//! (`matches-column`) are resolved through a [`PatternRegistry`].

use std::collections::HashMap;

use crate::graph::{MetaGraph, NodeId, Object};
use crate::pattern::{Pattern, PatternItem, Term, TriplePattern};

/// A value a pattern variable can be bound to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundValue {
    /// Binding to a graph node.
    Node(NodeId),
    /// Binding to a text label.
    Text(String),
}

/// One successful assignment of pattern variables.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Binding {
    vars: HashMap<String, BoundValue>,
}

impl Binding {
    /// Returns the node bound to `var`, if any.
    pub fn node(&self, var: &str) -> Option<NodeId> {
        match self.vars.get(var) {
            Some(BoundValue::Node(n)) => Some(*n),
            _ => None,
        }
    }

    /// Returns the text bound to `var`, if any.
    pub fn text(&self, var: &str) -> Option<&str> {
        match self.vars.get(var) {
            Some(BoundValue::Text(t)) => Some(t.as_str()),
            _ => None,
        }
    }

    /// Returns the raw bound value of `var`.
    pub fn get(&self, var: &str) -> Option<&BoundValue> {
        self.vars.get(var)
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    fn bind(&mut self, var: &str, value: BoundValue) -> bool {
        match self.vars.get(var) {
            Some(existing) => *existing == value,
            None => {
                self.vars.insert(var.to_string(), value);
                true
            }
        }
    }
}

/// Registry of named patterns, used to resolve `matches-<name>` references.
#[derive(Debug, Default, Clone)]
pub struct PatternRegistry {
    patterns: HashMap<String, Pattern>,
}

impl PatternRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a pattern under its own name, replacing any previous pattern
    /// with the same name.
    pub fn register(&mut self, pattern: Pattern) {
        self.patterns.insert(pattern.name.clone(), pattern);
    }

    /// Looks up a pattern by name.
    pub fn get(&self, name: &str) -> Option<&Pattern> {
        self.patterns.get(name)
    }

    /// Names of all registered patterns.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.patterns.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Number of registered patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

/// Matches patterns against a [`MetaGraph`].
pub struct Matcher<'a> {
    graph: &'a MetaGraph,
    registry: &'a PatternRegistry,
    /// Safety valve against pathological patterns (deep reference chains).
    max_reference_depth: usize,
}

impl<'a> Matcher<'a> {
    /// Creates a matcher over `graph` resolving references in `registry`.
    pub fn new(graph: &'a MetaGraph, registry: &'a PatternRegistry) -> Self {
        Self {
            graph,
            registry,
            max_reference_depth: 8,
        }
    }

    /// Overrides the maximum `matches-` reference nesting depth (default 8).
    pub fn with_max_reference_depth(mut self, depth: usize) -> Self {
        self.max_reference_depth = depth;
        self
    }

    /// Tests `pattern` with its anchor bound to `node`; returns every distinct
    /// variable assignment that satisfies all conjuncts.
    pub fn match_at(&self, pattern: &Pattern, node: NodeId) -> Vec<Binding> {
        let mut binding = Binding::default();
        binding.bind(&pattern.anchor, BoundValue::Node(node));
        let mut results = Vec::new();
        self.solve(&pattern.items, binding, 0, &mut results);
        results.dedup();
        results
    }

    /// True if the pattern matches at `node` with at least one assignment.
    pub fn matches(&self, pattern: &Pattern, node: NodeId) -> bool {
        !self.match_at(pattern, node).is_empty()
    }

    /// Tries every node of the graph as the anchor; returns `(node, binding)`
    /// pairs for every match.  Used by experiments and tests; the SODA
    /// pipeline itself only tests patterns at nodes reached by traversal.
    pub fn match_all(&self, pattern: &Pattern) -> Vec<(NodeId, Binding)> {
        let mut out = Vec::new();
        for node in self.graph.nodes() {
            for b in self.match_at(pattern, node) {
                out.push((node, b));
            }
        }
        out
    }

    fn solve(
        &self,
        remaining: &[PatternItem],
        binding: Binding,
        depth: usize,
        results: &mut Vec<Binding>,
    ) {
        // Pick the next item to process: prefer one whose subject is already
        // bound (or a static URI) to keep the search space small.
        let Some(pos) = self.pick_item(remaining, &binding) else {
            results.push(binding);
            return;
        };
        let item = &remaining[pos];
        let mut rest: Vec<PatternItem> = Vec::with_capacity(remaining.len() - 1);
        rest.extend_from_slice(&remaining[..pos]);
        rest.extend_from_slice(&remaining[pos + 1..]);

        match item {
            PatternItem::Triple(t) => {
                for next in self.match_triple(t, &binding) {
                    self.solve(&rest, next, depth, results);
                }
            }
            PatternItem::Reference { var, pattern: name } => {
                if depth >= self.max_reference_depth {
                    return;
                }
                let Some(sub) = self.registry.get(name) else {
                    return;
                };
                let anchors: Vec<NodeId> = match var {
                    Term::Var(v) => match binding.node(v) {
                        Some(n) => vec![n],
                        None => self.graph.nodes().collect(),
                    },
                    Term::Uri(u) => match self.graph.node(u) {
                        Some(n) => vec![n],
                        None => vec![],
                    },
                    _ => vec![],
                };
                for anchor in anchors {
                    // The sub-pattern's own variables are scoped to the
                    // sub-match; only the anchor binding is shared.
                    let mut sub_binding = Binding::default();
                    sub_binding.bind(&sub.anchor, BoundValue::Node(anchor));
                    let mut sub_results = Vec::new();
                    self.solve(&sub.items, sub_binding, depth + 1, &mut sub_results);
                    if !sub_results.is_empty() {
                        let mut next = binding.clone();
                        if let Term::Var(v) = var {
                            if !next.bind(v, BoundValue::Node(anchor)) {
                                continue;
                            }
                        }
                        self.solve(&rest, next, depth, results);
                    }
                }
            }
        }
    }

    fn pick_item(&self, items: &[PatternItem], binding: &Binding) -> Option<usize> {
        if items.is_empty() {
            return None;
        }
        let is_grounded = |t: &Term| match t {
            Term::Var(v) | Term::TextVar(v) => binding.get(v).is_some(),
            Term::Uri(_) | Term::TextLit(_) => true,
        };
        let best = items.iter().position(|item| match item {
            PatternItem::Triple(t) => is_grounded(&t.subject) || is_grounded(&t.object),
            PatternItem::Reference { var, .. } => is_grounded(var),
        });
        Some(best.unwrap_or(0))
    }

    /// Enumerates every extension of `binding` that satisfies the triple.
    fn match_triple(&self, t: &TriplePattern, binding: &Binding) -> Vec<Binding> {
        let Some(pred) = self.graph.find_predicate(&t.predicate) else {
            return Vec::new();
        };
        let mut out = Vec::new();

        // Resolve candidate subjects.
        let subjects: Vec<NodeId> = match &t.subject {
            Term::Var(v) => match binding.node(v) {
                Some(n) => vec![n],
                None => self.subjects_from_object(t, binding, pred),
            },
            Term::Uri(u) => match self.graph.node(u) {
                Some(n) => vec![n],
                None => return Vec::new(),
            },
            Term::TextVar(_) | Term::TextLit(_) => return Vec::new(),
        };

        for s in subjects {
            for (p, obj) in self.graph.outgoing(s) {
                if *p != pred {
                    continue;
                }
                let mut next = binding.clone();
                let subject_ok = match &t.subject {
                    Term::Var(v) => next.bind(v, BoundValue::Node(s)),
                    _ => true,
                };
                if !subject_ok {
                    continue;
                }
                let object_ok = match (&t.object, obj) {
                    (Term::Var(v), Object::Node(n)) => next.bind(v, BoundValue::Node(*n)),
                    (Term::Uri(u), Object::Node(n)) => self.graph.node(u) == Some(*n),
                    (Term::TextVar(v), Object::Text(l)) => {
                        next.bind(v, BoundValue::Text(self.graph.label_text(*l).to_string()))
                    }
                    (Term::TextLit(lit), Object::Text(l)) => self.graph.label_text(*l) == lit,
                    _ => false,
                };
                if object_ok {
                    out.push(next);
                }
            }
        }
        out
    }

    /// When the subject is an unbound variable, try to narrow candidates using
    /// the object; fall back to all nodes.
    fn subjects_from_object(
        &self,
        t: &TriplePattern,
        binding: &Binding,
        pred: crate::uri::PredId,
    ) -> Vec<NodeId> {
        match &t.object {
            Term::Var(v) => {
                if let Some(obj) = binding.node(v) {
                    return self
                        .graph
                        .incoming(obj)
                        .iter()
                        .filter_map(|(p, s)| if *p == pred { Some(*s) } else { None })
                        .collect();
                }
                self.graph.nodes().collect()
            }
            Term::Uri(u) => match self.graph.node(u) {
                Some(obj) => self
                    .graph
                    .incoming(obj)
                    .iter()
                    .filter_map(|(p, s)| if *p == pred { Some(*s) } else { None })
                    .collect(),
                None => Vec::new(),
            },
            Term::TextLit(lit) => self
                .graph
                .nodes_with_label(lit)
                .into_iter()
                .filter_map(|(s, p)| if p == pred { Some(s) } else { None })
                .collect(),
            Term::TextVar(v) => {
                if let Some(text) = binding.text(v).map(|s| s.to_string()) {
                    self.graph
                        .nodes_with_label(&text)
                        .into_iter()
                        .filter_map(|(s, p)| if p == pred { Some(s) } else { None })
                        .collect()
                } else {
                    self.graph.nodes().collect()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Pattern;

    /// Builds the small physical-schema graph used by the paper's examples:
    /// two tables with columns, a foreign key and an inheritance node.
    fn sample_graph() -> MetaGraph {
        let mut g = MetaGraph::new();

        let parties = g.add_node("phys/parties");
        let individuals = g.add_node("phys/individuals");
        let organizations = g.add_node("phys/organizations");
        let t_table = g.add_node("physical_table");
        let t_column = g.add_node("physical_column");
        let t_inherit = g.add_node("inheritance_node");

        for (table, name) in [
            (parties, "parties"),
            (individuals, "individuals"),
            (organizations, "organizations"),
        ] {
            g.add_edge(table, "type", t_table);
            g.add_text_edge(table, "tablename", name);
        }

        let parties_id = g.add_node("phys/parties/id");
        let individuals_id = g.add_node("phys/individuals/id");
        let individuals_name = g.add_node("phys/individuals/firstname");
        for (col, name) in [
            (parties_id, "id"),
            (individuals_id, "id"),
            (individuals_name, "firstname"),
        ] {
            g.add_edge(col, "type", t_column);
            g.add_text_edge(col, "columnname", name);
        }
        g.add_edge(parties, "column", parties_id);
        g.add_edge(individuals, "column", individuals_id);
        g.add_edge(individuals, "column", individuals_name);

        // Foreign key: individuals.id -> parties.id
        g.add_edge(individuals_id, "foreign_key", parties_id);

        // Inheritance node: parties is the parent, individuals/organizations children.
        let inh = g.add_node("inh/parties");
        g.add_edge(inh, "type", t_inherit);
        g.add_edge(inh, "inheritance_parent", parties);
        g.add_edge(inh, "inheritance_child", individuals);
        g.add_edge(inh, "inheritance_child", organizations);

        g
    }

    fn registry_with_basics() -> PatternRegistry {
        let mut r = PatternRegistry::new();
        r.register(
            Pattern::parse("table", "( x tablename t:y ) & ( x type physical_table )").unwrap(),
        );
        r.register(
            Pattern::parse(
                "column",
                "( x columnname t:y ) & ( x type physical_column ) & ( z column x )",
            )
            .unwrap(),
        );
        r.register(
            Pattern::parse(
                "foreign_key",
                "( x foreign_key y ) & ( x matches-column ) & ( y matches-column )",
            )
            .unwrap(),
        );
        r.register(
            Pattern::parse(
                "inheritance_child",
                "( y inheritance_child x ) & ( y type inheritance_node ) & \
                 ( y inheritance_parent p ) & ( y inheritance_child c1 ) & ( y inheritance_child c2 )",
            )
            .unwrap(),
        );
        r
    }

    #[test]
    fn table_pattern_matches_tables_only() {
        let g = sample_graph();
        let r = registry_with_basics();
        let m = Matcher::new(&g, &r);
        let table_p = r.get("table").unwrap();
        let parties = g.node("phys/parties").unwrap();
        let col = g.node("phys/individuals/firstname").unwrap();

        let matches = m.match_at(table_p, parties);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].text("y"), Some("parties"));
        assert!(!m.matches(table_p, col));
    }

    #[test]
    fn column_pattern_requires_incoming_column_edge() {
        let g = sample_graph();
        let r = registry_with_basics();
        let m = Matcher::new(&g, &r);
        let column_p = r.get("column").unwrap();
        let col = g.node("phys/individuals/firstname").unwrap();
        let table = g.node("phys/parties").unwrap();

        let matches = m.match_at(column_p, col);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].text("y"), Some("firstname"));
        assert_eq!(matches[0].node("z"), g.node("phys/individuals"));
        assert!(!m.matches(column_p, table));
    }

    #[test]
    fn foreign_key_pattern_uses_references() {
        let g = sample_graph();
        let r = registry_with_basics();
        let m = Matcher::new(&g, &r);
        let fk = r.get("foreign_key").unwrap();
        let ind_id = g.node("phys/individuals/id").unwrap();
        let parties_id = g.node("phys/parties/id").unwrap();

        let matches = m.match_at(fk, ind_id);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].node("y"), Some(parties_id));
        // The reverse direction does not match.
        assert!(!m.matches(fk, parties_id));
    }

    #[test]
    fn inheritance_child_pattern_matches_both_children() {
        let g = sample_graph();
        let r = registry_with_basics();
        let m = Matcher::new(&g, &r);
        let inh = r.get("inheritance_child").unwrap();
        let individuals = g.node("phys/individuals").unwrap();
        let organizations = g.node("phys/organizations").unwrap();
        let parties = g.node("phys/parties").unwrap();

        let m1 = m.match_at(inh, individuals);
        assert!(!m1.is_empty());
        assert!(m1.iter().all(|b| b.node("p") == Some(parties)));
        assert!(m.matches(inh, organizations));
        assert!(!m.matches(inh, parties));
    }

    #[test]
    fn match_all_finds_every_table() {
        let g = sample_graph();
        let r = registry_with_basics();
        let m = Matcher::new(&g, &r);
        let table_p = r.get("table").unwrap();
        let all = m.match_all(table_p);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn unknown_predicate_or_uri_yields_no_match() {
        let g = sample_graph();
        let r = PatternRegistry::new();
        let m = Matcher::new(&g, &r);
        let p = Pattern::parse("p", "( x never_seen_predicate y )").unwrap();
        assert!(m.match_all(&p).is_empty());
        let p2 = Pattern::parse("p2", "( x type never_seen_type_uri )").unwrap();
        assert!(m.match_all(&p2).is_empty());
    }

    #[test]
    fn missing_reference_pattern_fails_gracefully() {
        let g = sample_graph();
        let r = PatternRegistry::new();
        let m = Matcher::new(&g, &r);
        let p = Pattern::parse("p", "( x foreign_key y ) & ( x matches-column )").unwrap();
        let ind_id = g.node("phys/individuals/id").unwrap();
        assert!(m.match_at(&p, ind_id).is_empty());
    }

    #[test]
    fn variable_consistency_within_a_match() {
        let mut g = MetaGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge(a, "knows", b);
        g.add_edge(b, "knows", c);
        g.add_edge(a, "likes", c);
        let r = PatternRegistry::new();
        let m = Matcher::new(&g, &r);
        // x knows y, x likes y: requires the same y; a knows b but likes c, so no match.
        let p = Pattern::parse("p", "( x knows y ) & ( x likes y )").unwrap();
        assert!(m.match_at(&p, a).is_empty());
        // x knows y, y knows z, x likes z: matches with y=b, z=c.
        let p2 = Pattern::parse("p2", "( x knows y ) & ( y knows z ) & ( x likes z )").unwrap();
        let matches = m.match_at(&p2, a);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].node("y"), Some(b));
        assert_eq!(matches[0].node("z"), Some(c));
    }

    #[test]
    fn text_literal_objects_filter_matches() {
        let g = sample_graph();
        let r = PatternRegistry::new();
        let m = Matcher::new(&g, &r);
        let p = Pattern::parse("named", "( x tablename t:\"parties\" )").unwrap();
        let all = m.match_all(&p);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0].0, g.node("phys/parties").unwrap());
    }

    #[test]
    fn registry_names_are_sorted() {
        let r = registry_with_basics();
        assert_eq!(
            r.names(),
            vec!["column", "foreign_key", "inheritance_child", "table"]
        );
        assert_eq!(r.len(), 4);
    }
}
