//! Property-based tests of the metadata-graph substrate: graph invariants,
//! pattern-parser round trips and traversal properties.

use proptest::prelude::*;

use soda_metagraph::{MetaGraph, Pattern, Traversal};

/// Strategy for small random graphs described as edge lists over `n` nodes.
fn graph_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, u8)>)> {
    (2usize..20).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n, 0u8..4), 0..60),
        )
    })
}

fn build_graph(n: usize, edges: &[(usize, usize, u8)]) -> MetaGraph {
    let mut g = MetaGraph::new();
    let nodes: Vec<_> = (0..n).map(|i| g.add_node(&format!("node/{i}"))).collect();
    for (a, b, p) in edges {
        g.add_edge(nodes[*a], &format!("pred{p}"), nodes[*b]);
    }
    g
}

proptest! {
    /// Adding the same URI twice never creates a second node, and every edge
    /// added is accounted for in the edge count and the adjacency lists.
    #[test]
    fn node_identity_and_edge_accounting((n, edges) in graph_strategy()) {
        let g = build_graph(n, &edges);
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), edges.len());
        let out_sum: usize = g.nodes().map(|x| g.outgoing(x).len()).sum();
        let in_sum: usize = g.nodes().map(|x| g.incoming(x).len()).sum();
        prop_assert_eq!(out_sum, edges.len());
        prop_assert_eq!(in_sum, edges.len());
    }

    /// Reachability is monotone in depth and never exceeds the node count; the
    /// start node is always reachable.
    #[test]
    fn traversal_reachability_is_monotone((n, edges) in graph_strategy(), depth in 0usize..6) {
        let g = build_graph(n, &edges);
        let start = g.node("node/0").unwrap();
        let shallow = Traversal::new(&g).max_depth(depth).reachable(&[start]);
        let deep = Traversal::new(&g).max_depth(depth + 2).reachable(&[start]);
        prop_assert!(shallow.len() <= deep.len());
        prop_assert!(deep.len() <= n);
        prop_assert!(shallow.contains(&start));
    }

    /// A shortest path, when it exists, starts at the source, ends at the
    /// target and every consecutive pair is connected by an edge (in either
    /// direction when traversing undirected).
    #[test]
    fn shortest_paths_are_valid((n, edges) in graph_strategy(), target in 0usize..20) {
        let g = build_graph(n, &edges);
        let from = g.node("node/0").unwrap();
        let to_idx = target % n;
        let to = g.node(&format!("node/{to_idx}")).unwrap();
        let t = Traversal::new(&g).max_depth(n);
        if let Some(path) = t.shortest_path(from, to) {
            prop_assert_eq!(*path.first().unwrap(), from);
            prop_assert_eq!(*path.last().unwrap(), to);
            for pair in path.windows(2) {
                let connected = g
                    .outgoing(pair[0])
                    .iter()
                    .any(|(_, o)| o.as_node() == Some(pair[1]));
                prop_assert!(connected, "consecutive path nodes must share an edge");
            }
        }
    }

    /// Pattern display → parse is a round trip for arbitrary simple patterns.
    #[test]
    fn pattern_display_parse_round_trip(
        preds in proptest::collection::vec("[a-z_]{1,12}", 1..5),
        use_text in proptest::collection::vec(any::<bool>(), 1..5),
    ) {
        let n = preds.len().min(use_text.len());
        let mut text = String::new();
        for i in 0..n {
            if i > 0 {
                text.push_str(" & ");
            }
            if use_text[i] {
                text.push_str(&format!("( x {} t:y )", preds[i]));
            } else {
                text.push_str(&format!("( x {} some_static_uri )", preds[i]));
            }
        }
        let parsed = Pattern::parse("p", &text).unwrap();
        let reparsed = Pattern::parse("p", &parsed.to_string()).unwrap();
        prop_assert_eq!(parsed.items, reparsed.items);
    }
}
