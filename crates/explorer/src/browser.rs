//! The interactive schema browser (war story §5.3.2, second and third user
//! groups): describe a table in business terms, list related entities, explain
//! join paths and search the metadata by substring.

use soda_core::{JoinCatalog, Provenance, SodaPatterns};
use soda_metagraph::builder::preds;
use soda_metagraph::{MetaGraph, NodeId};
use soda_relation::Database;

/// One column of a described table.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ColumnInfo {
    /// Physical column name.
    pub name: String,
    /// Data type, rendered as text.
    pub data_type: String,
    /// Whether the column is part of the primary key.
    pub primary_key: bool,
    /// The referenced table, when the column carries a foreign key.
    pub references: Option<String>,
}

/// A business-level description of one physical table, assembled from every
/// metadata layer that mentions it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct TableDescription {
    /// Physical table name.
    pub table: String,
    /// Free-form comment from the physical schema, if any.
    pub comment: Option<String>,
    /// Number of rows currently stored.
    pub rows: usize,
    /// Columns with type and key information.
    pub columns: Vec<ColumnInfo>,
    /// Logical entities implemented by this table.
    pub logical_entities: Vec<String>,
    /// Conceptual (business) entities refined by those logical entities.
    pub conceptual_entities: Vec<String>,
    /// Domain-ontology concepts classifying the table or one of its columns.
    pub ontology_concepts: Vec<String>,
    /// Inheritance super-type table, if the table is a sub-type.
    pub inheritance_parent: Option<String>,
    /// Inheritance sub-type tables, if the table is a super-type.
    pub inheritance_children: Vec<String>,
    /// Bridge tables attached to this table.
    pub bridges: Vec<String>,
    /// History table holding this table's bi-temporal history, when annotated.
    pub history_table: Option<String>,
    /// The current-state table this table historizes, when annotated.
    pub historizes: Option<String>,
}

/// How two tables are related.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum RelationKind {
    /// Direct foreign-key (or explicit join-node) relationship.
    ForeignKey,
    /// The related table is the inheritance super-type.
    InheritanceParent,
    /// The related table is an inheritance sub-type.
    InheritanceChild,
    /// The two tables are connected through a bridge table.
    Bridge,
    /// The related table historizes (or is historized by) this table.
    Historization,
}

/// One related table, with the relationship kind and the join condition or
/// intermediate table that realises it.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct Related {
    /// The related table.
    pub table: String,
    /// How it is related.
    pub kind: RelationKind,
    /// The join condition or bridge/annotation realising the relationship.
    pub via: String,
}

/// A metadata label matching a search term.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct MetadataHit {
    /// The matching label text.
    pub label: String,
    /// URI of the node carrying the label.
    pub uri: String,
    /// Which metadata layer the node belongs to.
    pub provenance: String,
}

/// The schema browser: read-only navigation over a warehouse's base data and
/// metadata graph.
pub struct SchemaBrowser<'a> {
    db: &'a Database,
    graph: &'a MetaGraph,
    joins: JoinCatalog,
}

impl<'a> SchemaBrowser<'a> {
    /// Builds a browser (pre-computing the join catalog with the default SODA
    /// patterns).
    pub fn new(db: &'a Database, graph: &'a MetaGraph) -> Self {
        let joins = JoinCatalog::build(graph, &SodaPatterns::default(), db);
        Self { db, graph, joins }
    }

    /// Builds a browser with custom metadata-graph patterns.
    pub fn with_patterns(db: &'a Database, graph: &'a MetaGraph, patterns: &SodaPatterns) -> Self {
        let joins = JoinCatalog::build(graph, patterns, db);
        Self { db, graph, joins }
    }

    /// The underlying join catalog.
    pub fn join_catalog(&self) -> &JoinCatalog {
        &self.joins
    }

    /// All physical table names, sorted.
    pub fn tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .db
            .table_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        names.sort();
        names
    }

    fn table_node(&self, table: &str) -> Option<NodeId> {
        self.graph.node(&format!("phys/{table}"))
    }

    fn name_of(&self, node: NodeId) -> String {
        self.graph
            .text_of(node, preds::NAME)
            .unwrap_or_else(|| self.graph.uri(node))
            .to_string()
    }

    /// Describes one physical table across every metadata layer.  Returns
    /// `None` when the table does not exist in the database.
    pub fn describe(&self, table: &str) -> Option<TableDescription> {
        let stored = self.db.table(table).ok()?;
        let schema = stored.schema();
        let columns = schema
            .columns
            .iter()
            .map(|c| ColumnInfo {
                name: c.name.clone(),
                data_type: c.data_type.to_string(),
                primary_key: schema.is_primary_key(&c.name),
                references: schema
                    .foreign_key_of(&c.name)
                    .map(|fk| fk.ref_table.clone()),
            })
            .collect();

        let mut logical_entities = Vec::new();
        let mut conceptual_entities = Vec::new();
        let mut ontology_concepts = Vec::new();
        if let Some(node) = self.table_node(&schema.name) {
            for logical in self.graph.subjects_of(node, preds::IMPLEMENTED_BY) {
                let name = self.name_of(logical);
                if !logical_entities.contains(&name) {
                    logical_entities.push(name);
                }
                for conceptual in self.graph.subjects_of(logical, preds::REFINED_BY) {
                    let name = self.name_of(conceptual);
                    if !conceptual_entities.contains(&name) {
                        conceptual_entities.push(name);
                    }
                }
            }
            // Ontology concepts classify the table itself or one of its columns.
            let mut classified_nodes = vec![node];
            classified_nodes.extend(self.graph.objects_of(node, preds::COLUMN));
            for target in classified_nodes {
                for concept in self.graph.subjects_of(target, preds::CLASSIFIES) {
                    let name = self.name_of(concept);
                    if !ontology_concepts.contains(&name) {
                        ontology_concepts.push(name);
                    }
                }
            }
        }

        let inheritance_parent = self
            .joins
            .parent_of(&schema.name)
            .map(|l| l.parent_table.clone());
        let inheritance_children: Vec<String> = self
            .joins
            .inheritance
            .iter()
            .filter(|l| l.parent_table.eq_ignore_ascii_case(&schema.name))
            .map(|l| l.child_table.clone())
            .collect();
        let bridges: Vec<String> = self
            .joins
            .bridges
            .iter()
            .filter(|b| {
                b.connects()
                    .iter()
                    .any(|t| t.eq_ignore_ascii_case(&schema.name))
            })
            .map(|b| b.table.clone())
            .collect();

        Some(TableDescription {
            table: schema.name.clone(),
            comment: schema.comment.clone(),
            rows: stored.row_count(),
            columns,
            logical_entities,
            conceptual_entities,
            ontology_concepts,
            inheritance_parent,
            inheritance_children,
            bridges,
            history_table: self
                .joins
                .history_of(&schema.name)
                .map(|l| l.hist_table.clone()),
            historizes: self
                .joins
                .historization_of(&schema.name)
                .map(|l| l.current_table.clone()),
        })
    }

    /// Tables directly related to `table`, with the relationship kind and the
    /// realising join condition, bridge or annotation.
    pub fn related(&self, table: &str) -> Vec<Related> {
        let mut out: Vec<Related> = Vec::new();
        let mut push = |related: Related| {
            if !out.contains(&related) {
                out.push(related);
            }
        };

        for edge in self.joins.edges_of(table) {
            if let Some(other) = edge.other(table) {
                push(Related {
                    table: other.to_string(),
                    kind: RelationKind::ForeignKey,
                    via: edge.condition(),
                });
            }
        }
        if let Some(link) = self.joins.parent_of(table) {
            push(Related {
                table: link.parent_table.clone(),
                kind: RelationKind::InheritanceParent,
                via: link
                    .join
                    .as_ref()
                    .map(|j| j.condition())
                    .unwrap_or_else(|| "inheritance".to_string()),
            });
        }
        for link in &self.joins.inheritance {
            if link.parent_table.eq_ignore_ascii_case(table) {
                push(Related {
                    table: link.child_table.clone(),
                    kind: RelationKind::InheritanceChild,
                    via: link
                        .join
                        .as_ref()
                        .map(|j| j.condition())
                        .unwrap_or_else(|| "inheritance".to_string()),
                });
            }
        }
        for bridge in &self.joins.bridges {
            let connects = bridge.connects();
            if connects.iter().any(|t| t.eq_ignore_ascii_case(table)) {
                for other in connects {
                    if !other.eq_ignore_ascii_case(table) {
                        push(Related {
                            table: other.to_string(),
                            kind: RelationKind::Bridge,
                            via: bridge.table.clone(),
                        });
                    }
                }
            }
        }
        if let Some(link) = self.joins.history_of(table) {
            push(Related {
                table: link.hist_table.clone(),
                kind: RelationKind::Historization,
                via: format!("{} .. {}", link.valid_from_column, link.valid_to_column),
            });
        }
        if let Some(link) = self.joins.historization_of(table) {
            push(Related {
                table: link.current_table.clone(),
                kind: RelationKind::Historization,
                via: format!("{} .. {}", link.valid_from_column, link.valid_to_column),
            });
        }
        out.sort_by(|a, b| a.table.cmp(&b.table).then(a.via.cmp(&b.via)));
        out
    }

    /// The shortest join path between two tables, rendered as one human
    /// readable line per join condition ("give me tables X and Y" — the users
    /// of §5.3.2 who do not want to write join conditions themselves).
    pub fn join_path_explained(&self, from: &str, to: &str) -> Option<Vec<String>> {
        let path = self.joins.path(from, to)?;
        Some(
            path.iter()
                .map(|edge| {
                    format!(
                        "join {} to {} on {}",
                        edge.fk_table,
                        edge.pk_table,
                        edge.condition()
                    )
                })
                .collect(),
        )
    }

    /// Case-insensitive substring search over every metadata label: the
    /// exploratory entry point ("where does this business term live?").
    pub fn search(&self, term: &str) -> Vec<MetadataHit> {
        let needle = term.to_lowercase();
        if needle.trim().is_empty() {
            return Vec::new();
        }
        let mut hits = Vec::new();
        for (label, holders) in self.graph.all_labels() {
            if !label.to_lowercase().contains(&needle) {
                continue;
            }
            for (node, _) in holders {
                let Some(provenance) = Provenance::of_node(self.graph, *node) else {
                    continue;
                };
                let hit = MetadataHit {
                    label: label.to_string(),
                    uri: self.graph.uri(*node).to_string(),
                    provenance: provenance.label().to_string(),
                };
                if !hits.contains(&hit) {
                    hits.push(hit);
                }
            }
        }
        hits.sort_by(|a, b| a.label.cmp(&b.label).then(a.uri.cmp(&b.uri)));
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_warehouse::enterprise::{self, EnterpriseConfig};
    use soda_warehouse::minibank;

    fn enterprise_browser_fixture() -> soda_warehouse::Warehouse {
        enterprise::build_with_historization(EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 0.1,
        })
    }

    #[test]
    fn describe_assembles_every_metadata_layer() {
        let w = minibank::build(42);
        let browser = SchemaBrowser::new(&w.database, &w.graph);
        let d = browser.describe("individuals").unwrap();
        assert_eq!(d.table, "individuals");
        assert!(d.rows > 0);
        assert!(d.columns.iter().any(|c| c.name == "salary"));
        assert!(d.columns.iter().any(|c| c.primary_key && c.name == "id"));
        assert!(d
            .columns
            .iter()
            .any(|c| c.references.as_deref() == Some("parties")));
        assert!(d.logical_entities.contains(&"individuals".to_string()));
        assert!(d
            .conceptual_entities
            .iter()
            .any(|e| e.contains("individuals")));
        assert!(d
            .ontology_concepts
            .iter()
            .any(|c| c.contains("private customers")));
        assert_eq!(d.inheritance_parent.as_deref(), Some("parties"));
        assert!(d.history_table.is_none());
        assert!(browser.describe("no_such_table").is_none());
    }

    #[test]
    fn describe_surfaces_inheritance_children_and_bridges() {
        let w = minibank::build(42);
        let browser = SchemaBrowser::new(&w.database, &w.graph);
        let parties = browser.describe("parties").unwrap();
        assert!(parties
            .inheritance_children
            .contains(&"individuals".to_string()));
        assert!(parties
            .inheritance_children
            .contains(&"organizations".to_string()));
        let fi = browser.describe("financial_instruments").unwrap();
        assert!(fi.bridges.contains(&"fi_contains_sec".to_string()));
    }

    #[test]
    fn describe_reports_historization_when_annotated() {
        let w = enterprise_browser_fixture();
        let browser = SchemaBrowser::new(&w.database, &w.graph);
        let individual = browser.describe("individual").unwrap();
        assert_eq!(
            individual.history_table.as_deref(),
            Some("individual_name_hist")
        );
        let hist = browser.describe("individual_name_hist").unwrap();
        assert_eq!(hist.historizes.as_deref(), Some("individual"));
    }

    #[test]
    fn related_lists_every_relationship_kind() {
        let w = enterprise_browser_fixture();
        let browser = SchemaBrowser::new(&w.database, &w.graph);
        let related = browser.related("individual");
        let kinds: Vec<RelationKind> = related.iter().map(|r| r.kind).collect();
        assert!(kinds.contains(&RelationKind::InheritanceParent));
        assert!(kinds.contains(&RelationKind::Bridge));
        assert!(kinds.contains(&RelationKind::Historization));
        assert!(related
            .iter()
            .any(|r| r.kind == RelationKind::Bridge && r.table == "organization"));
        assert!(related
            .iter()
            .any(|r| r.kind == RelationKind::ForeignKey && r.table == "party"));
    }

    #[test]
    fn join_paths_are_explained_step_by_step() {
        let w = enterprise_browser_fixture();
        let browser = SchemaBrowser::new(&w.database, &w.graph);
        let steps = browser
            .join_path_explained("trade_order_td", "party")
            .unwrap();
        assert_eq!(steps.len(), 3, "{steps:?}");
        assert!(steps[0].contains("trade_order_td"));
        assert!(steps.last().unwrap().contains("party"));
        assert!(browser
            .join_path_explained("party", "party")
            .unwrap()
            .is_empty());
        assert!(browser.join_path_explained("party", "missing").is_none());
    }

    #[test]
    fn metadata_search_finds_labels_across_layers() {
        let w = minibank::build(42);
        let browser = SchemaBrowser::new(&w.database, &w.graph);
        let hits = browser.search("customer");
        assert!(hits.iter().any(|h| h.provenance == "domain ontology"));
        assert!(hits.iter().any(|h| h.label.contains("customers")));
        // Substring match reaches schema layers too.
        let hits = browser.search("instrument");
        assert!(hits.iter().any(|h| h.provenance == "physical schema"));
        assert!(hits.iter().any(|h| h.provenance == "conceptual schema"));
        assert!(browser.search("   ").is_empty());
        assert!(browser.search("zzz-no-such-term").is_empty());
    }

    #[test]
    fn tables_lists_the_whole_catalog_sorted() {
        let w = minibank::build(42);
        let browser = SchemaBrowser::new(&w.database, &w.graph);
        let tables = browser.tables();
        assert_eq!(tables.len(), 10);
        let mut sorted = tables.clone();
        sorted.sort();
        assert_eq!(tables, sorted);
    }
}
