//! # soda-explorer
//!
//! Schema exploration and reverse engineering on top of the SODA metadata
//! graph.
//!
//! §5.3.2 of the paper reports that several user groups adopted SODA for
//! tasks other than query generation:
//!
//! * an **exploratory** group uses it "to analyze the schema and learn
//!   patterns in the schema in order to find out which entities are related
//!   with others" — the [`browser::SchemaBrowser`];
//! * a group that wants join paths spelled out ("give me tables X, Y and Z"
//!   without writing the join conditions) — [`browser::SchemaBrowser::join_path_explained`];
//! * a group that wants to **reverse engineer** legacy systems: derive the
//!   conceptual, logical and physical schema from an existing physical
//!   implementation, generate the RDF schema graph from it and then explore
//!   the legacy system through SODA — [`reverse::reverse_engineer`] and
//!   [`document::document_model`].
//!
//! The crate is deliberately read-only: it consumes a [`soda_relation::Database`]
//! and a [`soda_metagraph::MetaGraph`] (or just the database, for reverse
//! engineering) and produces descriptions, reports and a
//! [`soda_warehouse::SchemaModel`] that can be fed back into
//! [`soda_warehouse::build_graph`] to make a legacy system searchable.

pub mod browser;
pub mod document;
pub mod reverse;

pub use browser::{MetadataHit, Related, RelationKind, SchemaBrowser, TableDescription};
pub use document::document_model;
pub use reverse::{business_name, reverse_engineer};
