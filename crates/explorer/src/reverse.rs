//! Reverse engineering a multi-layer schema model from a physical-only
//! database (war story §5.3.2, fourth user group): "help document legacy
//! systems by reverse engineering the conceptual, logical and physical schema
//! based on the existing physical implementation … After the reverse
//! engineering is completed, the RDF schema graph can be generated and
//! annotated accordingly."
//!
//! The heuristics implemented here mirror the naming conventions the paper
//! describes for the Credit Suisse warehouse (§6.2): physical identifiers are
//! cryptic (`birth_dt`, suffix `_td` on entity tables, `_hist` on history
//! tables), so business names are derived by splitting identifiers, expanding
//! well-known abbreviations and dropping the technical suffixes.  The
//! resulting [`SchemaModel`] can be fed straight into
//! [`soda_warehouse::build_graph`] so that SODA can search a legacy system for
//! which no metadata exists.

use soda_relation::{Database, TableSchema};
use soda_warehouse::{
    ConceptualEntity, HistorizationLink, InheritanceGroup, LogicalEntity, Relationship,
    RelationshipKind, SchemaModel,
};

/// Expands a single identifier word into its business form (the abbreviation
/// conventions of §6.2: `dt` → date, `cd` → code, …).
fn expand_word(word: &str) -> &str {
    match word {
        "dt" => "date",
        "cd" => "code",
        "id" => "identifier",
        "nr" | "no" => "number",
        "amt" => "amount",
        "pct" => "percent",
        "td" => "",
        "hist" => "history",
        other => other,
    }
}

/// Derives a business name from a physical identifier: underscores split
/// words, well-known abbreviations are expanded and the technical `_td`
/// suffix is dropped (`trade_order_td` → "trade order", `birth_dt` →
/// "birth date").
pub fn business_name(identifier: &str) -> String {
    let words: Vec<String> = identifier
        .split(['_', ' ', '-'])
        .filter(|w| !w.is_empty())
        .map(|w| expand_word(&w.to_lowercase()).to_string())
        .filter(|w| !w.is_empty())
        .collect();
    words.join(" ")
}

/// True when the table looks like a bridge (physical N-to-N implementation):
/// foreign keys to at least two distinct tables and no identity of its own —
/// either no primary key at all, or a composite key made entirely of the
/// foreign-key columns.  Payload attributes on the bridge (e.g. an employment
/// `role`) are allowed.
fn is_bridge(schema: &TableSchema) -> bool {
    let mut targets: Vec<&str> = schema
        .foreign_keys
        .iter()
        .map(|fk| fk.ref_table.as_str())
        .collect();
    targets.sort_unstable();
    targets.dedup();
    if targets.len() < 2 {
        return false;
    }
    schema.primary_key.is_empty()
        || (schema.primary_key.len() >= 2
            && schema
                .primary_key
                .iter()
                .all(|pk| schema.foreign_key_of(pk).is_some()))
}

/// True when the table looks like a bi-temporal history table: its name ends
/// in `_hist` and it carries validity columns.
fn is_history(schema: &TableSchema) -> bool {
    schema.name.to_lowercase().ends_with("_hist")
        && schema.column("valid_from").is_some()
        && schema.column("valid_to").is_some()
}

/// The base table a history table most plausibly historizes: the longest
/// table name that prefixes the history table's name (so
/// `individual_name_hist` resolves to `individual` even when `individual_name`
/// does not exist).
fn history_base<'a>(schemas: &'a [TableSchema], hist: &TableSchema) -> Option<&'a TableSchema> {
    schemas
        .iter()
        .filter(|s| !s.name.eq_ignore_ascii_case(&hist.name))
        .filter(|s| {
            hist.name
                .to_lowercase()
                .starts_with(&format!("{}_", s.name.to_lowercase()))
        })
        .max_by_key(|s| s.name.len())
}

/// True when `child` looks like an inheritance sub-type of `parent`: its
/// single-column primary key is also a foreign key to `parent`'s primary key.
fn is_subtype_of(child: &TableSchema, parent_name: &str) -> bool {
    if child.primary_key.len() != 1 {
        return false;
    }
    let pk = &child.primary_key[0];
    child
        .foreign_key_of(pk)
        .map(|fk| fk.ref_table.eq_ignore_ascii_case(parent_name))
        .unwrap_or(false)
}

/// Reverse engineers a three-layer [`SchemaModel`] from a physical-only
/// database.
///
/// * **Physical layer** — the table schemas as stored.
/// * **Logical layer** — one entity per table, named by [`business_name`],
///   with business-named attributes.
/// * **Conceptual layer** — one entity per non-bridge, non-history table; a
///   history table and the sub-types of an inheritance group are folded into
///   the conceptual entity of their base / super-type table.
/// * **Inheritance** — tables whose primary key is a foreign key to another
///   table's primary key become sub-types of that table (grouped per parent,
///   kept only when a parent has at least two sub-types, matching the
///   mutually-exclusive inheritance pattern).
/// * **Historization** — `*_hist` tables with `valid_from`/`valid_to` columns
///   become [`HistorizationLink`]s to their base table.
/// * **Relationships** — foreign keys become N-to-1 relationships, bridge
///   tables N-to-N relationships, inheritance groups inheritance
///   relationships (at both the conceptual and the logical level).
pub fn reverse_engineer(db: &Database) -> SchemaModel {
    let physical: Vec<TableSchema> = {
        let mut schemas: Vec<TableSchema> = db.tables().map(|t| t.schema().clone()).collect();
        schemas.sort_by(|a, b| a.name.cmp(&b.name));
        schemas
    };

    // --- inheritance groups ----------------------------------------------------
    let mut inheritance: Vec<InheritanceGroup> = Vec::new();
    for parent in &physical {
        let children: Vec<String> = physical
            .iter()
            .filter(|c| !c.name.eq_ignore_ascii_case(&parent.name))
            .filter(|c| is_subtype_of(c, &parent.name))
            .map(|c| c.name.clone())
            .collect();
        if children.len() >= 2 {
            inheritance.push(InheritanceGroup {
                parent_table: parent.name.clone(),
                child_tables: children,
            });
        }
    }

    // --- historization links ----------------------------------------------------
    // When the history table carries the base table's primary-key column, the
    // (typically undeclared) historization join key is also recovered as a
    // foreign key so that the generated metadata graph can join the history
    // back to the current state.
    let mut historization: Vec<HistorizationLink> = Vec::new();
    let mut recovered_foreign_keys: Vec<soda_warehouse::AnnotatedForeignKey> = Vec::new();
    for hist in physical.iter().filter(|s| is_history(s)) {
        if let Some(base) = history_base(&physical, hist) {
            historization.push(HistorizationLink {
                hist_table: hist.name.clone(),
                current_table: base.name.clone(),
                valid_from_column: "valid_from".to_string(),
                valid_to_column: "valid_to".to_string(),
            });
            if base.primary_key.len() == 1 {
                let key = &base.primary_key[0];
                if hist.column(key).is_some() && hist.foreign_key_of(key).is_none() {
                    recovered_foreign_keys.push(soda_warehouse::AnnotatedForeignKey {
                        table: hist.name.clone(),
                        column: key.clone(),
                        ref_table: base.name.clone(),
                        ref_column: key.clone(),
                        annotated: true,
                        explicit_join_node: true,
                    });
                }
            }
        }
    }

    // --- logical layer ------------------------------------------------------------
    let logical: Vec<LogicalEntity> = physical
        .iter()
        .map(|schema| LogicalEntity {
            name: business_name(&schema.name),
            attributes: schema
                .columns
                .iter()
                .map(|c| business_name(&c.name))
                .collect(),
            implemented_by: vec![schema.name.clone()],
        })
        .collect();

    // --- conceptual layer -----------------------------------------------------------
    // Sub-types and history tables fold into the entity of their parent / base.
    let folded_into = |name: &str| -> Option<String> {
        if let Some(group) = inheritance
            .iter()
            .find(|g| g.child_tables.iter().any(|c| c.eq_ignore_ascii_case(name)))
        {
            return Some(group.parent_table.clone());
        }
        historization
            .iter()
            .find(|h| h.hist_table.eq_ignore_ascii_case(name))
            .map(|h| h.current_table.clone())
            .filter(|base| !base.eq_ignore_ascii_case(name))
    };

    let mut conceptual: Vec<ConceptualEntity> = Vec::new();
    for schema in &physical {
        if is_bridge(schema) || folded_into(&schema.name).is_some() {
            continue;
        }
        let mut refined_by = vec![business_name(&schema.name)];
        let mut attributes: Vec<String> = schema
            .columns
            .iter()
            .map(|c| business_name(&c.name))
            .collect();
        for other in &physical {
            if folded_into(&other.name)
                .map(|base| base.eq_ignore_ascii_case(&schema.name))
                .unwrap_or(false)
            {
                refined_by.push(business_name(&other.name));
                for column in &other.columns {
                    let attr = business_name(&column.name);
                    if !attributes.contains(&attr) {
                        attributes.push(attr);
                    }
                }
            }
        }
        conceptual.push(ConceptualEntity {
            name: business_name(&schema.name),
            attributes,
            refined_by,
        });
    }

    // --- relationships ---------------------------------------------------------------
    let mut logical_relationships: Vec<Relationship> = Vec::new();
    let mut conceptual_relationships: Vec<Relationship> = Vec::new();
    let conceptual_of = |table: &str| -> String {
        business_name(&folded_into(table).unwrap_or_else(|| table.to_string()))
    };
    let push_unique = |list: &mut Vec<Relationship>, rel: Relationship| {
        if rel.from != rel.to && !list.contains(&rel) {
            list.push(rel);
        }
    };
    for schema in &physical {
        for fk in &schema.foreign_keys {
            push_unique(
                &mut logical_relationships,
                Relationship {
                    from: business_name(&schema.name),
                    to: business_name(&fk.ref_table),
                    kind: RelationshipKind::ManyToOne,
                },
            );
            if !is_bridge(schema) {
                push_unique(
                    &mut conceptual_relationships,
                    Relationship {
                        from: conceptual_of(&schema.name),
                        to: conceptual_of(&fk.ref_table),
                        kind: RelationshipKind::ManyToOne,
                    },
                );
            }
        }
        if is_bridge(schema) {
            let targets: Vec<&str> = schema
                .foreign_keys
                .iter()
                .map(|fk| fk.ref_table.as_str())
                .collect();
            for i in 0..targets.len() {
                for j in (i + 1)..targets.len() {
                    push_unique(
                        &mut conceptual_relationships,
                        Relationship {
                            from: conceptual_of(targets[i]),
                            to: conceptual_of(targets[j]),
                            kind: RelationshipKind::ManyToMany,
                        },
                    );
                }
            }
        }
    }
    for group in &inheritance {
        for child in &group.child_tables {
            push_unique(
                &mut logical_relationships,
                Relationship {
                    from: business_name(&group.parent_table),
                    to: business_name(child),
                    kind: RelationshipKind::Inheritance,
                },
            );
        }
    }

    let mut model = SchemaModel {
        conceptual,
        conceptual_relationships,
        logical,
        logical_relationships,
        physical,
        foreign_keys: recovered_foreign_keys,
        inheritance,
        historization,
    };
    model.adopt_physical_foreign_keys();
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_warehouse::enterprise::{self, EnterpriseConfig};

    fn legacy_db() -> Database {
        // The enterprise warehouse's database, used *without* its metadata
        // graph: exactly the legacy-system situation of §5.3.2.
        enterprise::build_with(EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 0.1,
        })
        .database
    }

    #[test]
    fn business_names_follow_the_naming_conventions() {
        assert_eq!(business_name("trade_order_td"), "trade order");
        assert_eq!(business_name("birth_dt"), "birth date");
        assert_eq!(business_name("currency_cd"), "currency code");
        assert_eq!(
            business_name("individual_name_hist"),
            "individual name history"
        );
        assert_eq!(business_name("party_id"), "party identifier");
        assert_eq!(business_name("org_name"), "org name");
    }

    #[test]
    fn inheritance_and_bridges_are_recovered_from_keys() {
        let model = reverse_engineer(&legacy_db());
        let party = model
            .inheritance
            .iter()
            .find(|g| g.parent_table == "party")
            .expect("party inheritance recovered");
        assert!(party.child_tables.contains(&"individual".to_string()));
        assert!(party.child_tables.contains(&"organization".to_string()));
        assert!(model
            .conceptual_relationships
            .iter()
            .any(|r| r.kind == RelationshipKind::ManyToMany));
    }

    #[test]
    fn history_tables_become_historization_links() {
        let model = reverse_engineer(&legacy_db());
        let link = model
            .historization
            .iter()
            .find(|h| h.hist_table == "individual_name_hist")
            .expect("historization link recovered");
        assert_eq!(link.current_table, "individual");
        assert_eq!(link.valid_to_column, "valid_to");
        // The undeclared historization join key is recovered as an annotated
        // foreign key so the generated graph can join history to current state.
        assert!(model.foreign_keys.iter().any(|fk| {
            fk.table == "individual_name_hist"
                && fk.ref_table == "individual"
                && fk.annotated
                && fk.explicit_join_node
        }));
    }

    #[test]
    fn conceptual_layer_folds_subtypes_and_history_into_their_base_entity() {
        let model = reverse_engineer(&legacy_db());
        let names: Vec<&str> = model.conceptual.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"party"));
        // Sub-types and history tables do not surface as conceptual entities…
        assert!(!names.contains(&"individual"));
        assert!(!names.contains(&"individual name history"));
        // …but their attributes are folded into the base entity.
        let party = model.conceptual.iter().find(|e| e.name == "party").unwrap();
        assert!(party.refined_by.contains(&"individual".to_string()));
        assert!(party.attributes.iter().any(|a| a == "given name"));
        // Bridge tables do not become conceptual entities either.
        assert!(!names.contains(&"associate employment"));
    }

    proptest::proptest! {
        /// `business_name` is idempotent and never leaks separators: applying
        /// it twice gives the same result, and the output contains no
        /// underscores or double spaces for any identifier-like input.
        #[test]
        fn business_name_is_idempotent_and_clean(
            identifier in "[a-zA-Z][a-zA-Z0-9_]{0,30}"
        ) {
            let once = business_name(&identifier);
            proptest::prop_assert_eq!(business_name(&once), once.clone());
            proptest::prop_assert!(!once.contains('_'));
            proptest::prop_assert!(!once.contains("  "));
            proptest::prop_assert_eq!(once.clone(), once.to_lowercase());
        }
    }

    #[test]
    fn every_table_gets_a_logical_entity_and_stats_are_consistent() {
        let db = legacy_db();
        let model = reverse_engineer(&db);
        assert_eq!(model.logical.len(), db.table_count());
        assert_eq!(model.physical.len(), db.table_count());
        let stats = model.stats();
        assert_eq!(stats.physical_tables, db.table_count());
        assert_eq!(stats.logical_entities, db.table_count());
        assert!(stats.conceptual_entities < stats.logical_entities);
        assert!(
            !model.foreign_keys.is_empty(),
            "FKs adopted from the physical schemas"
        );
    }
}
