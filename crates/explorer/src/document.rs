//! Rendering a [`SchemaModel`] as human-readable documentation — the artefact
//! the fourth user group of §5.3.2 is after: legacy systems "where
//! documentation is very scarce or does not even exist".

use soda_warehouse::{RelationshipKind, SchemaModel};

/// Renders a Markdown documentation report for a schema model: summary
/// statistics, one section per conceptual entity (with its logical entities
/// and their physical implementations), inheritance groups, historization
/// annotations and the relationship list.
pub fn document_model(model: &SchemaModel) -> String {
    let stats = model.stats();
    let mut out = String::new();

    out.push_str("# Schema documentation\n\n");
    out.push_str("| Layer | Entities | Attributes | Relationships |\n");
    out.push_str("|---|---:|---:|---:|\n");
    out.push_str(&format!(
        "| Conceptual | {} | {} | {} |\n",
        stats.conceptual_entities, stats.conceptual_attributes, stats.conceptual_relationships
    ));
    out.push_str(&format!(
        "| Logical | {} | {} | {} |\n",
        stats.logical_entities, stats.logical_attributes, stats.logical_relationships
    ));
    out.push_str(&format!(
        "| Physical | {} | {} | {} |\n\n",
        stats.physical_tables,
        stats.physical_columns,
        model.foreign_keys.len()
    ));

    out.push_str("## Business entities\n\n");
    for entity in &model.conceptual {
        out.push_str(&format!("### {}\n\n", entity.name));
        if !entity.attributes.is_empty() {
            out.push_str(&format!("Attributes: {}\n\n", entity.attributes.join(", ")));
        }
        for logical_name in &entity.refined_by {
            let Some(logical) = model
                .logical
                .iter()
                .find(|l| l.name.eq_ignore_ascii_case(logical_name))
            else {
                continue;
            };
            for table_name in &logical.implemented_by {
                let Some(table) = model.physical_table(table_name) else {
                    continue;
                };
                out.push_str(&format!(
                    "* `{}` ({} columns) — logical entity *{}*",
                    table.name,
                    table.arity(),
                    logical.name
                ));
                if let Some(comment) = &table.comment {
                    out.push_str(&format!(" — {comment}"));
                }
                out.push('\n');
            }
        }
        out.push('\n');
    }

    if !model.inheritance.is_empty() {
        out.push_str("## Inheritance\n\n");
        for group in &model.inheritance {
            out.push_str(&format!(
                "* `{}` specialises into {}\n",
                group.parent_table,
                group
                    .child_tables
                    .iter()
                    .map(|c| format!("`{c}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push('\n');
    }

    if !model.historization.is_empty() {
        out.push_str("## Bi-temporal history\n\n");
        for link in &model.historization {
            out.push_str(&format!(
                "* `{}` historizes `{}` (validity `{}` .. `{}`)\n",
                link.hist_table, link.current_table, link.valid_from_column, link.valid_to_column
            ));
        }
        out.push('\n');
    }

    if !model.conceptual_relationships.is_empty() {
        out.push_str("## Relationships\n\n");
        for rel in &model.conceptual_relationships {
            let kind = match rel.kind {
                RelationshipKind::ManyToOne => "N-to-1",
                RelationshipKind::ManyToMany => "N-to-N",
                RelationshipKind::Inheritance => "inheritance",
            };
            out.push_str(&format!("* {} — {} — {}\n", rel.from, kind, rel.to));
        }
        out.push('\n');
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reverse::reverse_engineer;
    use soda_warehouse::enterprise::{self, EnterpriseConfig};
    use soda_warehouse::minibank;

    #[test]
    fn minibank_documentation_covers_all_layers() {
        let model = minibank::schema_model();
        let doc = document_model(&model);
        assert!(doc.contains("# Schema documentation"));
        assert!(doc.contains("| Physical | 10 |"));
        assert!(doc.contains("### Parties"));
        assert!(doc.contains("`individuals`"));
        assert!(doc.contains("## Inheritance"));
        assert!(doc.contains("`parties` specialises into"));
        assert!(doc.contains("N-to-N"));
    }

    #[test]
    fn reverse_engineered_documentation_mentions_history_and_subtypes() {
        let db = enterprise::build_with(EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 0.05,
        })
        .database;
        let doc = document_model(&reverse_engineer(&db));
        assert!(doc.contains("## Bi-temporal history"));
        assert!(doc.contains("`individual_name_hist` historizes `individual`"));
        assert!(doc.contains("`party` specialises into"));
    }
}
