//! The full legacy-system round trip of §5.3.2 (fourth user group): start
//! from a physical-only database, reverse engineer the conceptual / logical /
//! physical schema, generate the metadata graph from it, and explore the
//! legacy system through SODA — without any hand-written metadata.

use soda_core::{SodaConfig, SodaEngine};
use soda_explorer::{document_model, reverse_engineer, SchemaBrowser};
use soda_warehouse::enterprise::{self, EnterpriseConfig};
use soda_warehouse::{build_graph, DomainOntology, SynonymStore};

fn legacy_database() -> soda_relation::Database {
    // Only the base data of the enterprise warehouse is used; its hand-built
    // metadata graph is discarded to simulate an undocumented legacy system.
    enterprise::build_with(EnterpriseConfig {
        seed: 42,
        padding: false,
        data_scale: 0.15,
    })
    .database
}

#[test]
fn reverse_engineered_metadata_makes_the_legacy_system_searchable() {
    let db = legacy_database();
    let model = reverse_engineer(&db);
    let graph = build_graph(&model, &DomainOntology::new(), &SynonymStore::new());
    let engine = SodaEngine::new(&db, &graph, SodaConfig::default());

    // A base-data keyword works exactly as on the curated warehouse: "Sara"
    // is found through the inverted index and joined to the party super-type
    // through the recovered inheritance group.
    let results = engine.search("Sara").unwrap();
    assert!(!results.is_empty());
    let best = results
        .iter()
        .find(|r| r.tables.contains(&"individual".to_string()))
        .expect("an interpretation over the individual table");
    assert!(
        best.tables.contains(&"party".to_string()),
        "recovered inheritance must add the party super-type: {:?}",
        best.tables
    );
    let rows = engine.execute(best).unwrap().row_count();
    assert!(rows > 0);

    // A business-style phrase derived from the naming conventions also works:
    // "trade order" is the business name of trade_order_td.
    let results = engine.search("trade order amount > 40000").unwrap();
    assert!(!results.is_empty());
    let top = &results[0];
    assert!(
        top.tables.contains(&"trade_order_td".to_string()),
        "{:?}",
        top.tables
    );
    assert!(top.sql.contains("amount > 40000"), "{}", top.sql);
    assert!(engine.execute(top).unwrap().row_count() > 0);
}

#[test]
fn browser_and_documentation_work_on_the_reverse_engineered_graph() {
    let db = legacy_database();
    let model = reverse_engineer(&db);
    let graph = build_graph(&model, &DomainOntology::new(), &SynonymStore::new());

    let browser = SchemaBrowser::new(&db, &graph);
    let description = browser.describe("trade_order_td").unwrap();
    assert!(description
        .logical_entities
        .iter()
        .any(|e| e.contains("trade order")));
    assert!(description.columns.iter().any(|c| c.name == "amount"));
    let steps = browser
        .join_path_explained("trade_order_td", "party")
        .unwrap();
    assert!(!steps.is_empty());

    let doc = document_model(&model);
    assert!(doc.contains("trade order"));
    assert!(doc.contains("`party` specialises into"));
}
