//! The paper's running example: a mini-bank with customers that buy and sell
//! financial instruments (Section 2, Figures 1 and 2).
//!
//! The conceptual schema (Figure 1) has Parties (specialised into Individuals
//! and Organizations), Transactions and Financial Instruments.  The logical /
//! physical schema (Figure 2) splits addresses into their own table, splits
//! transactions into financial-instrument and money transactions, and adds the
//! `fi_contains_sec` bridge table for the N-to-N relationship between
//! financial instruments and securities.

use soda_relation::{DataType, Database, TableSchema, Value};

use crate::datagen::{
    DataGen, CITIES, COUNTRIES, CURRENCIES, FAMILY_NAMES, GIVEN_NAMES, LEGAL_FORMS, ORG_NAMES,
    PRODUCT_NAMES, PRODUCT_TYPES, STREETS,
};
use crate::dbpedia::{SynonymStore, SynonymTarget};
use crate::graph_builder::build_graph;
use crate::model::{
    ConceptualEntity, InheritanceGroup, LogicalEntity, Relationship, RelationshipKind, SchemaModel,
    Warehouse,
};
use crate::ontology::{ClassifyTarget, ConceptFilter, DomainOntology, OntologyConcept};

/// Number of individual customers generated.
pub const NUM_INDIVIDUALS: usize = 60;
/// Number of corporate customers generated.
pub const NUM_ORGANIZATIONS: usize = 20;
/// Number of financial instruments generated.
pub const NUM_INSTRUMENTS: usize = 25;
/// Number of securities generated.
pub const NUM_SECURITIES: usize = 40;
/// Number of transactions generated (financial-instrument plus money).
pub const NUM_TRANSACTIONS: usize = 300;

/// The physical schema of the mini-bank (Figure 2, lowered to tables).
pub fn physical_schema() -> Vec<TableSchema> {
    vec![
        TableSchema::builder("parties")
            .column("id", DataType::Int)
            .column("party_type", DataType::Text)
            .primary_key("id")
            .comment("customers of the bank")
            .build(),
        TableSchema::builder("individuals")
            .column("id", DataType::Int)
            .column("firstname", DataType::Text)
            .column("lastname", DataType::Text)
            .column("salary", DataType::Float)
            .column("birthday", DataType::Date)
            .primary_key("id")
            .foreign_key("id", "parties", "id")
            .comment("private banking customers")
            .build(),
        TableSchema::builder("organizations")
            .column("id", DataType::Int)
            .column("companyname", DataType::Text)
            .column("legal_form", DataType::Text)
            .primary_key("id")
            .foreign_key("id", "parties", "id")
            .comment("investment banking customers")
            .build(),
        TableSchema::builder("addresses")
            .column("address_id", DataType::Int)
            .column("party_id", DataType::Int)
            .column("street", DataType::Text)
            .column("city", DataType::Text)
            .column("country", DataType::Text)
            .primary_key("address_id")
            .foreign_key("party_id", "individuals", "id")
            .build(),
        TableSchema::builder("transactions")
            .column("id", DataType::Int)
            .column("toparty", DataType::Int)
            .column("transactiondate", DataType::Date)
            .primary_key("id")
            .foreign_key("toparty", "parties", "id")
            .build(),
        TableSchema::builder("fi_transactions")
            .column("id", DataType::Int)
            .column("instrument_id", DataType::Int)
            .column("amount", DataType::Float)
            .primary_key("id")
            .foreign_key("id", "transactions", "id")
            .foreign_key("instrument_id", "financial_instruments", "instrument_id")
            .build(),
        TableSchema::builder("money_transactions")
            .column("id", DataType::Int)
            .column("amount", DataType::Float)
            .column("currency", DataType::Text)
            .primary_key("id")
            .foreign_key("id", "transactions", "id")
            .build(),
        TableSchema::builder("financial_instruments")
            .column("instrument_id", DataType::Int)
            .column("name", DataType::Text)
            .column("instrument_type", DataType::Text)
            .column("issuer", DataType::Text)
            .primary_key("instrument_id")
            .build(),
        TableSchema::builder("securities")
            .column("security_id", DataType::Int)
            .column("name", DataType::Text)
            .column("isin", DataType::Text)
            .primary_key("security_id")
            .build(),
        TableSchema::builder("fi_contains_sec")
            .column("instrument_id", DataType::Int)
            .column("security_id", DataType::Int)
            .foreign_key("instrument_id", "financial_instruments", "instrument_id")
            .foreign_key("security_id", "securities", "security_id")
            .build(),
    ]
}

/// The three-layer schema model of the mini-bank.
pub fn schema_model() -> SchemaModel {
    let conceptual = vec![
        ConceptualEntity {
            name: "Parties".into(),
            attributes: vec!["name".into(), "domicile".into()],
            refined_by: vec![
                "Parties".into(),
                "Individuals".into(),
                "Organizations".into(),
            ],
        },
        ConceptualEntity {
            name: "Individuals".into(),
            attributes: vec![
                "first name".into(),
                "last name".into(),
                "salary".into(),
                "birthday".into(),
            ],
            refined_by: vec!["Individuals".into(), "Addresses".into()],
        },
        ConceptualEntity {
            name: "Organizations".into(),
            attributes: vec!["company name".into(), "legal form".into()],
            refined_by: vec!["Organizations".into()],
        },
        ConceptualEntity {
            name: "Transactions".into(),
            attributes: vec!["amount".into(), "transaction date".into()],
            refined_by: vec![
                "Transactions".into(),
                "Financial Instrument Transactions".into(),
                "Money Transactions".into(),
            ],
        },
        ConceptualEntity {
            name: "Financial Instruments".into(),
            attributes: vec!["name".into(), "type".into(), "issuer".into()],
            refined_by: vec!["Financial Instruments".into(), "Securities".into()],
        },
    ];
    let conceptual_relationships = vec![
        Relationship {
            from: "Parties".into(),
            to: "Transactions".into(),
            kind: RelationshipKind::ManyToMany,
        },
        Relationship {
            from: "Transactions".into(),
            to: "Financial Instruments".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Parties".into(),
            to: "Individuals".into(),
            kind: RelationshipKind::Inheritance,
        },
        Relationship {
            from: "Parties".into(),
            to: "Organizations".into(),
            kind: RelationshipKind::Inheritance,
        },
        Relationship {
            from: "Financial Instruments".into(),
            to: "Financial Instruments".into(),
            kind: RelationshipKind::ManyToMany,
        },
    ];
    let logical = vec![
        LogicalEntity {
            name: "Parties".into(),
            attributes: vec!["id".into(), "party type".into()],
            implemented_by: vec!["parties".into()],
        },
        LogicalEntity {
            name: "Individuals".into(),
            attributes: vec![
                "firstname".into(),
                "lastname".into(),
                "salary".into(),
                "birthday".into(),
            ],
            implemented_by: vec!["individuals".into()],
        },
        LogicalEntity {
            name: "Organizations".into(),
            attributes: vec!["companyname".into(), "legal form".into()],
            implemented_by: vec!["organizations".into()],
        },
        LogicalEntity {
            name: "Addresses".into(),
            attributes: vec!["street".into(), "city".into(), "country".into()],
            implemented_by: vec!["addresses".into()],
        },
        LogicalEntity {
            name: "Transactions".into(),
            attributes: vec!["transaction date".into()],
            implemented_by: vec!["transactions".into()],
        },
        LogicalEntity {
            name: "Financial Instrument Transactions".into(),
            attributes: vec!["amount".into(), "instrument".into()],
            implemented_by: vec!["fi_transactions".into()],
        },
        LogicalEntity {
            name: "Money Transactions".into(),
            attributes: vec!["amount".into(), "currency".into()],
            implemented_by: vec!["money_transactions".into()],
        },
        LogicalEntity {
            name: "Financial Instruments".into(),
            attributes: vec!["name".into(), "instrument type".into(), "issuer".into()],
            implemented_by: vec!["financial_instruments".into(), "fi_contains_sec".into()],
        },
        LogicalEntity {
            name: "Securities".into(),
            attributes: vec!["name".into(), "isin".into()],
            implemented_by: vec!["securities".into()],
        },
    ];
    let logical_relationships = vec![
        Relationship {
            from: "Individuals".into(),
            to: "Addresses".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Parties".into(),
            to: "Individuals".into(),
            kind: RelationshipKind::Inheritance,
        },
        Relationship {
            from: "Parties".into(),
            to: "Organizations".into(),
            kind: RelationshipKind::Inheritance,
        },
        Relationship {
            from: "Transactions".into(),
            to: "Financial Instrument Transactions".into(),
            kind: RelationshipKind::Inheritance,
        },
        Relationship {
            from: "Transactions".into(),
            to: "Money Transactions".into(),
            kind: RelationshipKind::Inheritance,
        },
        Relationship {
            from: "Financial Instruments".into(),
            to: "Securities".into(),
            kind: RelationshipKind::ManyToMany,
        },
    ];
    let inheritance = vec![
        InheritanceGroup {
            parent_table: "parties".into(),
            child_tables: vec!["individuals".into(), "organizations".into()],
        },
        InheritanceGroup {
            parent_table: "transactions".into(),
            child_tables: vec!["fi_transactions".into(), "money_transactions".into()],
        },
    ];
    let mut model = SchemaModel {
        conceptual,
        conceptual_relationships,
        logical,
        logical_relationships,
        physical: physical_schema(),
        foreign_keys: Vec::new(),
        inheritance,
        historization: Vec::new(),
    };
    model.adopt_physical_foreign_keys();
    model
}

/// The mini-bank domain ontology: customer classification, the "wealthy
/// customers" business term and "trading volume".
pub fn ontology() -> DomainOntology {
    let mut o = DomainOntology::new();
    o.add(
        OntologyConcept::new("customers", "customers")
            .alt("customer")
            .classifies(ClassifyTarget::Conceptual("Parties".into())),
    );
    o.add(
        OntologyConcept::new("private-customers", "private customers")
            .classifies(ClassifyTarget::Table("individuals".into())),
    );
    o.add(
        OntologyConcept::new("corporate-customers", "corporate customers")
            .classifies(ClassifyTarget::Table("organizations".into())),
    );
    o.add(
        OntologyConcept::new("wealthy-customers", "wealthy customers")
            .alt("wealthy individuals")
            .classifies(ClassifyTarget::Table("individuals".into()))
            .with_filter(ConceptFilter {
                table: "individuals".into(),
                column: "salary".into(),
                op: ">=".into(),
                value: "500000".into(),
            }),
    );
    o.add(
        OntologyConcept::new("trading-volume", "trading volume").classifies(
            ClassifyTarget::Column {
                table: "fi_transactions".into(),
                column: "amount".into(),
            },
        ),
    );
    o.add(
        OntologyConcept::new("names", "names")
            .alt("name")
            .classifies(ClassifyTarget::Column {
                table: "individuals".into(),
                column: "lastname".into(),
            })
            .classifies(ClassifyTarget::Column {
                table: "organizations".into(),
                column: "companyname".into(),
            }),
    );
    o
}

/// The curated DBpedia extract for the mini-bank (§2.2: only entries with a
/// direct connection to schema terms are kept).
pub fn synonyms() -> SynonymStore {
    let mut s = SynonymStore::new();
    s.add("client", SynonymTarget::Concept("customers".into()));
    s.add("purchaser", SynonymTarget::Concept("customers".into()));
    s.add(
        "political organization",
        SynonymTarget::Conceptual("Parties".into()),
    );
    s.add("company", SynonymTarget::Table("organizations".into()));
    s.add("firm", SynonymTarget::Table("organizations".into()));
    s.add("person", SynonymTarget::Table("individuals".into()));
    s.add(
        "stock",
        SynonymTarget::Conceptual("Financial Instruments".into()),
    );
    s.add(
        "share",
        SynonymTarget::Conceptual("Financial Instruments".into()),
    );
    s.add(
        "payment",
        SynonymTarget::Logical("Money Transactions".into()),
    );
    s
}

/// Populates the base data of the mini-bank.
pub fn populate(db: &mut Database, seed: u64) {
    let mut gen = DataGen::new(seed);

    // Parties: individuals first, then organizations.
    for id in 1..=(NUM_INDIVIDUALS as i64) {
        db.insert("parties", vec![Value::Int(id), Value::from("individual")])
            .expect("insert party");
        let (first, last) = if id == 1 {
            ("Sara", "Guttinger")
        } else {
            (*gen.pick(GIVEN_NAMES), *gen.pick(FAMILY_NAMES))
        };
        let salary = if gen.chance(0.15) {
            gen.amount(500_000.0, 1_200_000.0)
        } else {
            gen.amount(50_000.0, 400_000.0)
        };
        db.insert(
            "individuals",
            vec![
                Value::Int(id),
                Value::from(first),
                Value::from(last),
                Value::Float(salary),
                Value::Date(gen.date(1950, 1995)),
            ],
        )
        .expect("insert individual");
        db.insert(
            "addresses",
            vec![
                Value::Int(id),
                Value::Int(id),
                Value::from(*gen.pick(STREETS)),
                Value::from(if id == 1 { "Zurich" } else { *gen.pick(CITIES) }),
                Value::from(*gen.pick(COUNTRIES)),
            ],
        )
        .expect("insert address");
    }
    for i in 0..NUM_ORGANIZATIONS {
        let id = (NUM_INDIVIDUALS + 1 + i) as i64;
        db.insert("parties", vec![Value::Int(id), Value::from("organization")])
            .expect("insert party");
        db.insert(
            "organizations",
            vec![
                Value::Int(id),
                Value::from(ORG_NAMES[i % ORG_NAMES.len()]),
                Value::from(*gen.pick(LEGAL_FORMS)),
            ],
        )
        .expect("insert organization");
    }

    // Financial instruments and securities.
    for i in 0..NUM_INSTRUMENTS {
        db.insert(
            "financial_instruments",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(PRODUCT_NAMES[i % PRODUCT_NAMES.len()]),
                Value::from(*gen.pick(PRODUCT_TYPES)),
                Value::from(ORG_NAMES[gen.index(ORG_NAMES.len())]),
            ],
        )
        .expect("insert instrument");
    }
    for i in 0..NUM_SECURITIES {
        db.insert(
            "securities",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(format!("{} Security {i}", gen.pick(ORG_NAMES))),
                Value::from(format!("CH{:010}", 1_000_000 + i)),
            ],
        )
        .expect("insert security");
    }
    for _ in 0..(NUM_INSTRUMENTS * 3) {
        db.insert(
            "fi_contains_sec",
            vec![
                Value::Int(gen.int(1, NUM_INSTRUMENTS as i64)),
                Value::Int(gen.int(1, NUM_SECURITIES as i64)),
            ],
        )
        .expect("insert fi_contains_sec");
    }

    // Transactions: the first ~73% are financial-instrument transactions.
    let fi_count = NUM_TRANSACTIONS * 73 / 100;
    for id in 1..=(NUM_TRANSACTIONS as i64) {
        let toparty = gen.int(1, (NUM_INDIVIDUALS + NUM_ORGANIZATIONS) as i64);
        db.insert(
            "transactions",
            vec![
                Value::Int(id),
                Value::Int(toparty),
                Value::Date(gen.date(2009, 2011)),
            ],
        )
        .expect("insert transaction");
        if id <= fi_count as i64 {
            db.insert(
                "fi_transactions",
                vec![
                    Value::Int(id),
                    Value::Int(gen.int(1, NUM_INSTRUMENTS as i64)),
                    Value::Float(gen.amount(100.0, 50_000.0)),
                ],
            )
            .expect("insert fi transaction");
        } else {
            db.insert(
                "money_transactions",
                vec![
                    Value::Int(id),
                    Value::Float(gen.amount(10.0, 20_000.0)),
                    Value::from(CURRENCIES[gen.index(CURRENCIES.len())].0),
                ],
            )
            .expect("insert money transaction");
        }
    }
}

/// Builds the complete mini-bank warehouse: schema, seeded data and metadata
/// graph.
pub fn build(seed: u64) -> Warehouse {
    let model = schema_model();
    let mut database = Database::new();
    for schema in &model.physical {
        database.create_table(schema.clone()).expect("create table");
    }
    populate(&mut database, seed);
    let graph = build_graph(&model, &ontology(), &synonyms());
    Warehouse {
        database,
        graph,
        model,
        name: "mini-bank".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_metagraph::builder::{preds, types};

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = build(42);
        let b = build(42);
        assert_eq!(a.database.total_rows(), b.database.total_rows());
        let rows_a = a.database.table("individuals").unwrap().rows().to_vec();
        let rows_b = b.database.table("individuals").unwrap().rows().to_vec();
        assert_eq!(rows_a, rows_b);
        let c = build(43);
        let rows_c = c.database.table("individuals").unwrap().rows().to_vec();
        assert_ne!(rows_a, rows_c);
    }

    #[test]
    fn base_data_contains_the_paper_literals() {
        let w = build(42);
        let sara = w
            .database
            .run_sql(
                "SELECT * FROM individuals WHERE firstname = 'Sara' AND lastname = 'Guttinger'",
            )
            .unwrap();
        assert!(sara.row_count() >= 1);
        let zurich = w
            .database
            .run_sql("SELECT * FROM addresses WHERE city = 'Zurich'")
            .unwrap();
        assert!(zurich.row_count() >= 1);
    }

    #[test]
    fn all_ten_physical_tables_exist_and_are_populated_where_expected() {
        let w = build(42);
        assert_eq!(w.database.table_count(), 10);
        assert_eq!(
            w.database.table("parties").unwrap().row_count(),
            NUM_INDIVIDUALS + NUM_ORGANIZATIONS
        );
        assert_eq!(
            w.database.table("individuals").unwrap().row_count(),
            NUM_INDIVIDUALS
        );
        assert_eq!(
            w.database.table("transactions").unwrap().row_count(),
            NUM_TRANSACTIONS
        );
        assert!(w.database.table("fi_transactions").unwrap().row_count() > 0);
        assert!(w.database.table("money_transactions").unwrap().row_count() > 0);
    }

    #[test]
    fn referential_integrity_of_generated_data() {
        let w = build(42);
        // Every individual id exists in parties.
        let orphan = w
            .database
            .run_sql(
                "SELECT individuals.id FROM individuals, parties \
                 WHERE individuals.id = parties.id",
            )
            .unwrap();
        assert_eq!(orphan.row_count(), NUM_INDIVIDUALS);
        // Every fi_transaction joins to a transaction.
        let fi = w
            .database
            .run_sql(
                "SELECT fi_transactions.id FROM fi_transactions, transactions \
                 WHERE fi_transactions.id = transactions.id",
            )
            .unwrap();
        assert_eq!(
            fi.row_count(),
            w.database.table("fi_transactions").unwrap().row_count()
        );
    }

    #[test]
    fn graph_contains_the_figure5_entry_points() {
        let w = build(42);
        // "customers" is found in the domain ontology.
        let hits = w.graph.nodes_with_label("customers");
        assert!(hits
            .iter()
            .any(|(n, _)| w.graph.has_type(*n, types::ONTOLOGY_CONCEPT)));
        // "financial instruments" is found in the conceptual AND logical schema.
        let fi_hits = w.graph.nodes_with_label("financial instruments");
        let kinds: Vec<bool> = fi_hits
            .iter()
            .map(|(n, _)| w.graph.has_type(*n, types::CONCEPTUAL_ENTITY))
            .collect();
        assert!(kinds.contains(&true));
        assert!(fi_hits
            .iter()
            .any(|(n, _)| w.graph.has_type(*n, types::LOGICAL_ENTITY)));
    }

    #[test]
    fn inheritance_and_bridge_structures_exist_in_the_graph() {
        let w = build(42);
        let inh = w.graph.node("inh/parties").unwrap();
        assert_eq!(w.graph.objects_of(inh, preds::INHERITANCE_CHILD).len(), 2);
        // fi_contains_sec has two annotated foreign keys (a bridge table).
        let c1 = w.graph.node("phys/fi_contains_sec/instrument_id").unwrap();
        let c2 = w.graph.node("phys/fi_contains_sec/security_id").unwrap();
        assert_eq!(w.graph.objects_of(c1, preds::FOREIGN_KEY).len(), 1);
        assert_eq!(w.graph.objects_of(c2, preds::FOREIGN_KEY).len(), 1);
    }

    #[test]
    fn wealthy_customers_filter_is_in_the_metadata() {
        let w = build(42);
        let wealthy = w.graph.node("onto/wealthy-customers").unwrap();
        let filters = w.graph.objects_of(wealthy, preds::DEFINED_FILTER);
        assert_eq!(filters.len(), 1);
        assert_eq!(w.graph.text_of(filters[0], preds::FILTER_OP), Some(">="));
    }

    #[test]
    fn stats_reflect_the_small_schema() {
        let w = build(42);
        let s = w.stats();
        assert_eq!(s.physical_tables, 10);
        assert_eq!(s.conceptual_entities, 5);
        assert_eq!(s.logical_entities, 9);
        assert!(s.physical_columns > 30);
    }
}
