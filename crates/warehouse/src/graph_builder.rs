//! Translates a [`SchemaModel`], a [`DomainOntology`] and a [`SynonymStore`]
//! into the metadata graph that SODA's patterns match against (Figure 3 of the
//! paper: DBpedia → domain ontologies → conceptual schema → logical schema →
//! physical schema → base data).
//!
//! ## URI conventions
//!
//! | Node | URI |
//! |---|---|
//! | physical table | `phys/<table>` |
//! | physical column | `phys/<table>/<column>` |
//! | logical entity | `logical/<name-slug>` |
//! | logical attribute | `logical/<entity-slug>/<attr-slug>` |
//! | conceptual entity | `concept/<name-slug>` |
//! | conceptual attribute | `concept/<entity-slug>/<attr-slug>` |
//! | ontology concept | `onto/<slug>` |
//! | DBpedia term | `dbpedia/<slug>` |
//! | inheritance node | `inh/<parent-table>` |
//! | explicit join node | `join/<table>.<column>--<ref_table>.<ref_column>` |
//! | metadata filter | `filter/<concept-slug>` |
//!
//! Text labels are attached with the predicates SODA's patterns look for
//! (`tablename`, `columnname`, `name`).  Names are normalised to lower-case,
//! space-separated phrases so that the lookup step can match business phrasing
//! ("financial instruments") against schema identifiers
//! (`financial_instruments`).

use soda_metagraph::builder::{preds, types};
use soda_metagraph::{GraphBuilder, MetaGraph, NodeId};
use soda_relation::tokenize;

use crate::dbpedia::{SynonymStore, SynonymTarget};
use crate::model::{RelationshipKind, SchemaModel};
use crate::ontology::{ClassifyTarget, DomainOntology};

/// Converts an arbitrary name into a URI slug.
pub fn slug(name: &str) -> String {
    tokenize(name).join("_")
}

/// Converts an arbitrary name into the normalised phrase used as a lookup
/// label ("Financial_Instruments" → "financial instruments").
pub fn phrase(name: &str) -> String {
    tokenize(name).join(" ")
}

/// Loose identifier comparison used to link business attribute names to
/// physical column names: case, separators and word boundaries are ignored, so
/// "transaction date" matches `transactiondate` and "given name" matches
/// `given_name`.
pub fn loose_eq(a: &str, b: &str) -> bool {
    let squash = |s: &str| tokenize(s).concat();
    squash(a) == squash(b)
}

/// Builds the metadata graph for a warehouse.
pub fn build_graph(
    model: &SchemaModel,
    ontology: &DomainOntology,
    synonyms: &SynonymStore,
) -> MetaGraph {
    let mut b = GraphBuilder::new();

    // --- Physical layer -----------------------------------------------------
    for table in &model.physical {
        let t = b.physical_table(&format!("phys/{}", table.name), &phrase(&table.name));
        // Keep the exact physical identifier available as a secondary label so
        // that users typing `trade_order_td` still find the table.
        b.text(t, preds::TABLENAME, &table.name.to_lowercase());
        if let Some(comment) = &table.comment {
            b.text(t, preds::NAME, &phrase(comment));
        }
        for col in &table.columns {
            let c = b.physical_column(
                t,
                &format!("phys/{}/{}", table.name, col.name),
                &phrase(&col.name),
            );
            b.text(c, preds::COLUMNNAME, &col.name.to_lowercase());
        }
    }

    // Foreign keys (only the annotated ones are visible to SODA).
    for fk in &model.foreign_keys {
        if !fk.annotated {
            continue;
        }
        let Some(fk_col) = b.graph().node(&format!("phys/{}/{}", fk.table, fk.column)) else {
            continue;
        };
        let Some(pk_col) = b
            .graph()
            .node(&format!("phys/{}/{}", fk.ref_table, fk.ref_column))
        else {
            continue;
        };
        if fk.explicit_join_node {
            b.join_relationship(
                &format!(
                    "join/{}.{}--{}.{}",
                    fk.table, fk.column, fk.ref_table, fk.ref_column
                ),
                fk_col,
                pk_col,
            );
        } else {
            b.foreign_key(fk_col, pk_col);
        }
    }

    // Bi-temporal historization annotations (only present in models built with
    // the annotated variants — see `crate::model::HistorizationLink`).
    for link in &model.historization {
        let Some(hist) = b.graph().node(&format!("phys/{}", link.hist_table)) else {
            continue;
        };
        let Some(current) = b.graph().node(&format!("phys/{}", link.current_table)) else {
            continue;
        };
        b.historization(
            &format!("hist/{}", link.hist_table),
            hist,
            current,
            &link.valid_from_column,
            &link.valid_to_column,
        );
    }

    // Inheritance groups.
    for group in &model.inheritance {
        let Some(parent) = b.graph().node(&format!("phys/{}", group.parent_table)) else {
            continue;
        };
        let children: Vec<NodeId> = group
            .child_tables
            .iter()
            .filter_map(|c| b.graph().node(&format!("phys/{c}")))
            .collect();
        if children.len() >= 2 {
            b.inheritance(&format!("inh/{}", group.parent_table), parent, &children);
        }
    }

    // --- Logical layer -------------------------------------------------------
    for entity in &model.logical {
        let e = b.named_node(
            &format!("logical/{}", slug(&entity.name)),
            types::LOGICAL_ENTITY,
            &phrase(&entity.name),
        );
        for attr in &entity.attributes {
            let a = b.named_node(
                &format!("logical/{}/{}", slug(&entity.name), slug(attr)),
                types::LOGICAL_ATTRIBUTE,
                &phrase(attr),
            );
            b.edge(e, preds::ATTRIBUTE, a);
            // Attributes are linked down to the physical column of an
            // implementing table whose identifier loosely matches the
            // business name ("transaction date" → `transactiondate`).
            for table in &entity.implemented_by {
                let Some(schema) = model.physical_table(table) else {
                    continue;
                };
                for col in &schema.columns {
                    if loose_eq(attr, &col.name) {
                        if let Some(col_node) = b
                            .graph()
                            .node(&format!("phys/{}/{}", schema.name, col.name))
                        {
                            b.edge(a, preds::REALIZED_BY, col_node);
                        }
                    }
                }
            }
        }
        for table in &entity.implemented_by {
            if let Some(t) = b.graph().node(&format!("phys/{table}")) {
                b.edge(e, preds::IMPLEMENTED_BY, t);
            }
        }
    }
    for rel in &model.logical_relationships {
        let from = b.node(&format!("logical/{}", slug(&rel.from)));
        let to = b.node(&format!("logical/{}", slug(&rel.to)));
        let pred = match rel.kind {
            RelationshipKind::ManyToOne => "related_n1",
            RelationshipKind::ManyToMany => "related_nn",
            RelationshipKind::Inheritance => "specializes",
        };
        b.edge(from, pred, to);
    }

    // --- Conceptual layer ----------------------------------------------------
    for entity in &model.conceptual {
        let e = b.named_node(
            &format!("concept/{}", slug(&entity.name)),
            types::CONCEPTUAL_ENTITY,
            &phrase(&entity.name),
        );
        for attr in &entity.attributes {
            let a = b.named_node(
                &format!("concept/{}/{}", slug(&entity.name), slug(attr)),
                types::CONCEPTUAL_ATTRIBUTE,
                &phrase(attr),
            );
            b.edge(e, preds::ATTRIBUTE, a);
            // Conceptual attributes are realised by loosely-matching logical
            // attributes of the refining entities, giving the lookup a path
            // from the business phrasing all the way down to a physical column.
            for logical_name in &entity.refined_by {
                let Some(logical) = model
                    .logical
                    .iter()
                    .find(|l| l.name.eq_ignore_ascii_case(logical_name))
                else {
                    continue;
                };
                for l_attr in &logical.attributes {
                    if loose_eq(attr, l_attr) {
                        if let Some(l_node) = b.graph().node(&format!(
                            "logical/{}/{}",
                            slug(&logical.name),
                            slug(l_attr)
                        )) {
                            b.edge(a, preds::REALIZED_BY, l_node);
                        }
                    }
                }
            }
        }
        for logical in &entity.refined_by {
            if let Some(l) = b.graph().node(&format!("logical/{}", slug(logical))) {
                b.edge(e, preds::REFINED_BY, l);
            }
        }
    }
    for rel in &model.conceptual_relationships {
        let from = b.node(&format!("concept/{}", slug(&rel.from)));
        let to = b.node(&format!("concept/{}", slug(&rel.to)));
        let pred = match rel.kind {
            RelationshipKind::ManyToOne => "related_n1",
            RelationshipKind::ManyToMany => "related_nn",
            RelationshipKind::Inheritance => "specializes",
        };
        b.edge(from, pred, to);
    }

    // --- Domain ontology -----------------------------------------------------
    for concept in &ontology.concepts {
        let c = b.ontology_concept(&format!("onto/{}", concept.slug), &phrase(&concept.name));
        for alt in &concept.alt_names {
            b.text(c, preds::NAME, &phrase(alt));
        }
        for target in &concept.classifies {
            let target_node = match target {
                ClassifyTarget::Conceptual(name) => {
                    b.graph().node(&format!("concept/{}", slug(name)))
                }
                ClassifyTarget::Logical(name) => b.graph().node(&format!("logical/{}", slug(name))),
                ClassifyTarget::Table(name) => b.graph().node(&format!("phys/{name}")),
                ClassifyTarget::Column { table, column } => {
                    b.graph().node(&format!("phys/{table}/{column}"))
                }
                ClassifyTarget::Concept(s) => b.graph().node(&format!("onto/{s}")),
            };
            if let Some(t) = target_node {
                b.edge(c, preds::CLASSIFIES, t);
            }
        }
        if let Some(filter) = &concept.filter {
            if let Some(col) = b
                .graph()
                .node(&format!("phys/{}/{}", filter.table, filter.column))
            {
                b.metadata_filter(
                    &format!("filter/{}", concept.slug),
                    c,
                    col,
                    &filter.op,
                    &filter.value,
                );
            }
        }
    }

    // --- DBpedia -------------------------------------------------------------
    for (i, entry) in synonyms.entries.iter().enumerate() {
        let target = match &entry.target {
            SynonymTarget::Concept(s) => b.graph().node(&format!("onto/{s}")),
            SynonymTarget::Conceptual(name) => b.graph().node(&format!("concept/{}", slug(name))),
            SynonymTarget::Logical(name) => b.graph().node(&format!("logical/{}", slug(name))),
            SynonymTarget::Table(name) => b.graph().node(&format!("phys/{name}")),
        };
        if let Some(t) = target {
            b.dbpedia_synonym(
                &format!("dbpedia/{}_{}", slug(&entry.term), i),
                &phrase(&entry.term),
                t,
            );
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{
        AnnotatedForeignKey, ConceptualEntity, InheritanceGroup, LogicalEntity, Relationship,
    };
    use crate::ontology::{ConceptFilter, OntologyConcept};
    use soda_relation::{DataType, TableSchema};

    fn tiny_model() -> SchemaModel {
        let mut model = SchemaModel {
            conceptual: vec![ConceptualEntity {
                name: "Parties".into(),
                attributes: vec!["name".into()],
                refined_by: vec!["Individuals".into()],
            }],
            conceptual_relationships: vec![Relationship {
                from: "Parties".into(),
                to: "Parties".into(),
                kind: RelationshipKind::ManyToMany,
            }],
            logical: vec![LogicalEntity {
                name: "Individuals".into(),
                attributes: vec!["given name".into(), "salary".into()],
                implemented_by: vec!["individual".into()],
            }],
            logical_relationships: vec![],
            physical: vec![
                TableSchema::builder("party")
                    .column("party_id", DataType::Int)
                    .primary_key("party_id")
                    .build(),
                TableSchema::builder("individual")
                    .column("party_id", DataType::Int)
                    .column("given_name", DataType::Text)
                    .column("salary", DataType::Float)
                    .primary_key("party_id")
                    .foreign_key("party_id", "party", "party_id")
                    .build(),
                TableSchema::builder("organization")
                    .column("party_id", DataType::Int)
                    .column("org_name", DataType::Text)
                    .primary_key("party_id")
                    .foreign_key("party_id", "party", "party_id")
                    .build(),
                TableSchema::builder("individual_name_hist")
                    .column("party_id", DataType::Int)
                    .column("given_name", DataType::Text)
                    .build(),
            ],
            foreign_keys: vec![AnnotatedForeignKey {
                table: "individual_name_hist".into(),
                column: "party_id".into(),
                ref_table: "individual".into(),
                ref_column: "party_id".into(),
                annotated: false,
                explicit_join_node: false,
            }],
            inheritance: vec![InheritanceGroup {
                parent_table: "party".into(),
                child_tables: vec!["individual".into(), "organization".into()],
            }],
            historization: vec![],
        };
        model.adopt_physical_foreign_keys();
        model
    }

    fn tiny_ontology() -> DomainOntology {
        let mut o = DomainOntology::new();
        o.add(
            OntologyConcept::new("private-customers", "private customers")
                .classifies(ClassifyTarget::Table("individual".into())),
        );
        o.add(
            OntologyConcept::new("wealthy-customers", "wealthy customers")
                .classifies(ClassifyTarget::Table("individual".into()))
                .with_filter(ConceptFilter {
                    table: "individual".into(),
                    column: "salary".into(),
                    op: ">=".into(),
                    value: "500000".into(),
                }),
        );
        o
    }

    fn tiny_synonyms() -> SynonymStore {
        let mut s = SynonymStore::new();
        s.add("client", SynonymTarget::Conceptual("Parties".into()));
        s.add("ghost", SynonymTarget::Table("does_not_exist".into()));
        s
    }

    #[test]
    fn physical_layer_nodes_and_labels() {
        let g = build_graph(&tiny_model(), &tiny_ontology(), &tiny_synonyms());
        let t = g.node("phys/individual").unwrap();
        assert!(g.has_type(t, types::PHYSICAL_TABLE));
        assert_eq!(g.text_of(t, preds::TABLENAME), Some("individual"));
        let c = g.node("phys/individual/given_name").unwrap();
        assert!(g.has_type(c, types::PHYSICAL_COLUMN));
        // Both the phrase form and the identifier form are attached.
        let labels = g.nodes_with_label("given name");
        assert!(labels.iter().any(|(n, _)| *n == c));
    }

    #[test]
    fn unannotated_foreign_keys_are_absent_from_the_graph() {
        let g = build_graph(&tiny_model(), &tiny_ontology(), &tiny_synonyms());
        let annotated_fk = g.node("phys/individual/party_id").unwrap();
        assert_eq!(
            g.objects_of(annotated_fk, preds::FOREIGN_KEY).len(),
            1,
            "annotated FK must be present"
        );
        let hist_fk = g.node("phys/individual_name_hist/party_id").unwrap();
        assert!(
            g.objects_of(hist_fk, preds::FOREIGN_KEY).is_empty(),
            "historisation FK must be invisible to SODA"
        );
    }

    #[test]
    fn historization_links_become_annotation_nodes() {
        let mut model = tiny_model();
        model.historization.push(crate::model::HistorizationLink {
            hist_table: "individual_name_hist".into(),
            current_table: "individual".into(),
            valid_from_column: "valid_from".into(),
            valid_to_column: "valid_to".into(),
        });
        // A link pointing at a missing table is skipped rather than panicking.
        model.historization.push(crate::model::HistorizationLink {
            hist_table: "missing_hist".into(),
            current_table: "individual".into(),
            valid_from_column: "valid_from".into(),
            valid_to_column: "valid_to".into(),
        });
        let g = build_graph(&model, &tiny_ontology(), &tiny_synonyms());
        let h = g.node("hist/individual_name_hist").unwrap();
        assert!(g.has_type(h, types::HISTORIZATION_NODE));
        let hist = g.node("phys/individual_name_hist").unwrap();
        let current = g.node("phys/individual").unwrap();
        assert_eq!(g.objects_of(h, preds::HIST_TABLE), vec![hist]);
        assert_eq!(g.objects_of(h, preds::CURRENT_TABLE), vec![current]);
        assert!(g.node("hist/missing_hist").is_none());
    }

    #[test]
    fn inheritance_node_connects_parent_and_children() {
        let g = build_graph(&tiny_model(), &tiny_ontology(), &tiny_synonyms());
        let inh = g.node("inh/party").unwrap();
        assert!(g.has_type(inh, types::INHERITANCE_NODE));
        assert_eq!(g.objects_of(inh, preds::INHERITANCE_CHILD).len(), 2);
        assert_eq!(g.objects_of(inh, preds::INHERITANCE_PARENT).len(), 1);
    }

    #[test]
    fn layers_are_linked_top_down() {
        let g = build_graph(&tiny_model(), &tiny_ontology(), &tiny_synonyms());
        let conceptual = g.node("concept/parties").unwrap();
        let logical = g.node("logical/individuals").unwrap();
        let physical = g.node("phys/individual").unwrap();
        assert!(g
            .objects_of(conceptual, preds::REFINED_BY)
            .contains(&logical));
        assert!(g
            .objects_of(logical, preds::IMPLEMENTED_BY)
            .contains(&physical));
        // The logical "salary" attribute is realised by the physical column.
        let attr = g.node("logical/individuals/salary").unwrap();
        let col = g.node("phys/individual/salary").unwrap();
        assert!(g.objects_of(attr, preds::REALIZED_BY).contains(&col));
    }

    #[test]
    fn ontology_concepts_classify_and_define_filters() {
        let g = build_graph(&tiny_model(), &tiny_ontology(), &tiny_synonyms());
        let private = g.node("onto/private-customers").unwrap();
        let individual = g.node("phys/individual").unwrap();
        assert!(g
            .objects_of(private, preds::CLASSIFIES)
            .contains(&individual));

        let wealthy = g.node("onto/wealthy-customers").unwrap();
        let filters = g.objects_of(wealthy, preds::DEFINED_FILTER);
        assert_eq!(filters.len(), 1);
        assert_eq!(g.text_of(filters[0], preds::FILTER_VALUE), Some("500000"));
    }

    #[test]
    fn dbpedia_terms_point_at_existing_targets_only() {
        let g = build_graph(&tiny_model(), &tiny_ontology(), &tiny_synonyms());
        // "client" resolves to the Parties conceptual entity.
        let hits = g.nodes_with_label("client");
        assert_eq!(hits.len(), 1);
        let (node, _) = hits[0];
        assert!(g.has_type(node, types::DBPEDIA_TERM));
        // "ghost" pointed at a missing table and must not create a node.
        assert!(g.nodes_with_label("ghost").is_empty());
    }

    #[test]
    fn slug_and_phrase_normalisation() {
        assert_eq!(slug("Financial Instruments"), "financial_instruments");
        assert_eq!(phrase("trade_order_td"), "trade order td");
        assert_eq!(phrase("  Given   Name "), "given name");
    }
}
