//! Padding generator that scales the enterprise schema up to the complexity
//! reported in Table 1 of the paper (226 conceptual entities, 436 logical
//! entities, 472 physical tables, 3181 physical columns, …).
//!
//! The padding entities model the hundreds of reference/regulatory subject
//! areas a real enterprise warehouse accumulates; they carry no data, but they
//! are fully present in the metadata graph, so the lookup, traversal and
//! pattern-matching steps of SODA operate at realistic metadata scale.

use soda_relation::{DataType, TableSchema};

use crate::model::{
    AnnotatedForeignKey, ConceptualEntity, InheritanceGroup, LogicalEntity, Relationship,
    RelationshipKind, SchemaModel,
};

/// Targets taken verbatim from Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaddingTargets {
    /// Total conceptual entities.
    pub conceptual_entities: usize,
    /// Total conceptual attributes.
    pub conceptual_attributes: usize,
    /// Total conceptual relationships.
    pub conceptual_relationships: usize,
    /// Total logical entities.
    pub logical_entities: usize,
    /// Total logical attributes.
    pub logical_attributes: usize,
    /// Total logical relationships.
    pub logical_relationships: usize,
    /// Total physical tables.
    pub physical_tables: usize,
    /// Total physical columns.
    pub physical_columns: usize,
}

impl Default for PaddingTargets {
    fn default() -> Self {
        // Table 1 of the paper.
        Self {
            conceptual_entities: 226,
            conceptual_attributes: 985,
            conceptual_relationships: 243,
            logical_entities: 436,
            logical_attributes: 2700,
            logical_relationships: 254,
            physical_tables: 472,
            physical_columns: 3181,
        }
    }
}

/// Distributes `total` items over `n` buckets as evenly as possible.
fn distribute(total: usize, n: usize) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let base = total / n;
    let extra = total % n;
    (0..n).map(|i| base + usize::from(i < extra)).collect()
}

/// Extends `model` in place until its [`SchemaStats`](crate::model::SchemaStats)
/// match `targets` exactly.  Panics if the core model already exceeds a
/// target (that would be a programming error in the core schema).
pub fn pad_model(model: &mut SchemaModel, targets: PaddingTargets) {
    let stats = model.stats();
    assert!(
        stats.physical_tables <= targets.physical_tables,
        "core physical too large"
    );
    assert!(
        stats.logical_entities <= targets.logical_entities,
        "core logical too large"
    );
    assert!(
        stats.conceptual_entities <= targets.conceptual_entities,
        "core conceptual too large"
    );

    // ----- physical tables and columns --------------------------------------
    let new_tables = targets.physical_tables - stats.physical_tables;
    let new_columns_total = targets
        .physical_columns
        .saturating_sub(stats.physical_columns);
    let cols_per_table = distribute(new_columns_total, new_tables);
    let mut padding_table_names = Vec::with_capacity(new_tables);
    for (i, &ncols) in cols_per_table.iter().enumerate() {
        let area = i / 8;
        let name = format!("sa{area:02}_ref_table_{i:03}");
        let mut builder = TableSchema::builder(&name)
            .column("id", DataType::Int)
            .primary_key("id");
        // `ncols` includes the id column when possible; always keep >= 1 col.
        for c in 1..ncols.max(1) {
            let ty = match c % 4 {
                0 => DataType::Int,
                1 => DataType::Text,
                2 => DataType::Date,
                _ => DataType::Float,
            };
            builder = builder.column(format!("attr_{c:02}"), ty);
        }
        model.physical.push(builder.build());
        padding_table_names.push(name);
    }

    // FK chains within each subject area (connecting consecutive tables) plus
    // occasional inheritance groups and bridge tables between areas.
    for i in 1..padding_table_names.len() {
        if i % 8 == 0 {
            continue; // start of a new area: no chain edge across areas
        }
        model.foreign_keys.push(AnnotatedForeignKey {
            table: padding_table_names[i].clone(),
            column: "id".into(),
            ref_table: padding_table_names[i - 1].clone(),
            ref_column: "id".into(),
            annotated: true,
            explicit_join_node: i % 3 == 0,
        });
    }
    let mut k = 0;
    while k + 2 < padding_table_names.len() {
        model.inheritance.push(InheritanceGroup {
            parent_table: padding_table_names[k].clone(),
            child_tables: vec![
                padding_table_names[k + 1].clone(),
                padding_table_names[k + 2].clone(),
            ],
        });
        k += 48; // a few dozen inheritance groups across the warehouse
    }

    // ----- logical entities and attributes -----------------------------------
    let new_logical = targets.logical_entities - stats.logical_entities;
    let new_l_attrs = targets
        .logical_attributes
        .saturating_sub(stats.logical_attributes);
    let attrs_per_logical = distribute(new_l_attrs, new_logical);
    let mut padding_logical_names = Vec::with_capacity(new_logical);
    for (i, &nattrs) in attrs_per_logical.iter().enumerate() {
        let name = format!("Reference Entity {i:03}");
        let implemented_by = if !padding_table_names.is_empty() {
            vec![padding_table_names[i % padding_table_names.len()].clone()]
        } else {
            Vec::new()
        };
        model.logical.push(LogicalEntity {
            name: name.clone(),
            attributes: (0..nattrs).map(|a| format!("ref attr {a:02}")).collect(),
            implemented_by,
        });
        padding_logical_names.push(name);
    }
    let new_l_rels = targets
        .logical_relationships
        .saturating_sub(stats.logical_relationships);
    for i in 0..new_l_rels {
        if padding_logical_names.len() < 2 {
            break;
        }
        let from = &padding_logical_names[i % padding_logical_names.len()];
        let to = &padding_logical_names[(i + 1) % padding_logical_names.len()];
        model.logical_relationships.push(Relationship {
            from: from.clone(),
            to: to.clone(),
            kind: if i % 5 == 0 {
                RelationshipKind::ManyToMany
            } else {
                RelationshipKind::ManyToOne
            },
        });
    }

    // ----- conceptual entities and attributes ---------------------------------
    let new_conceptual = targets.conceptual_entities - stats.conceptual_entities;
    let new_c_attrs = targets
        .conceptual_attributes
        .saturating_sub(stats.conceptual_attributes);
    let attrs_per_conceptual = distribute(new_c_attrs, new_conceptual);
    let mut padding_conceptual_names = Vec::with_capacity(new_conceptual);
    for (i, &nattrs) in attrs_per_conceptual.iter().enumerate() {
        let name = format!("Business Area {i:03}");
        let refined_by = if !padding_logical_names.is_empty() {
            vec![padding_logical_names[i % padding_logical_names.len()].clone()]
        } else {
            Vec::new()
        };
        model.conceptual.push(ConceptualEntity {
            name: name.clone(),
            attributes: (0..nattrs)
                .map(|a| format!("business attr {a:02}"))
                .collect(),
            refined_by,
        });
        padding_conceptual_names.push(name);
    }
    let new_c_rels = targets
        .conceptual_relationships
        .saturating_sub(stats.conceptual_relationships);
    for i in 0..new_c_rels {
        if padding_conceptual_names.len() < 2 {
            break;
        }
        let from = &padding_conceptual_names[i % padding_conceptual_names.len()];
        let to = &padding_conceptual_names[(i + 1) % padding_conceptual_names.len()];
        model.conceptual_relationships.push(Relationship {
            from: from.clone(),
            to: to.clone(),
            kind: if i % 4 == 0 {
                RelationshipKind::ManyToMany
            } else {
                RelationshipKind::ManyToOne
            },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enterprise::schema::core_model;

    #[test]
    fn distribute_is_exact_and_even() {
        assert_eq!(distribute(10, 3), vec![4, 3, 3]);
        assert_eq!(distribute(9, 3), vec![3, 3, 3]);
        assert_eq!(distribute(2, 5), vec![1, 1, 0, 0, 0]);
        assert!(distribute(5, 0).is_empty());
        assert_eq!(distribute(10, 3).iter().sum::<usize>(), 10);
    }

    #[test]
    fn padding_hits_the_table1_targets_exactly() {
        let mut model = core_model();
        pad_model(&mut model, PaddingTargets::default());
        let s = model.stats();
        assert_eq!(s.conceptual_entities, 226);
        assert_eq!(s.conceptual_attributes, 985);
        assert_eq!(s.conceptual_relationships, 243);
        assert_eq!(s.logical_entities, 436);
        assert_eq!(s.logical_attributes, 2700);
        assert_eq!(s.logical_relationships, 254);
        assert_eq!(s.physical_tables, 472);
        assert_eq!(s.physical_columns, 3181);
    }

    #[test]
    fn padding_adds_inheritance_and_explicit_joins() {
        let mut model = core_model();
        let inh_before = model.inheritance.len();
        pad_model(&mut model, PaddingTargets::default());
        assert!(model.inheritance.len() > inh_before);
        assert!(
            model
                .foreign_keys
                .iter()
                .filter(|fk| fk.explicit_join_node)
                .count()
                > 2
        );
    }

    #[test]
    fn padding_tables_have_valid_schemas() {
        let mut model = core_model();
        pad_model(&mut model, PaddingTargets::default());
        for t in &model.physical {
            assert!(t.arity() >= 1, "table {} has no columns", t.name);
        }
        // Table names are unique.
        let mut names: Vec<_> = model.physical.iter().map(|t| t.name.clone()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
