//! Domain ontology and DBpedia extract of the enterprise warehouse.

use crate::dbpedia::{SynonymStore, SynonymTarget};
use crate::ontology::{ClassifyTarget, ConceptFilter, DomainOntology, OntologyConcept};

/// The enterprise domain ontology: customer classification, business terms
/// defined as filters and business measures mapped onto physical columns.
pub fn ontology() -> DomainOntology {
    let mut o = DomainOntology::new();
    o.add(
        OntologyConcept::new("customers", "customers")
            .alt("customer")
            .alt("clients")
            .classifies(ClassifyTarget::Conceptual("Parties".into()))
            .classifies(ClassifyTarget::Table("party".into())),
    );
    o.add(
        OntologyConcept::new("private-customers", "private customers")
            .alt("private clients")
            .classifies(ClassifyTarget::Table("individual".into())),
    );
    o.add(
        OntologyConcept::new("corporate-customers", "corporate customers")
            .alt("corporate clients")
            .classifies(ClassifyTarget::Table("organization".into())),
    );
    o.add(
        OntologyConcept::new("wealthy-customers", "wealthy customers")
            .alt("wealthy individuals")
            .classifies(ClassifyTarget::Table("individual".into()))
            .with_filter(ConceptFilter {
                table: "individual".into(),
                column: "salary".into(),
                op: ">=".into(),
                value: "500000".into(),
            }),
    );
    o.add(
        OntologyConcept::new("names", "names")
            .classifies(ClassifyTarget::Column {
                table: "individual".into(),
                column: "family_name".into(),
            })
            .classifies(ClassifyTarget::Column {
                table: "individual".into(),
                column: "given_name".into(),
            })
            .classifies(ClassifyTarget::Column {
                table: "organization".into(),
                column: "org_name".into(),
            }),
    );
    o.add(
        OntologyConcept::new("trading-volume", "trading volume").classifies(
            ClassifyTarget::Column {
                table: "trade_order_td".into(),
                column: "amount".into(),
            },
        ),
    );
    o.add(
        OntologyConcept::new("investments", "investments")
            .alt("investment amount")
            .classifies(ClassifyTarget::Column {
                table: "trade_order_td".into(),
                column: "amount".into(),
            }),
    );
    o.add(
        OntologyConcept::new("birth-date", "birth date")
            .alt("birthday")
            .classifies(ClassifyTarget::Column {
                table: "individual".into(),
                column: "birth_dt".into(),
            }),
    );
    o.add(
        OntologyConcept::new("period", "period")
            .alt("order period")
            .classifies(ClassifyTarget::Column {
                table: "trade_order_td".into(),
                column: "order_dt".into(),
            }),
    );
    o.add(
        OntologyConcept::new("segments", "customer segments").classifies(ClassifyTarget::Column {
            table: "party_classification".into(),
            column: "segment".into(),
        }),
    );
    o
}

/// The curated DBpedia extract: general-language synonyms pointing at schema
/// or ontology nodes (ranked below the domain ontology by the lookup step).
pub fn synonyms() -> SynonymStore {
    let mut s = SynonymStore::new();
    s.add("client", SynonymTarget::Concept("customers".into()));
    s.add("purchaser", SynonymTarget::Concept("customers".into()));
    s.add(
        "political organization",
        SynonymTarget::Conceptual("Parties".into()),
    );
    s.add("company", SynonymTarget::Table("organization".into()));
    s.add("firm", SynonymTarget::Table("organization".into()));
    s.add("enterprise", SynonymTarget::Table("organization".into()));
    s.add("person", SynonymTarget::Table("individual".into()));
    s.add(
        "employee",
        SynonymTarget::Table("associate_employment".into()),
    );
    s.add(
        "payment",
        SynonymTarget::Table("money_transaction_td".into()),
    );
    s.add("deal", SynonymTarget::Table("agreement_td".into()));
    s.add("contract", SynonymTarget::Table("agreement_td".into()));
    s.add(
        "stock",
        SynonymTarget::Table("investment_product_td".into()),
    );
    s.add("fund", SynonymTarget::Table("investment_product_td".into()));
    s.add("money", SynonymTarget::Table("currency".into()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_covers_the_workload_business_terms() {
        let o = ontology();
        for term in [
            "private customers",
            "corporate customers",
            "wealthy customers",
            "names",
            "trading volume",
            "investments",
            "period",
        ] {
            assert!(!o.by_name(term).is_empty(), "missing ontology term {term}");
        }
    }

    #[test]
    fn wealthy_customers_threshold_matches_data_generator() {
        let o = ontology();
        let w = o.concept("wealthy-customers").unwrap();
        assert_eq!(w.filter.as_ref().unwrap().value, "500000");
    }

    #[test]
    fn synonym_store_points_at_core_tables() {
        let s = synonyms();
        assert!(!s.lookup("client").is_empty());
        assert!(!s.lookup("company").is_empty());
        assert!(s.len() >= 10);
    }
}
