//! The synthetic enterprise warehouse.
//!
//! This is the substitution for the Credit Suisse integration-layer warehouse
//! the paper evaluates on: a populated core schema (trading chain, customer
//! inheritance with bi-temporal name history, bridge tables between
//! inheritance siblings) plus *padding* subject areas that scale the metadata
//! graph up to the exact Table 1 complexity (226 conceptual entities, 436
//! logical entities, 472 physical tables, 3181 columns).

pub mod data;
pub mod ontology;
pub mod padding;
pub mod schema;

use soda_relation::Database;

use self::padding::PaddingTargets;
use crate::graph_builder::build_graph;
use crate::model::Warehouse;

/// Configuration of the enterprise warehouse builder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnterpriseConfig {
    /// Seed for the deterministic data generator.
    pub seed: u64,
    /// Whether to add the padding subject areas that bring the schema-graph
    /// statistics up to Table 1 of the paper.
    pub padding: bool,
    /// Multiplier on the transactional row counts (1.0 ≈ 2.5k trade orders).
    pub data_scale: f64,
}

impl Default for EnterpriseConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            padding: true,
            data_scale: 1.0,
        }
    }
}

/// Builds the enterprise warehouse with the default configuration except for
/// the seed.
pub fn build(seed: u64) -> Warehouse {
    build_with(EnterpriseConfig {
        seed,
        ..EnterpriseConfig::default()
    })
}

/// Builds the enterprise warehouse from an explicit configuration.
///
/// The metadata graph reproduces the paper's historisation gap: the
/// `*_name_hist` join keys are *not* annotated, which caps the recall of
/// Q2.1/Q2.2 at the share of current names.  Use
/// [`build_with_historization`] for the annotated variant.
pub fn build_with(config: EnterpriseConfig) -> Warehouse {
    build_internal(config, false, 1.0)
}

/// Builds the enterprise warehouse *with* bi-temporal historization
/// annotations in the metadata graph — the paper's proposed remedy for the
/// Q2.1/Q2.2 recall loss (§5.2.1) and part of its future work (§7).  The base
/// data is identical to [`build_with`]; only the metadata graph differs (the
/// historization join relationships become explicit join nodes and
/// historization nodes describe the validity columns).
pub fn build_with_historization(config: EnterpriseConfig) -> Warehouse {
    build_internal(config, true, 1.0)
}

/// Builds the enterprise warehouse with independently scaled *dimension*
/// tables: `dimension_scale` multiplies the party-rooted row counts
/// (individuals, organizations, and through them addresses, agreements,
/// accounts and employments) on top of `config.data_scale`'s transactional
/// scaling.  Schema and metadata graph are unchanged.
///
/// This exists for lookup-layer benchmarks: shared text values such as
/// "Switzerland" or the currency codes then accumulate long postings lists
/// spread over *many* tables, which is the shape the sharded inverted
/// index's partition-parallel fan-out accelerates.
pub fn build_with_dimensions(config: EnterpriseConfig, dimension_scale: f64) -> Warehouse {
    build_internal(config, false, dimension_scale)
}

fn build_internal(
    config: EnterpriseConfig,
    annotate_historization: bool,
    dimension_scale: f64,
) -> Warehouse {
    let mut model = schema::core_model_annotated(annotate_historization);
    if config.padding {
        padding::pad_model(&mut model, PaddingTargets::default());
    }
    let mut database = Database::new();
    for schema in &model.physical {
        database.create_table(schema.clone()).expect("create table");
    }
    data::populate_scaled(
        &mut database,
        config.seed,
        config.data_scale,
        dimension_scale,
    );
    let graph = build_graph(&model, &ontology::ontology(), &ontology::synonyms());
    Warehouse {
        database,
        graph,
        model,
        name: if annotate_historization {
            "enterprise-historization-annotated".to_string()
        } else {
            "enterprise".to_string()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_warehouse_matches_table1_statistics() {
        let w = build_with(EnterpriseConfig {
            seed: 42,
            padding: true,
            data_scale: 0.1,
        });
        let s = w.stats();
        assert_eq!(s.conceptual_entities, 226);
        assert_eq!(s.logical_entities, 436);
        assert_eq!(s.physical_tables, 472);
        assert_eq!(s.physical_columns, 3181);
        assert_eq!(w.database.table_count(), 472);
    }

    #[test]
    fn dimension_scaling_multiplies_parties_and_keeps_pinned_rows() {
        let config = EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 0.05,
        };
        let base = build_with(config);
        let big = build_with_dimensions(config, 3.0);
        let rows = |w: &Warehouse, t: &str| w.database.table(t).unwrap().rows().len();
        assert_eq!(rows(&big, "individual"), 3 * rows(&base, "individual"));
        assert_eq!(rows(&big, "organization"), 3 * rows(&base, "organization"));
        assert_eq!(rows(&big, "agreement_td"), 3 * rows(&base, "agreement_td"));
        // The engineered distributions are pinned to absolute ids and must
        // survive dimension scaling exactly.
        for w in [&base, &big] {
            let saras = w
                .database
                .run_sql("SELECT party_id FROM individual WHERE given_name = 'Sara'")
                .unwrap();
            assert_eq!(saras.row_count(), data::CURRENT_SARA);
        }
    }

    #[test]
    fn unpadded_warehouse_contains_only_the_core_tables() {
        let w = build_with(EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 0.1,
        });
        assert_eq!(w.database.table_count(), 16);
        assert!(w.database.total_rows() > 1_000);
    }

    #[test]
    fn graph_scale_grows_with_padding() {
        let small = build_with(EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 0.05,
        });
        let large = build_with(EnterpriseConfig {
            seed: 42,
            padding: true,
            data_scale: 0.05,
        });
        assert!(large.graph.node_count() > small.graph.node_count() * 5);
        assert!(large.graph.edge_count() > small.graph.edge_count() * 5);
    }

    #[test]
    fn historization_annotations_are_optional_and_only_touch_the_graph() {
        use soda_metagraph::builder::{preds, types};
        let config = EnterpriseConfig {
            seed: 42,
            padding: false,
            data_scale: 0.1,
        };
        let plain = build_with(config);
        let annotated = build_with_historization(config);

        // Base data is identical; only the metadata differs.
        assert_eq!(plain.database.total_rows(), annotated.database.total_rows());

        // The plain graph hides the historisation joins (the paper's gap)…
        assert!(plain.graph.node("hist/individual_name_hist").is_none());
        let plain_fk = plain
            .graph
            .node("phys/individual_name_hist/party_id")
            .unwrap();
        assert!(plain.graph.objects_of(plain_fk, "join").is_empty());
        assert!(plain
            .graph
            .objects_of(plain_fk, preds::FOREIGN_KEY)
            .is_empty());

        // …while the annotated graph carries historization nodes and explicit
        // join nodes for the same physical keys.
        let hist_node = annotated.graph.node("hist/individual_name_hist").unwrap();
        assert!(annotated
            .graph
            .has_type(hist_node, types::HISTORIZATION_NODE));
        assert_eq!(
            annotated.graph.text_of(hist_node, preds::VALID_TO_COLUMN),
            Some("valid_to")
        );
        let annotated_fk = annotated
            .graph
            .node("phys/individual_name_hist/party_id")
            .unwrap();
        assert!(!annotated.graph.objects_of(annotated_fk, "join").is_empty());
        assert_eq!(annotated.model.historization.len(), 2);
    }

    #[test]
    fn build_is_deterministic() {
        let a = build_with(EnterpriseConfig {
            seed: 7,
            padding: false,
            data_scale: 0.1,
        });
        let b = build_with(EnterpriseConfig {
            seed: 7,
            padding: false,
            data_scale: 0.1,
        });
        assert_eq!(a.database.total_rows(), b.database.total_rows());
        assert_eq!(
            a.database.table("individual").unwrap().rows(),
            b.database.table("individual").unwrap().rows()
        );
    }
}
