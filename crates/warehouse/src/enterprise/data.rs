//! Data population for the enterprise warehouse.
//!
//! Row counts are laptop-scale but the *distributions* are engineered so that
//! every workload query of Table 2 has a meaningful answer and every failure
//! mode the paper describes is reproduced:
//!
//! * exactly [`CURRENT_SARA`] individuals are *currently* named Sara while
//!   [`HISTORIC_SARA`] further parties carry a historic "Sara" record in
//!   `individual_name_hist` — since the historisation join is not annotated in
//!   the metadata graph, SODA finds only the current ones (recall ≈ 0.2 for
//!   Q2.1/Q2.2, exactly the paper's explanation);
//! * "Credit Suisse" appears both as an organisation name and inside agreement
//!   names (the Q3.1/Q3.2 ambiguity);
//! * "gold", "YEN", "Lehman XYZ" and "Switzerland" occur in the columns the
//!   corresponding queries must reach.

use soda_relation::{Database, Date, Value};

use crate::datagen::{
    DataGen, AGREEMENT_NAMES, CITIES, COUNTRIES, CURRENCIES, FAMILY_NAMES, GIVEN_NAMES,
    LEGAL_FORMS, ORG_NAMES, PRODUCT_NAMES, PRODUCT_TYPES, STREETS,
};
use crate::delta::WarehouseDelta;

/// Number of private customers.
pub const NUM_INDIVIDUALS: usize = 300;
/// Number of corporate customers.
pub const NUM_ORGANIZATIONS: usize = 80;
/// Number of investment products.
pub const NUM_PRODUCTS: usize = 30;
/// Number of securities.
pub const NUM_SECURITIES: usize = 60;
/// Number of trade orders (scaled by the data-scale factor).
pub const NUM_TRADE_ORDERS: usize = 2_500;
/// Number of money transactions (scaled by the data-scale factor).
pub const NUM_MONEY_TXNS: usize = 800;
/// Number of employment bridge rows.
pub const NUM_EMPLOYMENTS: usize = 120;
/// Parties currently named "Sara" (party ids `1..=CURRENT_SARA`).
pub const CURRENT_SARA: usize = 4;
/// Parties with a *historic* "Sara" record (party ids
/// `CURRENT_SARA+1 ..= CURRENT_SARA+HISTORIC_SARA`).
pub const HISTORIC_SARA: usize = 16;

const OPEN_END: Date = Date {
    year: 9999,
    month: 12,
    day: 31,
};

/// Populates every core table.  `scale` multiplies the transactional row
/// counts (orders, payments); dimension sizes stay fixed.
pub fn populate(db: &mut Database, seed: u64, scale: f64) {
    populate_scaled(db, seed, scale, 1.0);
}

/// Like [`populate`] but with independently scaled dimensions:
/// `dimension_scale` multiplies the party-rooted row counts (individuals,
/// organizations, and through them addresses, agreements, accounts and
/// employments).  The engineered low-id distributions ("Sara", "Credit
/// Suisse", …) are pinned to absolute ids and survive any scale ≥ 1.0 —
/// smaller scales are for callers that don't rely on them.
pub fn populate_scaled(db: &mut Database, seed: u64, scale: f64, dimension_scale: f64) {
    let mut gen = DataGen::new(seed);
    let scale = scale.max(0.01);
    let dimension_scale = dimension_scale.max(0.1);
    let orders = ((NUM_TRADE_ORDERS as f64) * scale) as usize;
    let payments = ((NUM_MONEY_TXNS as f64) * scale) as usize;
    let individuals = ((NUM_INDIVIDUALS as f64) * dimension_scale) as usize;
    let organizations = ((NUM_ORGANIZATIONS as f64) * dimension_scale) as usize;
    let employments = ((NUM_EMPLOYMENTS as f64) * dimension_scale) as usize;
    // The fixed address-id offsets (current = party id, organization =
    // 1_000 + party id, historised = 10_000 + party id) only stay disjoint
    // while the party-id space fits below them; fail loudly instead of
    // silently generating duplicate address ids.
    assert!(
        individuals + organizations < 9_000,
        "dimension_scale {dimension_scale} exceeds the address-id headroom \
         ({} parties >= 9000); keep it below ~23",
        individuals + organizations
    );

    // Currencies.
    for (code, name) in CURRENCIES {
        db.insert("currency", vec![Value::from(*code), Value::from(*name)])
            .expect("currency");
    }

    // Parties: individuals 1..=NUM_INDIVIDUALS, organizations after that.
    for id in 1..=(individuals as i64) {
        let open = gen.date(1990, 2010);
        db.insert(
            "party",
            vec![
                Value::Int(id),
                Value::from("individual"),
                Value::Date(open),
                Value::Date(open),
                Value::Date(OPEN_END),
            ],
        )
        .expect("party");

        let idx = id as usize;
        let (given, family) = if idx == 1 {
            ("Sara".to_string(), "Guttinger".to_string())
        } else if idx <= CURRENT_SARA {
            ("Sara".to_string(), (*gen.pick(FAMILY_NAMES)).to_string())
        } else {
            (
                (*gen.pick(GIVEN_NAMES)).to_string(),
                (*gen.pick(FAMILY_NAMES)).to_string(),
            )
        };
        // Only the first CURRENT_SARA parties may be *currently* named Sara;
        // every other randomly drawn "Sara" is replaced so that the Q2.1
        // precision/recall ratios are exactly controlled.
        let given = if idx > CURRENT_SARA && given == "Sara" {
            "Petra".to_string()
        } else {
            given
        };
        let salary = if gen.chance(0.12) {
            gen.amount(500_000.0, 1_500_000.0)
        } else {
            gen.amount(45_000.0, 420_000.0)
        };
        let domicile = if idx == 1 || gen.chance(0.7) {
            "Switzerland"
        } else {
            *gen.pick(COUNTRIES)
        };
        db.insert(
            "individual",
            vec![
                Value::Int(id),
                Value::from(given.as_str()),
                Value::from(family.as_str()),
                Value::Date(gen.date(1945, 1995)),
                Value::Float(salary),
                Value::from(domicile),
            ],
        )
        .expect("individual");

        // Historic name records.
        if (CURRENT_SARA + 1..=CURRENT_SARA + HISTORIC_SARA).contains(&idx) {
            db.insert(
                "individual_name_hist",
                vec![
                    Value::Int(id),
                    Value::from("Sara"),
                    Value::from(*gen.pick(FAMILY_NAMES)),
                    Value::Date(gen.date(1995, 2004)),
                    Value::Date(gen.date(2005, 2009)),
                ],
            )
            .expect("individual_name_hist");
        } else if gen.chance(0.3) {
            // Historic records for everyone else use a non-"Sara" name so that
            // the Q2.1 recall ratio stays exactly CURRENT_SARA / (CURRENT_SARA
            // + HISTORIC_SARA).
            let mut former = *gen.pick(GIVEN_NAMES);
            if former == "Sara" {
                former = "Nina";
            }
            db.insert(
                "individual_name_hist",
                vec![
                    Value::Int(id),
                    Value::from(former),
                    Value::from(*gen.pick(FAMILY_NAMES)),
                    Value::Date(gen.date(1995, 2004)),
                    Value::Date(gen.date(2005, 2009)),
                ],
            )
            .expect("individual_name_hist");
        }

        db.insert(
            "address",
            vec![
                Value::Int(id),
                Value::Int(id),
                Value::from(*gen.pick(STREETS)),
                Value::from(if gen.chance(0.3) {
                    "Zurich"
                } else {
                    *gen.pick(CITIES)
                }),
                Value::from(if gen.chance(0.75) {
                    "Switzerland"
                } else {
                    *gen.pick(COUNTRIES)
                }),
                Value::Date(gen.date(2000, 2010)),
                Value::Date(OPEN_END),
            ],
        )
        .expect("address");
        // About a third of the individuals also have a *historised* (closed)
        // address row.  Because SODA has no special support for bi-temporal
        // historisation (§5.3.1), its generated SQL counts these rows too,
        // which is what drives Q9.0 to zero precision against a gold query
        // restricted to the current validity slice.
        if gen.chance(0.35) {
            db.insert(
                "address",
                vec![
                    Value::Int(10_000 + id),
                    Value::Int(id),
                    Value::from(*gen.pick(STREETS)),
                    Value::from(*gen.pick(CITIES)),
                    Value::from(if gen.chance(0.6) {
                        "Switzerland"
                    } else {
                        *gen.pick(COUNTRIES)
                    }),
                    Value::Date(gen.date(1990, 1999)),
                    Value::Date(gen.date(2000, 2009)),
                ],
            )
            .expect("historised address");
        }
        db.insert(
            "party_classification",
            vec![
                Value::Int(id),
                Value::from(if salary >= 500_000.0 {
                    "private banking"
                } else {
                    "retail"
                }),
                Value::Date(gen.date(2005, 2011)),
            ],
        )
        .expect("party_classification");
    }

    for i in 0..organizations {
        let id = (individuals + 1 + i) as i64;
        let open = gen.date(1985, 2010);
        db.insert(
            "party",
            vec![
                Value::Int(id),
                Value::from("organization"),
                Value::Date(open),
                Value::Date(open),
                Value::Date(OPEN_END),
            ],
        )
        .expect("party");
        let name = ORG_NAMES[i % ORG_NAMES.len()];
        let name = if i >= ORG_NAMES.len() {
            format!("{name} {}", i / ORG_NAMES.len() + 1)
        } else {
            name.to_string()
        };
        db.insert(
            "organization",
            vec![
                Value::Int(id),
                Value::from(name.as_str()),
                Value::from(*gen.pick(LEGAL_FORMS)),
                Value::from(if gen.chance(0.6) {
                    "Switzerland"
                } else {
                    *gen.pick(COUNTRIES)
                }),
            ],
        )
        .expect("organization");
        if gen.chance(0.25) {
            db.insert(
                "organization_name_hist",
                vec![
                    Value::Int(id),
                    Value::from(format!("{name} (formerly)").as_str()),
                    Value::Date(gen.date(1990, 2000)),
                    Value::Date(gen.date(2001, 2008)),
                ],
            )
            .expect("organization_name_hist");
        }
        db.insert(
            "address",
            vec![
                Value::Int(1_000 + id),
                Value::Int(id),
                Value::from(*gen.pick(STREETS)),
                Value::from(*gen.pick(CITIES)),
                Value::from("Switzerland"),
                Value::Date(gen.date(2000, 2010)),
                Value::Date(OPEN_END),
            ],
        )
        .expect("address");
        db.insert(
            "party_classification",
            vec![
                Value::Int(id),
                Value::from("institutional"),
                Value::Date(gen.date(2005, 2011)),
            ],
        )
        .expect("party_classification");
    }

    // Agreements: one per party, ids aligned with party ids.
    let total_parties = (individuals + organizations) as i64;
    for id in 1..=total_parties {
        let name = match id {
            1 => "Gold Savings Agreement",
            2 => "Credit Suisse Master Agreement",
            _ => AGREEMENT_NAMES[gen.index(AGREEMENT_NAMES.len())],
        };
        db.insert(
            "agreement_td",
            vec![
                Value::Int(id),
                Value::from(name),
                Value::Int(id),
                Value::Date(gen.date(2000, 2011)),
            ],
        )
        .expect("agreement");
    }

    // Accounts: one or two per agreement.
    let mut account_ids: Vec<i64> = Vec::new();
    let mut next_account = 1i64;
    for agreement in 1..=total_parties {
        let n = if gen.chance(0.4) { 2 } else { 1 };
        for _ in 0..n {
            db.insert(
                "account_td",
                vec![
                    Value::Int(next_account),
                    Value::Int(agreement),
                    Value::from(CURRENCIES[gen.index(CURRENCIES.len())].0),
                    Value::from(if gen.chance(0.5) { "custody" } else { "cash" }),
                ],
            )
            .expect("account");
            account_ids.push(next_account);
            next_account += 1;
        }
    }

    // Investment products and securities.
    for i in 0..NUM_PRODUCTS {
        let name = if i == 0 {
            "Lehman XYZ Certificate".to_string()
        } else {
            let base = PRODUCT_NAMES[i % PRODUCT_NAMES.len()];
            if i >= PRODUCT_NAMES.len() {
                format!("{base} Series {}", i / PRODUCT_NAMES.len() + 1)
            } else {
                base.to_string()
            }
        };
        db.insert(
            "investment_product_td",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(name.as_str()),
                Value::from(*gen.pick(PRODUCT_TYPES)),
                Value::from(ORG_NAMES[gen.index(ORG_NAMES.len())]),
            ],
        )
        .expect("product");
    }
    for i in 0..NUM_SECURITIES {
        db.insert(
            "security_td",
            vec![
                Value::Int(i as i64 + 1),
                Value::from(format!("{} Security {i}", ORG_NAMES[i % ORG_NAMES.len()]).as_str()),
                Value::from(format!("CH{:010}", 2_000_000 + i).as_str()),
                Value::from(CURRENCIES[gen.index(CURRENCIES.len())].0),
            ],
        )
        .expect("security");
    }
    for _ in 0..(NUM_PRODUCTS * 3) {
        db.insert(
            "product_contains_sec",
            vec![
                Value::Int(gen.int(1, NUM_PRODUCTS as i64)),
                Value::Int(gen.int(1, NUM_SECURITIES as i64)),
            ],
        )
        .expect("product_contains_sec");
    }

    // Trade orders.
    for id in 1..=(orders as i64) {
        let account = account_ids[gen.index(account_ids.len())];
        let currency = if gen.chance(0.1) {
            "YEN"
        } else {
            CURRENCIES[gen.index(CURRENCIES.len())].0
        };
        db.insert(
            "trade_order_td",
            vec![
                Value::Int(id),
                Value::Int(account),
                Value::Int(gen.int(1, NUM_PRODUCTS as i64)),
                Value::Date(gen.date(2009, 2012)),
                Value::Float(gen.amount(100.0, 250_000.0)),
                Value::from(currency),
                Value::from(if gen.chance(0.9) { "executed" } else { "open" }),
            ],
        )
        .expect("trade order");
    }

    // Money transactions.
    for id in 1..=(payments as i64) {
        let account = account_ids[gen.index(account_ids.len())];
        db.insert(
            "money_transaction_td",
            vec![
                Value::Int(id),
                Value::Int(account),
                Value::Float(gen.amount(10.0, 50_000.0)),
                Value::from(CURRENCIES[gen.index(CURRENCIES.len())].0),
                Value::Date(gen.date(2009, 2012)),
            ],
        )
        .expect("money transaction");
    }

    // Employment bridge between the inheritance siblings.
    for _ in 0..employments {
        db.insert(
            "associate_employment",
            vec![
                Value::Int(gen.int(1, individuals as i64)),
                Value::Int(gen.int(individuals as i64 + 1, (individuals + organizations) as i64)),
                Value::from(if gen.chance(0.3) {
                    "board member"
                } else {
                    "employee"
                }),
            ],
        )
        .expect("employment");
    }
}

/// An incremental batch feed onboarding `count` new private customers: one
/// `party` row plus one `individual` row each, with party ids continuing
/// after the warehouse's current maximum.  The engineered distributions of
/// [`populate_scaled`] (the pinned "Sara" counts, the Swiss domicile bias)
/// are left untouched — new names are drawn from the regular pools, never
/// "Sara".
///
/// This is the producer side of per-shard hot snapshot swapping: the
/// returned [`WarehouseDelta`] names exactly the two touched tables, so
/// `SnapshotHandle::rebuild_shards` only replaces their owning
/// inverted-index partitions while every other shard keeps serving.
pub fn onboarding_delta(db: &Database, seed: u64, count: usize) -> WarehouseDelta {
    let mut gen = DataGen::new(seed ^ 0x6f6e_6264); // "onbd"
    let next_id = db
        .table("party")
        .ok()
        .and_then(|t| {
            t.rows()
                .iter()
                .filter_map(|r| match r.first() {
                    Some(Value::Int(id)) => Some(*id),
                    _ => None,
                })
                .max()
        })
        .unwrap_or(0)
        + 1;
    let mut parties = Vec::with_capacity(count);
    let mut individuals = Vec::with_capacity(count);
    for offset in 0..count as i64 {
        let id = next_id + offset;
        let open = gen.date(2011, 2024);
        parties.push(vec![
            Value::Int(id),
            Value::from("individual"),
            Value::Date(open),
            Value::Date(open),
            Value::Date(OPEN_END),
        ]);
        let given = {
            let g = *gen.pick(GIVEN_NAMES);
            if g == "Sara" {
                "Petra"
            } else {
                g
            }
        };
        let salary = if gen.chance(0.12) {
            gen.amount(500_000.0, 1_500_000.0)
        } else {
            gen.amount(45_000.0, 420_000.0)
        };
        let domicile = if gen.chance(0.7) {
            "Switzerland"
        } else {
            *gen.pick(COUNTRIES)
        };
        individuals.push(vec![
            Value::Int(id),
            Value::from(given),
            Value::from(*gen.pick(FAMILY_NAMES)),
            Value::Date(gen.date(1950, 2000)),
            Value::Float(salary),
            Value::from(domicile),
        ]);
    }
    WarehouseDelta::new()
        .append("party", parties)
        .append("individual", individuals)
}

/// The [`onboarding_delta`] batch as a row-level change feed — the producer
/// side of *streaming* ingestion: `soda_core::SnapshotHandle::absorb` (or
/// `soda_service::QueryService::ingest`) replays it into per-shard side
/// logs instead of rebuilding the owning index partitions.
pub fn onboarding_feed(db: &Database, seed: u64, count: usize) -> soda_ingest::ChangeFeed {
    onboarding_delta(db, seed, count).to_feed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enterprise::schema::core_physical_schema;
    use soda_relation::Database;

    fn db() -> Database {
        let mut db = Database::new();
        for schema in core_physical_schema() {
            db.create_table(schema).unwrap();
        }
        populate(&mut db, 42, 0.2);
        db
    }

    #[test]
    fn onboarding_delta_appends_new_parties_without_touching_pinned_counts() {
        let db = db();
        let delta = onboarding_delta(&db, 7, 5);
        assert_eq!(
            delta.changed_tables(),
            vec!["individual".to_string(), "party".to_string()]
        );
        assert_eq!(delta.row_count(), 10);
        let next = delta.apply(&db).unwrap();
        assert_eq!(
            next.table("party").unwrap().row_count(),
            db.table("party").unwrap().row_count() + 5
        );
        assert_eq!(
            next.table("individual").unwrap().row_count(),
            db.table("individual").unwrap().row_count() + 5
        );
        // Party ids continue after the current maximum: no collisions.
        let ids = next
            .run_sql("SELECT party_id FROM party")
            .unwrap()
            .row_count();
        assert_eq!(ids, next.table("party").unwrap().row_count());
        // The engineered Sara distribution is untouched by onboarding.
        let saras = next
            .run_sql("SELECT party_id FROM individual WHERE given_name = 'Sara'")
            .unwrap();
        assert_eq!(saras.row_count(), CURRENT_SARA);
        // Deterministic per seed.
        assert_eq!(delta, onboarding_delta(&db, 7, 5));
        assert_ne!(delta, onboarding_delta(&db, 8, 5));
    }

    #[test]
    fn sara_counts_reproduce_the_recall_gap() {
        let db = db();
        let current = db
            .run_sql("SELECT party_id FROM individual WHERE given_name = 'Sara'")
            .unwrap();
        assert_eq!(current.row_count(), CURRENT_SARA);
        let historic = db
            .run_sql("SELECT party_id FROM individual_name_hist WHERE given_name = 'Sara'")
            .unwrap();
        assert_eq!(historic.row_count(), HISTORIC_SARA);
    }

    #[test]
    fn credit_suisse_is_ambiguous_between_organizations_and_agreements() {
        let db = db();
        let orgs = db
            .run_sql("SELECT party_id FROM organization WHERE org_name LIKE '%Credit Suisse%'")
            .unwrap();
        assert!(orgs.row_count() >= 1);
        let agreements = db
            .run_sql(
                "SELECT agreement_id FROM agreement_td WHERE agreement_name LIKE '%Credit Suisse%'",
            )
            .unwrap();
        assert!(agreements.row_count() >= 1);
    }

    #[test]
    fn workload_literals_exist() {
        let db = db();
        for (sql, what) in [
            ("SELECT agreement_id FROM agreement_td WHERE agreement_name LIKE '%gold%'", "gold agreements"),
            ("SELECT order_id FROM trade_order_td WHERE currency_cd = 'YEN'", "YEN trade orders"),
            ("SELECT instrument_id FROM investment_product_td WHERE product_name LIKE '%Lehman XYZ%'", "Lehman XYZ product"),
            ("SELECT party_id FROM individual WHERE domicile_country = 'Switzerland'", "Swiss individuals"),
            ("SELECT party_id FROM individual WHERE salary >= 500000", "wealthy individuals"),
        ] {
            let rs = db.run_sql(sql).unwrap();
            assert!(rs.row_count() >= 1, "no rows for {what}");
        }
    }

    #[test]
    fn referential_integrity_of_trading_chain() {
        let db = db();
        let orders = db.table("trade_order_td").unwrap().row_count();
        let joined = db
            .run_sql(
                "SELECT trade_order_td.order_id FROM trade_order_td, account_td, agreement_td, party \
                 WHERE trade_order_td.account_id = account_td.account_id \
                 AND account_td.agreement_id = agreement_td.agreement_id \
                 AND agreement_td.party_id = party.party_id",
            )
            .unwrap();
        assert_eq!(joined.row_count(), orders);
    }

    #[test]
    fn employment_bridge_links_individuals_to_organizations() {
        let db = db();
        let joined = db
            .run_sql(
                "SELECT associate_employment.role FROM associate_employment, individual, organization \
                 WHERE associate_employment.individual_id = individual.party_id \
                 AND associate_employment.organization_id = organization.party_id",
            )
            .unwrap();
        assert_eq!(joined.row_count(), NUM_EMPLOYMENTS);
    }

    #[test]
    fn scale_factor_controls_transaction_volume() {
        let mut small = Database::new();
        for schema in core_physical_schema() {
            small.create_table(schema).unwrap();
        }
        populate(&mut small, 42, 0.1);
        let mut large = Database::new();
        for schema in core_physical_schema() {
            large.create_table(schema).unwrap();
        }
        populate(&mut large, 42, 0.5);
        assert!(
            large.table("trade_order_td").unwrap().row_count()
                > small.table("trade_order_td").unwrap().row_count() * 3
        );
        // Dimensions stay fixed.
        assert_eq!(
            large.table("individual").unwrap().row_count(),
            small.table("individual").unwrap().row_count()
        );
    }
}
