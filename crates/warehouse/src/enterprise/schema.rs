//! The core (populated) physical, logical and conceptual schema of the
//! synthetic enterprise warehouse.
//!
//! The schema mirrors the structural features the paper attributes its
//! results to: a `party` super-type with `individual` / `organization`
//! sub-types (Figure 10), bi-temporally historised name tables whose join keys
//! are *not* annotated in the metadata graph, an `associate_employment` bridge
//! table between the inheritance siblings, agreements → accounts → trade
//! orders → investment products → securities chains for the 5-way joins, and a
//! currency dimension.

use soda_relation::{DataType, TableSchema};

use crate::model::{
    AnnotatedForeignKey, ConceptualEntity, HistorizationLink, InheritanceGroup, LogicalEntity,
    Relationship, RelationshipKind, SchemaModel,
};

/// The core physical tables (all of them populated by the data generator).
pub fn core_physical_schema() -> Vec<TableSchema> {
    vec![
        TableSchema::builder("party")
            .column("party_id", DataType::Int)
            .column("party_type", DataType::Text)
            .column("open_dt", DataType::Date)
            .column("valid_from", DataType::Date)
            .column("valid_to", DataType::Date)
            .primary_key("party_id")
            .comment("customers and counterparties")
            .build(),
        TableSchema::builder("individual")
            .column("party_id", DataType::Int)
            .column("given_name", DataType::Text)
            .column("family_name", DataType::Text)
            .column("birth_dt", DataType::Date)
            .column("salary", DataType::Float)
            .column("domicile_country", DataType::Text)
            .primary_key("party_id")
            .foreign_key("party_id", "party", "party_id")
            .comment("private customers")
            .build(),
        TableSchema::builder("individual_name_hist")
            .column("party_id", DataType::Int)
            .column("given_name", DataType::Text)
            .column("family_name", DataType::Text)
            .column("valid_from", DataType::Date)
            .column("valid_to", DataType::Date)
            .comment("bi-temporal name history of private customers")
            .build(),
        TableSchema::builder("organization")
            .column("party_id", DataType::Int)
            .column("org_name", DataType::Text)
            .column("legal_form", DataType::Text)
            .column("country", DataType::Text)
            .primary_key("party_id")
            .foreign_key("party_id", "party", "party_id")
            .comment("corporate customers")
            .build(),
        TableSchema::builder("organization_name_hist")
            .column("party_id", DataType::Int)
            .column("org_name", DataType::Text)
            .column("valid_from", DataType::Date)
            .column("valid_to", DataType::Date)
            .comment("bi-temporal name history of corporate customers")
            .build(),
        TableSchema::builder("address")
            .column("address_id", DataType::Int)
            .column("party_id", DataType::Int)
            .column("street", DataType::Text)
            .column("city", DataType::Text)
            .column("country", DataType::Text)
            .column("valid_from", DataType::Date)
            .column("valid_to", DataType::Date)
            .primary_key("address_id")
            .foreign_key("party_id", "party", "party_id")
            .build(),
        TableSchema::builder("agreement_td")
            .column("agreement_id", DataType::Int)
            .column("agreement_name", DataType::Text)
            .column("party_id", DataType::Int)
            .column("open_dt", DataType::Date)
            .primary_key("agreement_id")
            .foreign_key("party_id", "party", "party_id")
            .comment("agreements and deals")
            .build(),
        TableSchema::builder("account_td")
            .column("account_id", DataType::Int)
            .column("agreement_id", DataType::Int)
            .column("currency_cd", DataType::Text)
            .column("account_type", DataType::Text)
            .primary_key("account_id")
            .foreign_key("agreement_id", "agreement_td", "agreement_id")
            .foreign_key("currency_cd", "currency", "currency_cd")
            .build(),
        TableSchema::builder("trade_order_td")
            .column("order_id", DataType::Int)
            .column("account_id", DataType::Int)
            .column("instrument_id", DataType::Int)
            .column("order_dt", DataType::Date)
            .column("amount", DataType::Float)
            .column("currency_cd", DataType::Text)
            .column("status", DataType::Text)
            .primary_key("order_id")
            .foreign_key("account_id", "account_td", "account_id")
            .foreign_key("instrument_id", "investment_product_td", "instrument_id")
            .foreign_key("currency_cd", "currency", "currency_cd")
            .comment("trade orders")
            .build(),
        TableSchema::builder("investment_product_td")
            .column("instrument_id", DataType::Int)
            .column("product_name", DataType::Text)
            .column("product_type", DataType::Text)
            .column("issuer", DataType::Text)
            .primary_key("instrument_id")
            .comment("investment products")
            .build(),
        TableSchema::builder("security_td")
            .column("security_id", DataType::Int)
            .column("sec_name", DataType::Text)
            .column("isin", DataType::Text)
            .column("currency_cd", DataType::Text)
            .primary_key("security_id")
            .foreign_key("currency_cd", "currency", "currency_cd")
            .build(),
        TableSchema::builder("product_contains_sec")
            .column("instrument_id", DataType::Int)
            .column("security_id", DataType::Int)
            .foreign_key("instrument_id", "investment_product_td", "instrument_id")
            .foreign_key("security_id", "security_td", "security_id")
            .comment("composition of structured products")
            .build(),
        TableSchema::builder("money_transaction_td")
            .column("txn_id", DataType::Int)
            .column("account_id", DataType::Int)
            .column("amount", DataType::Float)
            .column("currency_cd", DataType::Text)
            .column("txn_dt", DataType::Date)
            .primary_key("txn_id")
            .foreign_key("account_id", "account_td", "account_id")
            .foreign_key("currency_cd", "currency", "currency_cd")
            .build(),
        TableSchema::builder("currency")
            .column("currency_cd", DataType::Text)
            .column("currency_name", DataType::Text)
            .primary_key("currency_cd")
            .build(),
        TableSchema::builder("associate_employment")
            .column("individual_id", DataType::Int)
            .column("organization_id", DataType::Int)
            .column("role", DataType::Text)
            .foreign_key("individual_id", "individual", "party_id")
            .foreign_key("organization_id", "organization", "party_id")
            .comment("employment relationship between private and corporate customers")
            .build(),
        TableSchema::builder("party_classification")
            .column("party_id", DataType::Int)
            .column("segment", DataType::Text)
            .column("valid_from", DataType::Date)
            .foreign_key("party_id", "party", "party_id")
            .build(),
    ]
}

/// Logical entities of the core schema.
pub fn core_logical_entities() -> Vec<LogicalEntity> {
    vec![
        LogicalEntity {
            name: "Party".into(),
            attributes: vec!["party id".into(), "party type".into(), "open dt".into()],
            implemented_by: vec!["party".into()],
        },
        LogicalEntity {
            name: "Individual".into(),
            attributes: vec![
                "given name".into(),
                "family name".into(),
                "birth dt".into(),
                "salary".into(),
                "domicile country".into(),
            ],
            implemented_by: vec!["individual".into()],
        },
        LogicalEntity {
            name: "Individual Name History".into(),
            attributes: vec![
                "given name".into(),
                "family name".into(),
                "valid from".into(),
            ],
            implemented_by: vec!["individual_name_hist".into()],
        },
        LogicalEntity {
            name: "Organization".into(),
            attributes: vec!["org name".into(), "legal form".into(), "country".into()],
            implemented_by: vec!["organization".into()],
        },
        LogicalEntity {
            name: "Organization Name History".into(),
            attributes: vec!["org name".into(), "valid from".into()],
            implemented_by: vec!["organization_name_hist".into()],
        },
        LogicalEntity {
            name: "Address".into(),
            attributes: vec!["street".into(), "city".into(), "country".into()],
            implemented_by: vec!["address".into()],
        },
        LogicalEntity {
            name: "Agreement".into(),
            attributes: vec!["agreement name".into(), "open dt".into()],
            implemented_by: vec!["agreement_td".into()],
        },
        LogicalEntity {
            name: "Account".into(),
            attributes: vec!["currency cd".into(), "account type".into()],
            implemented_by: vec!["account_td".into()],
        },
        LogicalEntity {
            name: "Trade Order".into(),
            attributes: vec![
                "order dt".into(),
                "amount".into(),
                "currency cd".into(),
                "status".into(),
            ],
            implemented_by: vec!["trade_order_td".into()],
        },
        LogicalEntity {
            name: "Investment Product".into(),
            attributes: vec![
                "product name".into(),
                "product type".into(),
                "issuer".into(),
            ],
            implemented_by: vec!["investment_product_td".into()],
        },
        LogicalEntity {
            name: "Security".into(),
            attributes: vec!["sec name".into(), "isin".into()],
            implemented_by: vec!["security_td".into()],
        },
        LogicalEntity {
            name: "Product Composition".into(),
            attributes: vec!["instrument id".into(), "security id".into()],
            implemented_by: vec!["product_contains_sec".into()],
        },
        LogicalEntity {
            name: "Money Transaction".into(),
            attributes: vec!["amount".into(), "currency cd".into(), "txn dt".into()],
            implemented_by: vec!["money_transaction_td".into()],
        },
        LogicalEntity {
            name: "Currency".into(),
            attributes: vec!["currency cd".into(), "currency name".into()],
            implemented_by: vec!["currency".into()],
        },
        LogicalEntity {
            name: "Associate Employment".into(),
            attributes: vec!["role".into()],
            implemented_by: vec!["associate_employment".into()],
        },
        LogicalEntity {
            name: "Party Classification".into(),
            attributes: vec!["segment".into(), "valid from".into()],
            implemented_by: vec!["party_classification".into()],
        },
    ]
}

/// Conceptual entities of the core schema.
pub fn core_conceptual_entities() -> Vec<ConceptualEntity> {
    vec![
        ConceptualEntity {
            name: "Parties".into(),
            attributes: vec!["name".into(), "type".into(), "domicile".into()],
            refined_by: vec!["Party".into(), "Individual".into(), "Organization".into()],
        },
        ConceptualEntity {
            name: "Addresses".into(),
            attributes: vec!["street".into(), "city".into(), "country".into()],
            refined_by: vec!["Address".into()],
        },
        ConceptualEntity {
            name: "Agreements".into(),
            attributes: vec!["agreement name".into(), "opening date".into()],
            refined_by: vec!["Agreement".into()],
        },
        ConceptualEntity {
            name: "Accounts".into(),
            attributes: vec!["currency".into(), "account type".into()],
            refined_by: vec!["Account".into()],
        },
        ConceptualEntity {
            name: "Trade Orders".into(),
            attributes: vec!["order date".into(), "amount".into(), "status".into()],
            refined_by: vec!["Trade Order".into()],
        },
        ConceptualEntity {
            name: "Investment Products".into(),
            attributes: vec![
                "product name".into(),
                "product type".into(),
                "issuer".into(),
            ],
            refined_by: vec![
                "Investment Product".into(),
                "Security".into(),
                "Product Composition".into(),
            ],
        },
        ConceptualEntity {
            name: "Payments".into(),
            attributes: vec!["amount".into(), "payment date".into()],
            refined_by: vec!["Money Transaction".into()],
        },
        ConceptualEntity {
            name: "Currencies".into(),
            attributes: vec!["currency code".into(), "currency name".into()],
            refined_by: vec!["Currency".into()],
        },
        ConceptualEntity {
            name: "Employment".into(),
            attributes: vec!["role".into()],
            refined_by: vec!["Associate Employment".into()],
        },
        ConceptualEntity {
            name: "Customer Segments".into(),
            attributes: vec!["segment".into()],
            refined_by: vec!["Party Classification".into()],
        },
    ]
}

/// Relationship lists for both upper layers.
pub fn core_relationships() -> (Vec<Relationship>, Vec<Relationship>) {
    let conceptual = vec![
        Relationship {
            from: "Parties".into(),
            to: "Addresses".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Parties".into(),
            to: "Agreements".into(),
            kind: RelationshipKind::ManyToMany,
        },
        Relationship {
            from: "Agreements".into(),
            to: "Accounts".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Accounts".into(),
            to: "Trade Orders".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Trade Orders".into(),
            to: "Investment Products".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Accounts".into(),
            to: "Payments".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Parties".into(),
            to: "Employment".into(),
            kind: RelationshipKind::ManyToMany,
        },
        Relationship {
            from: "Parties".into(),
            to: "Customer Segments".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Investment Products".into(),
            to: "Currencies".into(),
            kind: RelationshipKind::ManyToOne,
        },
    ];
    let logical = vec![
        Relationship {
            from: "Party".into(),
            to: "Individual".into(),
            kind: RelationshipKind::Inheritance,
        },
        Relationship {
            from: "Party".into(),
            to: "Organization".into(),
            kind: RelationshipKind::Inheritance,
        },
        Relationship {
            from: "Individual".into(),
            to: "Individual Name History".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Organization".into(),
            to: "Organization Name History".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Party".into(),
            to: "Address".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Party".into(),
            to: "Agreement".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Agreement".into(),
            to: "Account".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Account".into(),
            to: "Trade Order".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Trade Order".into(),
            to: "Investment Product".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Investment Product".into(),
            to: "Security".into(),
            kind: RelationshipKind::ManyToMany,
        },
        Relationship {
            from: "Account".into(),
            to: "Money Transaction".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Individual".into(),
            to: "Associate Employment".into(),
            kind: RelationshipKind::ManyToMany,
        },
        Relationship {
            from: "Organization".into(),
            to: "Associate Employment".into(),
            kind: RelationshipKind::ManyToMany,
        },
        Relationship {
            from: "Party".into(),
            to: "Party Classification".into(),
            kind: RelationshipKind::ManyToOne,
        },
        Relationship {
            from: "Account".into(),
            to: "Currency".into(),
            kind: RelationshipKind::ManyToOne,
        },
    ];
    (conceptual, logical)
}

/// Assembles the core schema model (no padding), including the deliberate
/// historisation gap: the `*_name_hist` join keys exist physically but are
/// *not* annotated in the metadata graph.
pub fn core_model() -> SchemaModel {
    core_model_annotated(false)
}

/// Like [`core_model`] but optionally annotating the bi-temporal
/// historization relationships in the metadata graph — the remedy the paper
/// proposes in §5.2.1 ("the schema graph needs to be annotated with join
/// relationships that reflect bi-temporal historization") and lists as future
/// work in §7.  With `annotate_historization = true` the `*_name_hist` join
/// keys become visible to SODA as explicit join nodes, and historization nodes
/// describe which table each history table historizes.
pub fn core_model_annotated(annotate_historization: bool) -> SchemaModel {
    let (conceptual_relationships, logical_relationships) = core_relationships();
    let historization = if annotate_historization {
        vec![
            HistorizationLink {
                hist_table: "individual_name_hist".into(),
                current_table: "individual".into(),
                valid_from_column: "valid_from".into(),
                valid_to_column: "valid_to".into(),
            },
            HistorizationLink {
                hist_table: "organization_name_hist".into(),
                current_table: "organization".into(),
                valid_from_column: "valid_from".into(),
                valid_to_column: "valid_to".into(),
            },
        ]
    } else {
        Vec::new()
    };
    let mut model = SchemaModel {
        conceptual: core_conceptual_entities(),
        conceptual_relationships,
        logical: core_logical_entities(),
        logical_relationships,
        physical: core_physical_schema(),
        foreign_keys: vec![
            AnnotatedForeignKey {
                table: "individual_name_hist".into(),
                column: "party_id".into(),
                ref_table: "individual".into(),
                ref_column: "party_id".into(),
                annotated: annotate_historization,
                explicit_join_node: annotate_historization,
            },
            AnnotatedForeignKey {
                table: "organization_name_hist".into(),
                column: "party_id".into(),
                ref_table: "organization".into(),
                ref_column: "party_id".into(),
                annotated: annotate_historization,
                explicit_join_node: annotate_historization,
            },
            // A couple of the central joins use explicit join nodes, the
            // Credit Suisse style described in §4.2.1.
            AnnotatedForeignKey {
                table: "trade_order_td".into(),
                column: "account_id".into(),
                ref_table: "account_td".into(),
                ref_column: "account_id".into(),
                annotated: true,
                explicit_join_node: true,
            },
            AnnotatedForeignKey {
                table: "account_td".into(),
                column: "agreement_id".into(),
                ref_table: "agreement_td".into(),
                ref_column: "agreement_id".into(),
                annotated: true,
                explicit_join_node: true,
            },
        ],
        inheritance: vec![InheritanceGroup {
            parent_table: "party".into(),
            child_tables: vec!["individual".into(), "organization".into()],
        }],
        historization,
    };
    model.adopt_physical_foreign_keys();
    model
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_schema_has_sixteen_tables() {
        assert_eq!(core_physical_schema().len(), 16);
        assert_eq!(core_logical_entities().len(), 16);
        assert_eq!(core_conceptual_entities().len(), 10);
    }

    #[test]
    fn historisation_joins_are_unannotated() {
        let model = core_model();
        let hist_fks: Vec<_> = model
            .foreign_keys
            .iter()
            .filter(|fk| fk.table.ends_with("_name_hist"))
            .collect();
        assert_eq!(hist_fks.len(), 2);
        assert!(hist_fks.iter().all(|fk| !fk.annotated));
        // All other FKs are annotated.
        assert!(model
            .foreign_keys
            .iter()
            .filter(|fk| !fk.table.ends_with("_name_hist"))
            .all(|fk| fk.annotated));
    }

    #[test]
    fn explicit_join_nodes_are_used_on_the_trading_chain() {
        let model = core_model();
        let explicit: Vec<_> = model
            .foreign_keys
            .iter()
            .filter(|fk| fk.explicit_join_node)
            .collect();
        assert_eq!(explicit.len(), 2);
    }

    #[test]
    fn bridge_between_inheritance_siblings_exists() {
        let model = core_model();
        let bridge = model.physical_table("associate_employment").unwrap();
        assert_eq!(bridge.foreign_keys.len(), 2);
        assert_eq!(bridge.foreign_keys[0].ref_table, "individual");
        assert_eq!(bridge.foreign_keys[1].ref_table, "organization");
    }

    #[test]
    fn every_logical_entity_points_at_an_existing_physical_table() {
        let model = core_model();
        for e in &model.logical {
            for t in &e.implemented_by {
                assert!(model.physical_table(t).is_some(), "missing table {t}");
            }
        }
    }

    #[test]
    fn every_conceptual_refinement_points_at_an_existing_logical_entity() {
        let model = core_model();
        for c in &model.conceptual {
            for l in &c.refined_by {
                assert!(
                    model.logical.iter().any(|e| e.name == *l),
                    "missing logical entity {l}"
                );
            }
        }
    }
}
