//! Domain ontologies.
//!
//! A domain ontology classifies data for a specific domain (§2.2 of the
//! paper): which entities represent private vs. corporate customers, what
//! "trading volume" means, and business terms defined as filters over the
//! physical schema ("wealthy customers" := salary above a threshold).

/// What an ontology concept classifies (i.e. where a `classifies` edge points
/// in the metadata graph).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum ClassifyTarget {
    /// A conceptual entity by name.
    Conceptual(String),
    /// A logical entity by name.
    Logical(String),
    /// A physical table by name.
    Table(String),
    /// A physical column.
    Column {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// Another ontology concept (builds a small concept hierarchy).
    Concept(String),
}

/// A metadata-defined filter attached to a concept ("wealthy customers").
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ConceptFilter {
    /// Table the filter constrains.
    pub table: String,
    /// Column the filter constrains.
    pub column: String,
    /// Comparison operator as text (`>=`, `=`, `like`, …).
    pub op: String,
    /// Literal value as text.
    pub value: String,
}

/// One concept of the domain ontology.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct OntologyConcept {
    /// Stable slug used to build the node URI.
    pub slug: String,
    /// Primary business name ("private customers").
    pub name: String,
    /// Additional names the lookup step should also match.
    pub alt_names: Vec<String>,
    /// Classification targets.
    pub classifies: Vec<ClassifyTarget>,
    /// Optional metadata-defined filter.
    pub filter: Option<ConceptFilter>,
}

impl OntologyConcept {
    /// Creates a concept with no classifications.
    pub fn new(slug: impl Into<String>, name: impl Into<String>) -> Self {
        Self {
            slug: slug.into(),
            name: name.into(),
            alt_names: Vec::new(),
            classifies: Vec::new(),
            filter: None,
        }
    }

    /// Adds an alternative name.
    pub fn alt(mut self, name: impl Into<String>) -> Self {
        self.alt_names.push(name.into());
        self
    }

    /// Adds a classification target.
    pub fn classifies(mut self, target: ClassifyTarget) -> Self {
        self.classifies.push(target);
        self
    }

    /// Attaches a metadata-defined filter.
    pub fn with_filter(mut self, filter: ConceptFilter) -> Self {
        self.filter = Some(filter);
        self
    }

    /// All names (primary plus alternatives).
    pub fn all_names(&self) -> Vec<&str> {
        let mut v = vec![self.name.as_str()];
        v.extend(self.alt_names.iter().map(|s| s.as_str()));
        v
    }
}

/// A domain ontology: a flat list of concepts (the paper's ontologies are
/// shallow classification schemes).
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct DomainOntology {
    /// The concepts.
    pub concepts: Vec<OntologyConcept>,
}

impl DomainOntology {
    /// Creates an empty ontology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a concept.
    pub fn add(&mut self, concept: OntologyConcept) -> &mut Self {
        self.concepts.push(concept);
        self
    }

    /// Finds a concept by slug.
    pub fn concept(&self, slug: &str) -> Option<&OntologyConcept> {
        self.concepts.iter().find(|c| c.slug == slug)
    }

    /// Finds concepts matching a (case-insensitive) name.
    pub fn by_name(&self, name: &str) -> Vec<&OntologyConcept> {
        self.concepts
            .iter()
            .filter(|c| c.all_names().iter().any(|n| n.eq_ignore_ascii_case(name)))
            .collect()
    }

    /// Number of concepts.
    pub fn len(&self) -> usize {
        self.concepts.len()
    }

    /// Whether the ontology has no concepts.
    pub fn is_empty(&self) -> bool {
        self.concepts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ontology() -> DomainOntology {
        let mut o = DomainOntology::new();
        o.add(
            OntologyConcept::new("customers", "customers")
                .alt("clients")
                .classifies(ClassifyTarget::Conceptual("Parties".into())),
        );
        o.add(
            OntologyConcept::new("wealthy-customers", "wealthy customers")
                .classifies(ClassifyTarget::Table("individual".into()))
                .with_filter(ConceptFilter {
                    table: "individual".into(),
                    column: "salary".into(),
                    op: ">=".into(),
                    value: "500000".into(),
                }),
        );
        o
    }

    #[test]
    fn lookup_by_slug_and_name() {
        let o = ontology();
        assert_eq!(o.len(), 2);
        assert!(o.concept("customers").is_some());
        assert!(o.concept("missing").is_none());
        assert_eq!(o.by_name("CLIENTS").len(), 1);
        assert_eq!(o.by_name("customers").len(), 1);
        assert!(o.by_name("unknown").is_empty());
    }

    #[test]
    fn filters_and_targets_are_preserved() {
        let o = ontology();
        let wealthy = o.concept("wealthy-customers").unwrap();
        let f = wealthy.filter.as_ref().unwrap();
        assert_eq!(f.op, ">=");
        assert_eq!(f.value, "500000");
        assert_eq!(wealthy.classifies.len(), 1);
    }

    #[test]
    fn all_names_includes_alternatives() {
        let o = ontology();
        let c = o.concept("customers").unwrap();
        assert_eq!(c.all_names(), vec!["customers", "clients"]);
    }
}
