//! Deterministic, seeded synthetic data generation helpers.
//!
//! The paper's base data is a 220 GB anonymised extract of a production
//! warehouse.  We generate laptop-scale synthetic data instead; what matters
//! for reproducing the experiments is that specific literals the workload
//! queries look for ("Sara", "Credit Suisse", "Zurich", "YEN", "gold",
//! "Lehman XYZ", "Switzerland") occur in the right tables and columns, and
//! that historisation produces multiple versions per entity.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pool of given names; "Sara" is deliberately present (queries Q2.*).
pub const GIVEN_NAMES: &[&str] = &[
    "Sara", "Peter", "Anna", "Luca", "Nina", "Marco", "Julia", "David", "Laura", "Stefan",
    "Claudia", "Thomas", "Monika", "Andreas", "Petra", "Daniel", "Ursula", "Martin", "Karin",
    "Urs",
];

/// Pool of family names; "Guttinger" is deliberately present (Query 1).
pub const FAMILY_NAMES: &[&str] = &[
    "Guttinger",
    "Meier",
    "Mueller",
    "Schmid",
    "Keller",
    "Weber",
    "Huber",
    "Schneider",
    "Frei",
    "Baumann",
    "Fischer",
    "Brunner",
    "Gerber",
    "Widmer",
    "Zimmermann",
    "Moser",
    "Graf",
    "Wyss",
    "Roth",
    "Suter",
];

/// Pool of cities; "Zurich" is deliberately present (introduction query).
pub const CITIES: &[&str] = &[
    "Zurich",
    "Geneva",
    "Basel",
    "Bern",
    "Lausanne",
    "Lugano",
    "Winterthur",
    "St. Gallen",
    "Lucerne",
    "Zug",
];

/// Pool of countries; "Switzerland" is deliberately present (Q9.0).
pub const COUNTRIES: &[&str] = &[
    "Switzerland",
    "Germany",
    "France",
    "Italy",
    "Austria",
    "Liechtenstein",
    "United Kingdom",
    "United States",
    "Japan",
    "Singapore",
];

/// Pool of organisation names; "Credit Suisse" is deliberately present (Q3.*).
pub const ORG_NAMES: &[&str] = &[
    "Credit Suisse",
    "Helvetia Insurance",
    "Alpine Foods",
    "Swiss Rail Holdings",
    "Lakeside Pharma",
    "Matterhorn Logistics",
    "Edelweiss Media",
    "Glarus Textiles",
    "Rhone Energy",
    "Jungfrau Tourism",
    "Basel Chemicals",
    "Lemanic Shipping",
    "Uetliberg Capital",
    "Sihl Paper",
    "Limmat Engineering",
    "Bellevue Retail",
    "Paradeplatz Consulting",
    "Engadin Resorts",
    "Ticino Vineyards",
    "Aare Construction",
];

/// Pool of legal forms.
pub const LEGAL_FORMS: &[&str] = &["AG", "GmbH", "SA", "Cooperative", "Foundation"];

/// Pool of currencies; "YEN" is deliberately present (Q7.0).
pub const CURRENCIES: &[(&str, &str)] = &[
    ("CHF", "Swiss Franc"),
    ("USD", "US Dollar"),
    ("EUR", "Euro"),
    ("YEN", "Japanese Yen"),
    ("GBP", "British Pound"),
    ("SGD", "Singapore Dollar"),
    ("SEK", "Swedish Krona"),
    ("AUD", "Australian Dollar"),
];

/// Pool of investment-product names; "Lehman XYZ Certificate" is deliberately
/// present (Q8.0).
pub const PRODUCT_NAMES: &[&str] = &[
    "Lehman XYZ Certificate",
    "Global Equity Fund",
    "Swiss Market Tracker",
    "Emerging Markets Bond",
    "Gold Bullion Note",
    "Tech Growth Basket",
    "Green Energy Fund",
    "Real Estate Income Trust",
    "Dividend Aristocrats Fund",
    "Short Term Money Market",
    "Convertible Bond Fund",
    "High Yield Credit Note",
    "Asia Pacific Equity Fund",
    "Commodity Futures Basket",
    "Inflation Protected Bond",
];

/// Pool of product types.
pub const PRODUCT_TYPES: &[&str] = &["share", "fund", "hedge fund", "certificate", "bond"];

/// Pool of agreement-name templates; "Gold" appears deliberately (Q4.0) and
/// "Credit Suisse" appears in one agreement name (Q3.2 ambiguity).
pub const AGREEMENT_NAMES: &[&str] = &[
    "Gold Savings Agreement",
    "Credit Suisse Master Agreement",
    "Private Banking Mandate",
    "Custody Agreement",
    "Retirement Savings Plan",
    "Portfolio Management Mandate",
    "Lombard Credit Facility",
    "Mortgage Agreement",
    "Trading Account Agreement",
    "Pension Fund Mandate",
];

/// Pool of street names.
pub const STREETS: &[&str] = &[
    "Bahnhofstrasse",
    "Paradeplatz",
    "Limmatquai",
    "Seestrasse",
    "Hauptstrasse",
    "Dorfstrasse",
    "Kirchgasse",
    "Marktgasse",
    "Industriestrasse",
    "Bergweg",
];

/// A deterministic random generator wrapper used by the warehouse builders.
#[derive(Debug)]
pub struct DataGen {
    rng: StdRng,
}

impl DataGen {
    /// Creates a generator from a seed (the same seed always generates the
    /// same warehouse contents).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Picks a reference to one element of a slice.
    pub fn pick<'a, T>(&mut self, pool: &'a [T]) -> &'a T {
        &pool[self.rng.gen_range(0..pool.len())]
    }

    /// Picks an index in `0..n`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Random integer in an inclusive range.
    pub fn int(&mut self, low: i64, high: i64) -> i64 {
        self.rng.gen_range(low..=high)
    }

    /// Random float in a half-open range, rounded to two decimals.
    pub fn amount(&mut self, low: f64, high: f64) -> f64 {
        (self.rng.gen_range(low..high) * 100.0).round() / 100.0
    }

    /// Random date between two years (inclusive).
    pub fn date(&mut self, year_low: i32, year_high: i32) -> soda_relation::Date {
        soda_relation::Date::new(
            self.rng.gen_range(year_low..=year_high),
            self.rng.gen_range(1..=12) as u8,
            self.rng.gen_range(1..=28) as u8,
        )
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let mut a = DataGen::new(7);
        let mut b = DataGen::new(7);
        for _ in 0..50 {
            assert_eq!(a.int(0, 1000), b.int(0, 1000));
        }
        let mut c = DataGen::new(8);
        let series_a: Vec<i64> = (0..20).map(|_| DataGen::new(7).int(0, 1000)).collect();
        let series_c: Vec<i64> = (0..20).map(|_| c.int(0, 1000)).collect();
        assert_ne!(series_a, series_c);
    }

    #[test]
    fn pools_contain_the_literals_the_workload_needs() {
        assert!(GIVEN_NAMES.contains(&"Sara"));
        assert!(FAMILY_NAMES.contains(&"Guttinger"));
        assert!(CITIES.contains(&"Zurich"));
        assert!(COUNTRIES.contains(&"Switzerland"));
        assert!(ORG_NAMES.contains(&"Credit Suisse"));
        assert!(CURRENCIES.iter().any(|(c, _)| *c == "YEN"));
        assert!(PRODUCT_NAMES.iter().any(|p| p.contains("Lehman XYZ")));
        assert!(AGREEMENT_NAMES
            .iter()
            .any(|a| a.to_lowercase().contains("gold")));
        assert!(AGREEMENT_NAMES.iter().any(|a| a.contains("Credit Suisse")));
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = DataGen::new(1);
        for _ in 0..100 {
            let v = g.int(5, 10);
            assert!((5..=10).contains(&v));
            let a = g.amount(1.0, 2.0);
            assert!((1.0..2.01).contains(&a));
            let d = g.date(2009, 2012);
            assert!((2009..=2012).contains(&d.year));
        }
    }
}
