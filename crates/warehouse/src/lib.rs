//! # soda-warehouse
//!
//! Synthetic data warehouses for the SODA reproduction.
//!
//! The paper evaluates SODA on the Credit Suisse enterprise data warehouse,
//! which is obviously not available; this crate provides two substitutes whose
//! *structure* reproduces everything SODA's behaviour depends on:
//!
//! * [`minibank`] — the paper's running example (Section 2, Figures 1 and 2):
//!   parties specialised into individuals and organizations, transactions
//!   specialised into financial-instrument and money transactions, addresses,
//!   financial instruments, securities and the `fi_contains_sec` bridge.
//! * [`enterprise`] — a warehouse whose metadata-graph statistics match
//!   Table 1 of the paper exactly (226 conceptual entities, 436 logical
//!   entities, 472 physical tables, 3181 columns), including multi-level
//!   inheritance, bridge tables between inheritance siblings, bi-temporal name
//!   history whose join keys are *not* annotated in the metadata graph, and
//!   padding subject areas that carry no data but full metadata.
//!
//! Both warehouses come with a domain ontology ([`ontology`]), a curated
//! DBpedia synonym extract ([`dbpedia`]) and a [`graph_builder`] that turns
//! the three-layer [`model::SchemaModel`] into the metadata graph SODA's
//! patterns match against.

pub mod datagen;
pub mod dbpedia;
pub mod delta;
pub mod enterprise;
pub mod graph_builder;
pub mod minibank;
pub mod model;
pub mod ontology;

pub use dbpedia::{DbpediaEntry, SynonymStore, SynonymTarget};
pub use delta::{TableDelta, WarehouseDelta};
pub use graph_builder::{build_graph, phrase, slug};
pub use model::{
    AnnotatedForeignKey, ConceptualEntity, HistorizationLink, InheritanceGroup, LogicalEntity,
    Relationship, RelationshipKind, SchemaModel, SchemaStats, Warehouse,
};
pub use ontology::{ClassifyTarget, ConceptFilter, DomainOntology, OntologyConcept};
