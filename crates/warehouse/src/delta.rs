//! Incremental warehouse updates: the feed a hot snapshot swap consumes.
//!
//! An enterprise warehouse is never rebuilt wholesale — nightly batch feeds
//! append to the transactional tables and occasionally restate a dimension
//! (§6 of the paper describes exactly this churn at Credit Suisse).  A
//! [`WarehouseDelta`] captures such a feed as per-table [`TableDelta`]s,
//! [`apply`](WarehouseDelta::apply) materialises it into a *new* [`Database`]
//! value (the current one stays untouched — snapshots are immutable), and
//! [`changed_tables`](WarehouseDelta::changed_tables) names exactly the
//! tables whose inverted-index partitions the swap layer
//! (`soda_core::SnapshotHandle::rebuild_shards`) must rebuild.  Everything
//! else — the other partitions, the classification index, the join catalog —
//! keeps serving unchanged.

use std::collections::BTreeMap;

use soda_ingest::ChangeFeed;
use soda_relation::{Database, Result, Row};

/// The change applied to one table.
#[derive(Debug, Clone, PartialEq)]
pub enum TableDelta {
    /// Rows appended after the existing ones (batch feed).
    Append(Vec<Row>),
    /// The table's content replaced wholesale (dimension restatement).
    Replace(Vec<Row>),
}

/// A set of per-table changes, applied atomically to a copy of the database.
///
/// ```
/// use soda_relation::Value;
/// use soda_warehouse::delta::WarehouseDelta;
///
/// let w = soda_warehouse::minibank::build(42);
/// let delta = WarehouseDelta::new().append(
///     "addresses",
///     vec![vec![
///         Value::Int(999),
///         Value::Int(1),
///         Value::from("Lake Road 1"),
///         Value::from("Mountain View"),
///         Value::from("Switzerland"),
///     ]],
/// );
/// let next = delta.apply(&w.database).unwrap();
/// assert_eq!(
///     next.table("addresses").unwrap().row_count(),
///     w.database.table("addresses").unwrap().row_count() + 1,
/// );
/// assert_eq!(delta.changed_tables(), vec!["addresses".to_string()]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarehouseDelta {
    /// Per-table change, keyed by (lower-cased) table name so
    /// `changed_tables` is deterministic.
    tables: BTreeMap<String, TableDelta>,
}

impl WarehouseDelta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds appended rows for `table` (merging with any rows already staged
    /// for it; an earlier `Replace` keeps replace semantics and gains the
    /// rows).
    pub fn append(mut self, table: impl Into<String>, rows: Vec<Row>) -> Self {
        let key = table.into().to_lowercase();
        match self.tables.entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(TableDelta::Append(rows));
            }
            std::collections::btree_map::Entry::Occupied(mut e) => match e.get_mut() {
                TableDelta::Append(existing) | TableDelta::Replace(existing) => {
                    existing.extend(rows);
                }
            },
        }
        self
    }

    /// Stages a wholesale replacement of `table`'s rows (overriding anything
    /// previously staged for it).
    pub fn replace(mut self, table: impl Into<String>, rows: Vec<Row>) -> Self {
        self.tables
            .insert(table.into().to_lowercase(), TableDelta::Replace(rows));
        self
    }

    /// True when the delta stages no changes.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// The tables this delta touches, sorted — exactly the `tables` argument
    /// a per-shard snapshot rebuild wants.
    pub fn changed_tables(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Total number of staged rows across all tables.
    pub fn row_count(&self) -> usize {
        self.tables
            .values()
            .map(|d| match d {
                TableDelta::Append(rows) | TableDelta::Replace(rows) => rows.len(),
            })
            .sum()
    }

    /// Adapts the delta into a row-level [`ChangeFeed`] — the streaming
    /// ingestion shape: appends become one event per row, replacements one
    /// event per table.  Replaying the feed
    /// (`soda_ingest::Ingestor::absorb_into`, or
    /// `soda_core::SnapshotHandle::absorb` end to end) produces exactly the
    /// database [`apply`](Self::apply) would, but accumulates the indexed
    /// consequences in per-shard side logs instead of forcing a partition
    /// rebuild — the batch and streaming paths consume one source of truth.
    pub fn to_feed(&self) -> ChangeFeed {
        let mut feed = ChangeFeed::new();
        for (table, delta) in &self.tables {
            feed = match delta {
                TableDelta::Append(rows) => feed.append_rows(table.clone(), rows.clone()),
                TableDelta::Replace(rows) => feed.replace(table.clone(), rows.clone()),
            };
        }
        feed
    }

    /// Materialises the delta into a new database value.  The input is never
    /// mutated; on any schema violation the error is returned and no partial
    /// state escapes (the half-applied copy is dropped).
    pub fn apply(&self, db: &Database) -> Result<Database> {
        let mut next = db.clone();
        for (table, delta) in &self.tables {
            match delta {
                TableDelta::Append(rows) => {
                    next.insert_all(table, rows.iter().cloned())?;
                }
                TableDelta::Replace(rows) => {
                    next.table_mut(table)?.truncate();
                    next.insert_all(table, rows.iter().cloned())?;
                }
            }
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_relation::Value;

    fn minibank_db() -> Database {
        crate::minibank::build(42).database
    }

    fn address_row(id: i64, city: &str) -> Row {
        vec![
            Value::Int(id),
            Value::Int(1),
            Value::from("Main St 1"),
            Value::from(city),
            Value::from("Switzerland"),
        ]
    }

    #[test]
    fn append_adds_rows_without_touching_the_source() {
        let db = minibank_db();
        let before = db.table("addresses").unwrap().row_count();
        let delta = WarehouseDelta::new().append("addresses", vec![address_row(900, "Basel")]);
        let next = delta.apply(&db).unwrap();
        assert_eq!(db.table("addresses").unwrap().row_count(), before);
        assert_eq!(next.table("addresses").unwrap().row_count(), before + 1);
        assert_eq!(delta.row_count(), 1);
    }

    #[test]
    fn replace_swaps_the_whole_table() {
        let db = minibank_db();
        let delta = WarehouseDelta::new().replace(
            "addresses",
            vec![address_row(1, "Basel"), address_row(2, "Chur")],
        );
        let next = delta.apply(&db).unwrap();
        assert_eq!(next.table("addresses").unwrap().row_count(), 2);
        assert!(db.table("addresses").unwrap().row_count() > 2);
    }

    #[test]
    fn changed_tables_are_sorted_and_case_folded() {
        let delta = WarehouseDelta::new()
            .append("Transactions", vec![])
            .append("ADDRESSES", vec![]);
        assert_eq!(
            delta.changed_tables(),
            vec!["addresses".to_string(), "transactions".to_string()]
        );
        assert!(!delta.is_empty());
        assert!(WarehouseDelta::new().is_empty());
    }

    #[test]
    fn repeated_appends_merge() {
        let delta = WarehouseDelta::new()
            .append("addresses", vec![address_row(900, "Basel")])
            .append("addresses", vec![address_row(901, "Chur")]);
        assert_eq!(delta.row_count(), 2);
        assert_eq!(delta.changed_tables().len(), 1);
    }

    #[test]
    fn schema_violations_surface_and_leave_the_source_intact() {
        let db = minibank_db();
        let delta =
            WarehouseDelta::new().append("addresses", vec![vec![Value::from("wrong arity")]]);
        assert!(delta.apply(&db).is_err());
        // Unknown tables error too.
        let delta = WarehouseDelta::new().append("no_such_table", vec![]);
        assert!(delta.apply(&db).is_err());
    }

    #[test]
    fn empty_delta_applies_to_an_identical_database() {
        let db = minibank_db();
        let delta = WarehouseDelta::new();
        assert!(delta.is_empty());
        assert!(delta.changed_tables().is_empty());
        let next = delta.apply(&db).unwrap();
        assert_eq!(next.table_count(), db.table_count());
        for table in db.tables() {
            let applied = next.table(table.name()).unwrap();
            assert_eq!(applied.rows(), table.rows(), "{}", table.name());
        }
        assert!(delta.to_feed().is_empty());
    }

    #[test]
    fn replace_of_an_absent_table_errors_before_any_change() {
        let db = minibank_db();
        let rows_before = db.table("addresses").unwrap().row_count();
        let delta = WarehouseDelta::new()
            .replace("addresses", vec![address_row(1, "Basel")])
            .replace("no_such_dimension", vec![address_row(2, "Chur")]);
        assert!(delta.apply(&db).is_err());
        // The *source* is untouched even though another staged table was
        // valid — apply works on a discarded copy.
        assert_eq!(db.table("addresses").unwrap().row_count(), rows_before);
    }

    #[test]
    fn append_with_mismatched_arity_errors_per_row() {
        let db = minibank_db();
        // One good row, one short row: the delta as a whole is rejected.
        let delta = WarehouseDelta::new().append(
            "addresses",
            vec![address_row(900, "Basel"), vec![Value::Int(901)]],
        );
        assert!(delta.apply(&db).is_err());
        assert_eq!(delta.row_count(), 2);
        // A wrongly *typed* row of the right arity is rejected too.
        let mut typed = address_row(902, "Basel");
        typed[0] = Value::from("not an id");
        let delta = WarehouseDelta::new().append("addresses", vec![typed]);
        assert!(delta.apply(&db).is_err());
    }

    #[test]
    fn to_feed_replays_to_the_same_database_as_apply() {
        let db = minibank_db();
        let delta = WarehouseDelta::new()
            .append(
                "addresses",
                vec![address_row(900, "Basel"), address_row(901, "Chur")],
            )
            .replace("organizations", vec![]);
        let feed = delta.to_feed();
        assert_eq!(feed.row_count(), delta.row_count());
        assert_eq!(feed.tables(), delta.changed_tables());
        let applied = delta.apply(&db).unwrap();
        let mut replayed = db.clone();
        soda_ingest::Ingestor::new(1)
            .apply_only(&mut replayed, &feed)
            .unwrap();
        for table in applied.tables() {
            assert_eq!(
                replayed.table(table.name()).unwrap().rows(),
                table.rows(),
                "{} diverged between apply and feed replay",
                table.name()
            );
        }
    }
}
