//! DBpedia synonym store.
//!
//! The paper only keeps DBpedia entries that have a direct connection to terms
//! of the integrated schema ("customer", "client", "political organization" →
//! Parties).  This module models exactly that: a list of synonym terms, each
//! pointing at an ontology concept or a schema entity.  The lookup step ranks
//! DBpedia hits lower than domain-ontology hits.

/// What a DBpedia term points at.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum SynonymTarget {
    /// An ontology concept by slug.
    Concept(String),
    /// A conceptual entity by name.
    Conceptual(String),
    /// A logical entity by name.
    Logical(String),
    /// A physical table by name.
    Table(String),
}

/// A single extracted DBpedia entry.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct DbpediaEntry {
    /// The synonym term ("client").
    pub term: String,
    /// The schema/ontology node it is connected to.
    pub target: SynonymTarget,
}

/// The curated DBpedia extract.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct SynonymStore {
    /// All entries.
    pub entries: Vec<DbpediaEntry>,
}

impl SynonymStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a synonym entry.
    pub fn add(&mut self, term: impl Into<String>, target: SynonymTarget) -> &mut Self {
        self.entries.push(DbpediaEntry {
            term: term.into(),
            target,
        });
        self
    }

    /// All entries whose term matches (case-insensitive).
    pub fn lookup(&self, term: &str) -> Vec<&DbpediaEntry> {
        self.entries
            .iter()
            .filter(|e| e.term.eq_ignore_ascii_case(term))
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let mut s = SynonymStore::new();
        s.add("client", SynonymTarget::Concept("customers".into()));
        s.add(
            "political organization",
            SynonymTarget::Conceptual("Parties".into()),
        );
        assert_eq!(s.len(), 2);
        assert_eq!(s.lookup("Client").len(), 1);
        assert_eq!(
            s.lookup("CLIENT")[0].target,
            SynonymTarget::Concept("customers".into())
        );
        assert!(s.lookup("nothing").is_empty());
    }

    #[test]
    fn multiple_targets_for_the_same_term() {
        let mut s = SynonymStore::new();
        s.add("company", SynonymTarget::Table("organization".into()));
        s.add(
            "company",
            SynonymTarget::Concept("corporate-customers".into()),
        );
        assert_eq!(s.lookup("company").len(), 2);
    }
}
