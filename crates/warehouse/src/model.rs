//! The multi-level schema model: conceptual, logical and physical layers.
//!
//! The paper's metadata graph (Figure 3) spans three schema layers plus domain
//! ontologies and DBpedia.  This module defines a plain-data model of those
//! layers; [`crate::graph_builder`] translates a [`SchemaModel`] (plus an
//! ontology and a synonym store) into the node/edge vocabulary that SODA's
//! patterns expect.

use std::sync::Arc;

use soda_metagraph::MetaGraph;
use soda_relation::{Database, TableSchema};

/// Kind of a relationship at the conceptual or logical level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum RelationshipKind {
    /// N-to-1 relationship.
    ManyToOne,
    /// N-to-N relationship.
    ManyToMany,
    /// Mutually exclusive inheritance.
    Inheritance,
}

/// An entity of the conceptual (business) layer.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ConceptualEntity {
    /// Business name, e.g. "Financial Instruments".
    pub name: String,
    /// Business attribute names.
    pub attributes: Vec<String>,
    /// Names of logical entities that refine this entity.
    pub refined_by: Vec<String>,
}

/// An entity of the logical layer.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct LogicalEntity {
    /// Logical name, e.g. "Financial Instrument Transactions".
    pub name: String,
    /// Logical attribute names.
    pub attributes: Vec<String>,
    /// Physical tables that implement this entity.
    pub implemented_by: Vec<String>,
}

/// A named relationship between two entities of the same layer.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct Relationship {
    /// Source entity name.
    pub from: String,
    /// Target entity name.
    pub to: String,
    /// Relationship kind.
    pub kind: RelationshipKind,
}

/// A foreign key as it should appear in the metadata graph.
///
/// `annotated` models the paper's bi-temporal historisation gap: a join key
/// that exists in the physical schema but is *not* reflected in the schema
/// graph (the cause of the low recall of Q2.1/Q2.2).  Unannotated keys are
/// skipped by the graph builder, so SODA cannot discover them, while the
/// gold-standard SQL still uses them.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct AnnotatedForeignKey {
    /// Referencing table.
    pub table: String,
    /// Referencing column.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column.
    pub ref_column: String,
    /// Whether the metadata graph contains this join relationship.
    pub annotated: bool,
    /// Whether to model it as an explicit join node (Credit Suisse style)
    /// instead of a plain `foreign_key` edge.
    pub explicit_join_node: bool,
}

/// A bi-temporal historization annotation: `hist_table` stores the history of
/// `current_table`, with row validity bounded by the named columns of the
/// history table.
///
/// The paper's warehouse leaves these relationships *unannotated*, which is
/// the cause of the low recall of Q2.1/Q2.2; §5.2.1 and §7 propose annotating
/// them as future work.  A [`SchemaModel`] that carries historization links
/// produces a metadata graph with explicit historization nodes, which the SODA
/// engine can then exploit (temporal `valid at` predicates, history-aware join
/// discovery).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct HistorizationLink {
    /// The history table.
    pub hist_table: String,
    /// The table carrying the current state.
    pub current_table: String,
    /// Validity-start column of the history table.
    pub valid_from_column: String,
    /// Validity-end column of the history table.
    pub valid_to_column: String,
}

/// A mutually exclusive inheritance group at the physical level.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct InheritanceGroup {
    /// Parent (super-type) table.
    pub parent_table: String,
    /// Child (sub-type) tables.
    pub child_tables: Vec<String>,
}

/// The full three-layer schema model of a warehouse.
#[derive(Debug, Clone, Default)]
pub struct SchemaModel {
    /// Conceptual entities.
    pub conceptual: Vec<ConceptualEntity>,
    /// Conceptual-level relationships.
    pub conceptual_relationships: Vec<Relationship>,
    /// Logical entities.
    pub logical: Vec<LogicalEntity>,
    /// Logical-level relationships.
    pub logical_relationships: Vec<Relationship>,
    /// Physical table schemas (also used to create the database tables).
    pub physical: Vec<TableSchema>,
    /// Foreign keys with annotation flags for the metadata graph.
    pub foreign_keys: Vec<AnnotatedForeignKey>,
    /// Physical inheritance groups.
    pub inheritance: Vec<InheritanceGroup>,
    /// Bi-temporal historization annotations (empty in the paper-faithful
    /// warehouses; populated by the historization-annotated variants).
    pub historization: Vec<HistorizationLink>,
}

impl SchemaModel {
    /// Collects the foreign keys declared inside the physical table schemas as
    /// annotated, plain-edge foreign keys, and appends them to
    /// `self.foreign_keys` (skipping duplicates).  Convenience used by the
    /// warehouse constructors so that FKs only need to be declared once.
    pub fn adopt_physical_foreign_keys(&mut self) {
        for table in &self.physical {
            for fk in &table.foreign_keys {
                let exists = self.foreign_keys.iter().any(|a| {
                    a.table == table.name
                        && a.column.eq_ignore_ascii_case(&fk.column)
                        && a.ref_table.eq_ignore_ascii_case(&fk.ref_table)
                });
                if !exists {
                    self.foreign_keys.push(AnnotatedForeignKey {
                        table: table.name.clone(),
                        column: fk.column.clone(),
                        ref_table: fk.ref_table.clone(),
                        ref_column: fk.ref_column.clone(),
                        annotated: true,
                        explicit_join_node: false,
                    });
                }
            }
        }
    }

    /// Looks up a physical table schema by name.
    pub fn physical_table(&self, name: &str) -> Option<&TableSchema> {
        self.physical
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// Summary counts used by Table 1 of the paper.
    pub fn stats(&self) -> SchemaStats {
        SchemaStats {
            conceptual_entities: self.conceptual.len(),
            conceptual_attributes: self.conceptual.iter().map(|e| e.attributes.len()).sum(),
            conceptual_relationships: self.conceptual_relationships.len(),
            logical_entities: self.logical.len(),
            logical_attributes: self.logical.iter().map(|e| e.attributes.len()).sum(),
            logical_relationships: self.logical_relationships.len(),
            physical_tables: self.physical.len(),
            physical_columns: self.physical.iter().map(|t| t.arity()).sum(),
        }
    }
}

/// The schema-graph complexity counts reported in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub struct SchemaStats {
    /// Number of conceptual entities.
    pub conceptual_entities: usize,
    /// Number of conceptual attributes.
    pub conceptual_attributes: usize,
    /// Number of conceptual relationships.
    pub conceptual_relationships: usize,
    /// Number of logical entities.
    pub logical_entities: usize,
    /// Number of logical attributes.
    pub logical_attributes: usize,
    /// Number of logical relationships.
    pub logical_relationships: usize,
    /// Number of physical tables.
    pub physical_tables: usize,
    /// Number of physical columns.
    pub physical_columns: usize,
}

/// A fully constructed warehouse: base data, metadata graph and model.
#[derive(Debug)]
pub struct Warehouse {
    /// The base data.
    pub database: Database,
    /// The metadata graph (schema layers + ontology + DBpedia + annotations).
    pub graph: MetaGraph,
    /// The schema model the graph was built from.
    pub model: SchemaModel,
    /// Human-readable name of this warehouse ("mini-bank", "enterprise").
    pub name: String,
}

impl Warehouse {
    /// Schema-complexity statistics (Table 1).
    pub fn stats(&self) -> SchemaStats {
        self.model.stats()
    }

    /// Consumes the warehouse into the shared handles a snapshot build
    /// wants: `Arc<Database>` + `Arc<MetaGraph>` without cloning either —
    /// the publish path used to deep-copy the whole base data just to wrap
    /// it in a fresh `Arc`.
    pub fn shared_parts(self) -> (Arc<Database>, Arc<MetaGraph>) {
        (Arc::new(self.database), Arc::new(self.graph))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_relation::DataType;

    #[test]
    fn adopt_physical_foreign_keys_deduplicates() {
        let mut model = SchemaModel {
            physical: vec![
                TableSchema::builder("individual")
                    .column("party_id", DataType::Int)
                    .foreign_key("party_id", "party", "party_id")
                    .build(),
                TableSchema::builder("party")
                    .column("party_id", DataType::Int)
                    .build(),
            ],
            ..Default::default()
        };
        model.foreign_keys.push(AnnotatedForeignKey {
            table: "individual".into(),
            column: "party_id".into(),
            ref_table: "party".into(),
            ref_column: "party_id".into(),
            annotated: false,
            explicit_join_node: false,
        });
        model.adopt_physical_foreign_keys();
        // The pre-declared (unannotated) FK wins; no duplicate is added.
        assert_eq!(model.foreign_keys.len(), 1);
        assert!(!model.foreign_keys[0].annotated);
    }

    #[test]
    fn stats_count_all_layers() {
        let model = SchemaModel {
            conceptual: vec![ConceptualEntity {
                name: "Parties".into(),
                attributes: vec!["name".into(), "domicile".into()],
                refined_by: vec!["Individuals".into()],
            }],
            conceptual_relationships: vec![Relationship {
                from: "Parties".into(),
                to: "Transactions".into(),
                kind: RelationshipKind::ManyToMany,
            }],
            logical: vec![LogicalEntity {
                name: "Individuals".into(),
                attributes: vec!["given name".into()],
                implemented_by: vec!["individual".into()],
            }],
            logical_relationships: vec![],
            physical: vec![TableSchema::builder("individual")
                .column("party_id", DataType::Int)
                .column("given_name", DataType::Text)
                .build()],
            foreign_keys: vec![],
            inheritance: vec![],
            historization: vec![],
        };
        let s = model.stats();
        assert_eq!(s.conceptual_entities, 1);
        assert_eq!(s.conceptual_attributes, 2);
        assert_eq!(s.conceptual_relationships, 1);
        assert_eq!(s.logical_entities, 1);
        assert_eq!(s.logical_attributes, 1);
        assert_eq!(s.physical_tables, 1);
        assert_eq!(s.physical_columns, 2);
    }

    #[test]
    fn physical_table_lookup_is_case_insensitive() {
        let model = SchemaModel {
            physical: vec![TableSchema::builder("Party")
                .column("id", DataType::Int)
                .build()],
            ..Default::default()
        };
        assert!(model.physical_table("party").is_some());
        assert!(model.physical_table("missing").is_none());
    }
}
