//! # soda-baselines
//!
//! Capability-level re-implementations of the systems SODA is compared against
//! in Table 5 of the paper: DBExplorer, DISCOVER, BANKS, SQAK and Keymantic.
//!
//! Each baseline implements the [`BaselineSystem`] trait: it receives a
//! keyword query and the warehouse (base data plus, for Keymantic, the schema
//! metadata) and either produces SQL through the mechanism its paper describes
//! — inverted index plus key/foreign-key candidate networks for the early
//! systems, aggregate SPJG generation for SQAK, metadata-only matching for
//! Keymantic — or declines the query.  The qualitative capability matrix of
//! Table 5 is available both as a static declaration
//! ([`capability::capability_matrix`]) and empirically by running the
//! baselines on the workload (see `soda-eval`).

pub mod banks;
pub mod capability;
pub mod dbexplorer;
pub mod discover;
pub mod feature;
pub mod keymantic;
pub mod sqak;
pub mod system;

pub use capability::{capability_matrix, SystemCapability};
pub use feature::{QueryFeature, Support};
pub use system::{BaselineAnswer, BaselineSystem, SchemaJoinGraph};

/// Constructs every baseline system.
pub fn all_baselines() -> Vec<Box<dyn BaselineSystem>> {
    vec![
        Box::new(dbexplorer::DbExplorer),
        Box::new(discover::Discover),
        Box::new(banks::Banks),
        Box::new(sqak::Sqak),
        Box::new(keymantic::Keymantic::default()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_comparison_systems_are_available() {
        let names: Vec<_> = all_baselines()
            .iter()
            .map(|b| b.name().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["DBExplorer", "DISCOVER", "BANKS", "SQAK", "Keymantic"]
        );
    }
}
