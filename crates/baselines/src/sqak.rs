//! SQAK-like baseline (Tata & Lohman, SIGMOD 2008).
//!
//! SQAK is the one prior system that targets *aggregate* keyword queries: it
//! maps keywords onto schema terms and produces a single
//! SELECT-PROJECT-JOIN-GROUP-BY statement.  The pattern is hard-coded — plain
//! keyword queries without an aggregation do not fit it, and metadata beyond
//! key/foreign-key relationships is not used.

use soda_relation::{AggFunc, Database, InvertedIndex};

use crate::feature::{QueryFeature, Support};
use crate::system::{BaselineAnswer, BaselineSystem, SchemaJoinGraph};

/// The SQAK-like system.
#[derive(Debug, Default, Clone)]
pub struct Sqak;

impl Sqak {
    /// Finds the `(table, column)` whose identifier best matches the phrase.
    fn resolve_column(db: &Database, phrase: &str) -> Option<(String, String)> {
        let wanted: String = soda_relation::tokenize(phrase).concat();
        if wanted.is_empty() {
            return None;
        }
        for table in db.tables() {
            for col in &table.schema().columns {
                let squashed: String = soda_relation::tokenize(&col.name).concat();
                if squashed == wanted {
                    return Some((table.name().to_string(), col.name.clone()));
                }
            }
        }
        // Fall back to a table-name match: use its first column.
        for table in db.tables() {
            let squashed: String = soda_relation::tokenize(table.name()).concat();
            if squashed == wanted
                || squashed == format!("{wanted}s")
                || format!("{squashed}s") == wanted
            {
                return table
                    .schema()
                    .columns
                    .first()
                    .map(|c| (table.name().to_string(), c.name.clone()));
            }
        }
        None
    }
}

impl BaselineSystem for Sqak {
    fn name(&self) -> &'static str {
        "SQAK"
    }

    fn support(&self, feature: QueryFeature) -> Support {
        match feature {
            QueryFeature::Aggregates => Support::Yes,
            _ => Support::No,
        }
    }

    fn answer(&self, db: &Database, _index: &InvertedIndex, query: &str) -> Option<BaselineAnswer> {
        // The query must contain an aggregation operator.
        let lower = query.to_lowercase();
        let func = [
            ("sum", AggFunc::Sum),
            ("count", AggFunc::Count),
            ("avg", AggFunc::Avg),
            ("min", AggFunc::Min),
            ("max", AggFunc::Max),
        ]
        .into_iter()
        .find(|(kw, _)| lower.contains(&format!("{kw}(")) || lower.contains(&format!("{kw} (")))?;

        // Aggregated attribute: the text inside the first parentheses.
        let open = lower.find('(')?;
        let close = lower[open..].find(')')? + open;
        let attribute = query[open + 1..close].trim().to_string();

        // Optional group-by attribute: text inside the parentheses after "group by".
        let group_attr = lower.find("group by").and_then(|gb| {
            let rest = &query[gb..];
            let o = rest.find('(')?;
            let c = rest[o..].find(')')? + o;
            Some(rest[o + 1..c].trim().to_string())
        });

        let agg_column = if attribute.is_empty() {
            None
        } else {
            Some(Self::resolve_column(db, &attribute)?)
        };
        let group_column = match &group_attr {
            Some(g) => Some(Self::resolve_column(db, g)?),
            None => None,
        };

        // Assemble the SPJG statement.
        let mut tables: Vec<String> = Vec::new();
        for (t, _) in agg_column.iter().chain(group_column.iter()) {
            if !tables.iter().any(|x| x.eq_ignore_ascii_case(t)) {
                tables.push(t.clone());
            }
        }
        if tables.is_empty() {
            return None;
        }
        let graph = SchemaJoinGraph::build(db);
        let mut joins: Vec<String> = Vec::new();
        if tables.len() == 2 {
            let path = graph.path(&tables[0].clone(), &tables[1].clone())?;
            for step in path {
                for t in [&step.fk_table, &step.pk_table] {
                    if !tables.iter().any(|x| x.eq_ignore_ascii_case(t)) {
                        tables.push(t.clone());
                    }
                }
                joins.push(step.condition());
            }
        }
        let agg_sql = match &agg_column {
            Some((t, c)) => format!("{}({t}.{c})", func.1.as_sql()),
            None => format!("{}(*)", func.1.as_sql()),
        };
        let mut select_list = Vec::new();
        if let Some((t, c)) = &group_column {
            select_list.push(format!("{t}.{c}"));
        }
        select_list.push(agg_sql);
        let mut sql = format!(
            "SELECT {} FROM {}",
            select_list.join(", "),
            tables.join(", ")
        );
        if !joins.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&joins.join(" AND "));
        }
        if let Some((t, c)) = &group_column {
            sql.push_str(&format!(" GROUP BY {t}.{c}"));
        }
        Some(BaselineAnswer {
            sql: vec![sql],
            notes: vec![format!("aggregation {} over '{attribute}'", func.0)],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_warehouse::minibank;

    #[test]
    fn answers_aggregate_queries_with_group_by() {
        let w = minibank::build(42);
        let index = InvertedIndex::build(&w.database);
        let s = Sqak;
        let a = s
            .answer(
                &w.database,
                &index,
                "sum (amount) group by (transactiondate)",
            )
            .unwrap();
        assert!(a.sql[0].to_lowercase().contains("group by"));
        let rs = w.database.run_sql(&a.sql[0]).unwrap();
        assert!(rs.row_count() > 1);
    }

    #[test]
    fn declines_plain_keyword_queries() {
        let w = minibank::build(42);
        let index = InvertedIndex::build(&w.database);
        let s = Sqak;
        assert!(s.answer(&w.database, &index, "Sara Guttinger").is_none());
        assert_eq!(s.support(QueryFeature::Aggregates), Support::Yes);
        assert_eq!(s.support(QueryFeature::BaseData), Support::No);
    }

    #[test]
    fn resolves_attributes_against_physical_names_only() {
        let w = minibank::build(42);
        let index = InvertedIndex::build(&w.database);
        let s = Sqak;
        // "investments" is a business term (domain ontology); SQAK cannot map it.
        assert!(s
            .answer(&w.database, &index, "sum(investments) group by (currency)")
            .is_none());
    }
}
