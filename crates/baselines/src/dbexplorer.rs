//! DBExplorer-like baseline (Agrawal, Chaudhuri & Das, ICDE 2002).
//!
//! DBExplorer maintains a symbol table of keyword occurrences and produces
//! results at the granularity of *sets* of business objects, again connecting
//! matches through key/foreign-key join trees.  Like DISCOVER it only knows
//! the base data and struggles with cyclic schemas.

use soda_relation::{Database, InvertedIndex};

use crate::feature::{QueryFeature, Support};
use crate::system::{
    base_data_terms, candidate_network_sql, BaselineAnswer, BaselineSystem, SchemaJoinGraph,
};

/// The DBExplorer-like system.
#[derive(Debug, Default, Clone)]
pub struct DbExplorer;

impl BaselineSystem for DbExplorer {
    fn name(&self) -> &'static str {
        "DBExplorer"
    }

    fn support(&self, feature: QueryFeature) -> Support {
        match feature {
            QueryFeature::BaseData => Support::Partial,
            _ => Support::No,
        }
    }

    fn answer(&self, db: &Database, index: &InvertedIndex, query: &str) -> Option<BaselineAnswer> {
        if query.contains('(') || query.contains('>') || query.contains('<') || query.contains('=')
        {
            return None;
        }
        let graph = SchemaJoinGraph::build(db);
        let (terms, _unmatched) = base_data_terms(db, index, query, 3);
        if terms.is_empty() || terms.iter().any(|t| t.is_empty()) {
            return None;
        }
        // DBExplorer returns the distinct set of matching objects: one SQL per
        // (first-hit) join tree, deduplicated.
        let hits: Vec<_> = terms.iter().map(|t| t[0].clone()).collect();
        let sql = candidate_network_sql(&graph, &hits)?;
        Some(BaselineAnswer {
            sql: vec![sql],
            notes: vec!["results are sets of business objects".to_string()],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_warehouse::minibank;

    #[test]
    fn produces_executable_sql_for_data_keywords() {
        let w = minibank::build(42);
        let index = InvertedIndex::build(&w.database);
        let d = DbExplorer;
        let answer = d.answer(&w.database, &index, "Zurich").unwrap();
        let rs = w.database.run_sql(&answer.sql[0]).unwrap();
        assert!(rs.row_count() >= 1);
    }

    #[test]
    fn declines_operator_queries() {
        let w = minibank::build(42);
        let index = InvertedIndex::build(&w.database);
        let d = DbExplorer;
        assert!(d.answer(&w.database, &index, "salary >= 100000").is_none());
        assert_eq!(d.support(QueryFeature::Predicates), Support::No);
    }
}
