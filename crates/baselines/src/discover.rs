//! DISCOVER-like baseline (Hristidis & Papakonstantinou, VLDB 2002).
//!
//! DISCOVER finds keyword occurrences in the base data through an inverted
//! index ("tuple sets") and connects them through candidate networks built
//! from key/foreign-key relationships.  It understands nothing but the base
//! data: schema terms, ontologies, inheritance, predicates and aggregates are
//! outside its query model.

use soda_relation::{Database, InvertedIndex};

use crate::feature::{QueryFeature, Support};
use crate::system::{
    base_data_terms, candidate_network_sql, BaselineAnswer, BaselineSystem, SchemaJoinGraph,
};

/// The DISCOVER-like system.
#[derive(Debug, Default, Clone)]
pub struct Discover;

impl BaselineSystem for Discover {
    fn name(&self) -> &'static str {
        "DISCOVER"
    }

    fn support(&self, feature: QueryFeature) -> Support {
        match feature {
            // "(X)": cannot handle schemas with cycles.
            QueryFeature::BaseData => Support::Partial,
            _ => Support::No,
        }
    }

    fn answer(&self, db: &Database, index: &InvertedIndex, query: &str) -> Option<BaselineAnswer> {
        // Aggregations and explicit operators are not part of the query model.
        if query.contains('(') || query.contains('>') || query.contains('<') || query.contains('=')
        {
            return None;
        }
        let graph = SchemaJoinGraph::build(db);
        let (terms, unmatched) = base_data_terms(db, index, query, 3);
        if terms.is_empty() || terms.iter().any(|t| t.is_empty()) {
            return None;
        }
        // First candidate network: first hit per term.
        let hits: Vec<_> = terms.iter().map(|t| t[0].clone()).collect();
        let sql = candidate_network_sql(&graph, &hits)?;
        let mut answer = BaselineAnswer {
            sql: vec![sql],
            notes: unmatched
                .iter()
                .map(|w| format!("keyword '{w}' not found in any tuple"))
                .collect(),
        };
        // A few alternative networks from the remaining hits of the first term.
        for alt in terms[0].iter().skip(1).take(2) {
            let mut alt_hits = hits.clone();
            alt_hits[0] = alt.clone();
            if let Some(sql) = candidate_network_sql(&graph, &alt_hits) {
                answer.sql.push(sql);
            }
        }
        Some(answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_warehouse::minibank;

    #[test]
    fn answers_pure_base_data_queries() {
        let w = minibank::build(42);
        let index = InvertedIndex::build(&w.database);
        let d = Discover;
        let answer = d.answer(&w.database, &index, "Sara Guttinger").unwrap();
        assert!(!answer.sql.is_empty());
        let rs = w.database.run_sql(&answer.sql[0]).unwrap();
        assert!(rs.row_count() >= 1);
    }

    #[test]
    fn declines_schema_only_and_aggregate_queries() {
        let w = minibank::build(42);
        let index = InvertedIndex::build(&w.database);
        let d = Discover;
        assert!(d
            .answer(
                &w.database,
                &index,
                "sum (amount) group by (transaction date)"
            )
            .is_none());
        // "private customers" only exists in the ontology, not in the data.
        assert!(d.answer(&w.database, &index, "private customers").is_none());
    }

    #[test]
    fn declared_capabilities_match_table5() {
        let d = Discover;
        assert_eq!(d.support(QueryFeature::BaseData), Support::Partial);
        assert_eq!(d.support(QueryFeature::Schema), Support::No);
        assert_eq!(d.support(QueryFeature::Aggregates), Support::No);
    }
}
