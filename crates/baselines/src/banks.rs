//! BANKS-like baseline (Bhalotia et al., ICDE 2002).
//!
//! BANKS models the database as a graph of tuples and relations and answers a
//! keyword query with (approximate Steiner) trees connecting the keyword
//! nodes.  Keywords may match relation names as well as tuples, so unlike
//! DISCOVER/DBExplorer it handles schema terms; inheritance, ontologies,
//! predicates and aggregates remain out of scope.

use soda_relation::{Database, InvertedIndex};

use crate::feature::{QueryFeature, Support};
use crate::system::{
    base_data_terms, candidate_network_sql, BaselineAnswer, BaselineSystem, DataHit,
    SchemaJoinGraph,
};

/// The BANKS-like system.
#[derive(Debug, Default, Clone)]
pub struct Banks;

impl BaselineSystem for Banks {
    fn name(&self) -> &'static str {
        "BANKS"
    }

    fn support(&self, feature: QueryFeature) -> Support {
        match feature {
            QueryFeature::BaseData | QueryFeature::Schema => Support::Yes,
            _ => Support::No,
        }
    }

    fn answer(&self, db: &Database, index: &InvertedIndex, query: &str) -> Option<BaselineAnswer> {
        if query.contains('(') || query.contains('>') || query.contains('<') || query.contains('=')
        {
            return None;
        }
        let graph = SchemaJoinGraph::build(db);
        let tokens = soda_relation::tokenize(query);
        // Split keywords into schema matches (relation names) and data terms.
        let mut schema_tables: Vec<String> = Vec::new();
        let mut residual: Vec<String> = Vec::new();
        for token in &tokens {
            let table_match = db
                .table_names()
                .iter()
                .find(|t| soda_relation::tokenize(t).contains(token))
                .map(|t| t.to_string());
            match table_match {
                Some(t) => {
                    if !schema_tables.contains(&t) {
                        schema_tables.push(t);
                    }
                }
                None => residual.push(token.clone()),
            }
        }
        let (terms, unmatched) = base_data_terms(db, index, &residual.join(" "), 3);
        if schema_tables.is_empty() && (terms.is_empty() || terms.iter().any(|t| t.is_empty())) {
            return None;
        }
        if !unmatched.is_empty() && terms.is_empty() && schema_tables.is_empty() {
            return None;
        }
        let mut hits: Vec<DataHit> = terms.iter().filter_map(|t| t.first().cloned()).collect();
        // Relation-name matches become unconditioned nodes of the tree: model
        // them as a hit on the table's first column with no filter by adding
        // the table through a pseudo-hit handled below.
        if hits.is_empty() {
            // Pure schema query: SELECT * over the (joined) named tables.
            let mut tables = schema_tables.clone();
            let anchor = tables[0].clone();
            let mut joins = Vec::new();
            for t in schema_tables.iter().skip(1) {
                let path = graph.path(t, &anchor)?;
                for step in path {
                    for tt in [&step.fk_table, &step.pk_table] {
                        if !tables.iter().any(|x| x.eq_ignore_ascii_case(tt)) {
                            tables.push(tt.clone());
                        }
                    }
                    joins.push(step.condition());
                }
            }
            let mut sql = format!("SELECT * FROM {}", tables.join(", "));
            if !joins.is_empty() {
                sql.push_str(" WHERE ");
                sql.push_str(&joins.join(" AND "));
            }
            return Some(BaselineAnswer {
                sql: vec![sql],
                notes: vec![],
            });
        }
        // Mixed query: anchor the candidate network at the data hits and join
        // the named relations in.
        let sql = candidate_network_sql(&graph, &hits)?;
        let mut answer = BaselineAnswer {
            sql: vec![sql],
            notes: schema_tables
                .iter()
                .map(|t| format!("relation name match: {t}"))
                .collect(),
        };
        for table in &schema_tables {
            hits.push(DataHit {
                table: table.clone(),
                column: db.table(table).ok()?.schema().columns.first()?.name.clone(),
                value: String::new(),
                exact: false,
            });
        }
        // The extended tree (with the named relations joined in) is a second
        // candidate answer; the empty LIKE filter is dropped.
        if let Some(extended) = candidate_network_sql(&graph, &hits) {
            let cleaned = extended.replace(" AND  LIKE '%%'", "");
            if !answer.sql.contains(&cleaned) {
                answer.sql.push(cleaned);
            }
        }
        Some(answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_warehouse::minibank;

    #[test]
    fn handles_data_and_relation_name_keywords() {
        let w = minibank::build(42);
        let index = InvertedIndex::build(&w.database);
        let b = Banks;
        let data_only = b.answer(&w.database, &index, "Sara Guttinger").unwrap();
        assert!(w.database.run_sql(&data_only.sql[0]).unwrap().row_count() >= 1);
        let schema_only = b.answer(&w.database, &index, "addresses").unwrap();
        assert!(w.database.run_sql(&schema_only.sql[0]).unwrap().row_count() >= 1);
    }

    #[test]
    fn declines_aggregates_and_predicates() {
        let w = minibank::build(42);
        let index = InvertedIndex::build(&w.database);
        let b = Banks;
        assert!(b
            .answer(&w.database, &index, "count (transactions)")
            .is_none());
        assert!(b.answer(&w.database, &index, "salary > 100000").is_none());
        assert_eq!(b.support(QueryFeature::Schema), Support::Yes);
        assert_eq!(b.support(QueryFeature::Inheritance), Support::No);
    }
}
