//! Query-type features used by the qualitative comparison of Table 5.

/// The query types of Table 5 (also the "Comment" flags of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum QueryFeature {
    /// The query needs keywords looked up in the base data (B).
    BaseData,
    /// The query needs schema terms (table/attribute names) (S).
    Schema,
    /// The query needs inheritance relationships to be resolved (I).
    Inheritance,
    /// The query needs the domain ontology (or synonyms) (D).
    DomainOntology,
    /// The query contains predicates (comparisons, ranges) (P).
    Predicates,
    /// The query contains aggregations / grouping (A).
    Aggregates,
}

impl QueryFeature {
    /// All features, in the row order of Table 5.
    pub fn all() -> [QueryFeature; 6] {
        [
            QueryFeature::BaseData,
            QueryFeature::Schema,
            QueryFeature::Inheritance,
            QueryFeature::DomainOntology,
            QueryFeature::Predicates,
            QueryFeature::Aggregates,
        ]
    }

    /// Row label used in the report.
    pub fn label(self) -> &'static str {
        match self {
            QueryFeature::BaseData => "Base data",
            QueryFeature::Schema => "Schema",
            QueryFeature::Inheritance => "Inheritance",
            QueryFeature::DomainOntology => "Domain ontology",
            QueryFeature::Predicates => "Predicates",
            QueryFeature::Aggregates => "Aggregates",
        }
    }

    /// The single-letter flag used in Table 2 ("B", "S", "I", "D", "P", "A").
    pub fn flag(self) -> char {
        match self {
            QueryFeature::BaseData => 'B',
            QueryFeature::Schema => 'S',
            QueryFeature::Inheritance => 'I',
            QueryFeature::DomainOntology => 'D',
            QueryFeature::Predicates => 'P',
            QueryFeature::Aggregates => 'A',
        }
    }
}

/// Degree of support, matching the paper's "X", "(X)", "NO" and "(NO)" cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum Support {
    /// Fully supported ("X").
    Yes,
    /// Supported with caveats ("(X)").
    Partial,
    /// Not supported ("NO").
    No,
    /// Claimed but failing at this schema scale ("(NO)").
    FailsAtScale,
}

impl Support {
    /// Cell text in the Table 5 style.
    pub fn cell(self) -> &'static str {
        match self {
            Support::Yes => "X",
            Support::Partial => "(X)",
            Support::No => "NO",
            Support::FailsAtScale => "(NO)",
        }
    }

    /// Whether the system can answer queries needing this feature at all.
    pub fn usable(self) -> bool {
        matches!(self, Support::Yes | Support::Partial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_features_in_table5_order() {
        let all = QueryFeature::all();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0].label(), "Base data");
        assert_eq!(all[5].flag(), 'A');
    }

    #[test]
    fn support_cells_match_the_paper_notation() {
        assert_eq!(Support::Yes.cell(), "X");
        assert_eq!(Support::Partial.cell(), "(X)");
        assert_eq!(Support::No.cell(), "NO");
        assert_eq!(Support::FailsAtScale.cell(), "(NO)");
        assert!(Support::Partial.usable());
        assert!(!Support::FailsAtScale.usable());
    }
}
