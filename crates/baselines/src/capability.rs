//! The static capability matrix behind Table 5 of the paper.
//!
//! The paper derives most of this table from the published descriptions of the
//! systems (only Keymantic could be run); we expose the same declaration here
//! and additionally verify it empirically in `soda-eval` by running our
//! baseline implementations on the workload.

use crate::all_baselines;
use crate::feature::{QueryFeature, Support};

/// Declared capabilities of one system.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct SystemCapability {
    /// System name.
    pub system: String,
    /// Support per feature, in [`QueryFeature::all`] order.
    pub support: Vec<Support>,
}

/// The capability matrix of every baseline plus SODA itself (last row).
pub fn capability_matrix() -> Vec<SystemCapability> {
    let mut rows: Vec<SystemCapability> = all_baselines()
        .iter()
        .map(|b| SystemCapability {
            system: b.name().to_string(),
            support: QueryFeature::all().iter().map(|f| b.support(*f)).collect(),
        })
        .collect();
    rows.push(SystemCapability {
        system: "SODA".to_string(),
        support: QueryFeature::all().iter().map(|_| Support::Yes).collect(),
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_table5_of_the_paper() {
        let matrix = capability_matrix();
        assert_eq!(matrix.len(), 6);
        let row =
            |name: &str| -> &SystemCapability { matrix.iter().find(|r| r.system == name).unwrap() };
        // Base data row: (X) (X) X NO (NO) X
        assert_eq!(row("DBExplorer").support[0], Support::Partial);
        assert_eq!(row("DISCOVER").support[0], Support::Partial);
        assert_eq!(row("BANKS").support[0], Support::Yes);
        assert_eq!(row("SQAK").support[0], Support::No);
        assert_eq!(row("Keymantic").support[0], Support::FailsAtScale);
        assert_eq!(row("SODA").support[0], Support::Yes);
        // Schema row: only BANKS, Keymantic and SODA.
        assert_eq!(row("BANKS").support[1], Support::Yes);
        assert_eq!(row("Keymantic").support[1], Support::Yes);
        assert_eq!(row("DBExplorer").support[1], Support::No);
        // Inheritance and predicates: SODA only.
        for system in ["DBExplorer", "DISCOVER", "BANKS", "SQAK", "Keymantic"] {
            assert_eq!(row(system).support[2], Support::No);
            assert_eq!(row(system).support[4], Support::No);
        }
        // Domain ontology: Keymantic partially, SODA fully.
        assert_eq!(row("Keymantic").support[3], Support::Partial);
        assert_eq!(row("SODA").support[3], Support::Yes);
        // Aggregates: SQAK and SODA.
        assert_eq!(row("SQAK").support[5], Support::Yes);
        assert_eq!(row("SODA").support[5], Support::Yes);
    }
}
