//! Keymantic-like baseline (Bergamaschi et al., SIGMOD 2011).
//!
//! Keymantic targets the "Hidden Web": no inverted index over the base data is
//! available, only metadata such as table and attribute names (and a small set
//! of synonyms).  Keywords are assigned to schema terms by name similarity;
//! keywords that match no schema term are treated as *values* and heuristically
//! assigned to a column of an already-matched table.  The paper notes that
//! with thousands of columns this assignment picks the wrong columns — which
//! is exactly what happens here on the enterprise schema.

use soda_relation::{DataType, Database, InvertedIndex};

use crate::feature::{QueryFeature, Support};
use crate::system::{BaselineAnswer, BaselineSystem, SchemaJoinGraph};

/// The Keymantic-like system.
#[derive(Debug, Clone)]
pub struct Keymantic {
    /// Small built-in synonym list (term → schema word), standing in for the
    /// external dictionaries Keymantic can consult.
    synonyms: Vec<(&'static str, &'static str)>,
}

impl Default for Keymantic {
    fn default() -> Self {
        Self {
            synonyms: vec![
                ("customer", "party"),
                ("customers", "party"),
                ("client", "party"),
                ("clients", "party"),
                ("company", "organization"),
                ("person", "individual"),
                ("payment", "transaction"),
            ],
        }
    }
}

impl Keymantic {
    fn schema_match(&self, db: &Database, word: &str) -> Option<(String, Option<String>)> {
        let word = word.to_lowercase();
        let word = self
            .synonyms
            .iter()
            .find(|(k, _)| *k == word)
            .map(|(_, v)| v.to_string())
            .unwrap_or(word);
        // Exact or token match (with singular/plural tolerance) against table
        // names first, then column names.
        let token_matches = |token: &str| {
            token == word
                || format!("{token}s") == word
                || format!("{word}s") == token
                || (word.ends_with("ies") && format!("{}y", &word[..word.len() - 3]) == token)
                || (token.ends_with("ies") && format!("{}y", &token[..token.len() - 3]) == word)
        };
        for table in db.tables() {
            if soda_relation::tokenize(table.name())
                .iter()
                .any(|t| token_matches(t))
            {
                return Some((table.name().to_string(), None));
            }
        }
        for table in db.tables() {
            for col in &table.schema().columns {
                if soda_relation::tokenize(&col.name)
                    .iter()
                    .any(|t| token_matches(t))
                {
                    return Some((table.name().to_string(), Some(col.name.clone())));
                }
            }
        }
        None
    }
}

impl BaselineSystem for Keymantic {
    fn name(&self) -> &'static str {
        "Keymantic"
    }

    fn support(&self, feature: QueryFeature) -> Support {
        match feature {
            // In principle able, but not at the scale of this schema.
            QueryFeature::BaseData => Support::FailsAtScale,
            QueryFeature::Schema => Support::Yes,
            QueryFeature::DomainOntology => Support::Partial,
            _ => Support::No,
        }
    }

    fn answer(&self, db: &Database, _index: &InvertedIndex, query: &str) -> Option<BaselineAnswer> {
        if query.contains('(') || query.contains('>') || query.contains('<') || query.contains('=')
        {
            return None;
        }
        let words = soda_relation::tokenize(query);
        let mut tables: Vec<String> = Vec::new();
        let mut value_words: Vec<String> = Vec::new();
        let mut notes = Vec::new();
        let mut filters: Vec<String> = Vec::new();

        for word in &words {
            match self.schema_match(db, word) {
                Some((table, column)) => {
                    if !tables.iter().any(|t| t.eq_ignore_ascii_case(&table)) {
                        tables.push(table.clone());
                    }
                    if let Some(column) = column {
                        notes.push(format!("'{word}' assigned to {table}.{column}"));
                    } else {
                        notes.push(format!("'{word}' assigned to relation {table}"));
                    }
                }
                None => value_words.push(word.clone()),
            }
        }
        if tables.is_empty() && value_words.is_empty() {
            return None;
        }
        if tables.is_empty() {
            // Values without any schema anchor: guess the lexicographically
            // first table with a text column (the wrong-column failure mode).
            let guess = db.tables().find(|t| {
                t.schema()
                    .columns
                    .iter()
                    .any(|c| c.data_type == DataType::Text)
            })?;
            tables.push(guess.name().to_string());
            notes.push("no schema match; guessed the first textual relation".to_string());
        }
        // Unmatched words become LIKE filters on the first text column of the
        // first matched table.
        if !value_words.is_empty() {
            let first = db.table(&tables[0]).ok()?;
            let column = first
                .schema()
                .columns
                .iter()
                .find(|c| c.data_type == DataType::Text)
                .map(|c| c.name.clone())?;
            for w in &value_words {
                filters.push(format!("{}.{} LIKE '%{}%'", tables[0], column, w));
                notes.push(format!(
                    "'{w}' treated as a value of {}.{}",
                    tables[0], column
                ));
            }
        }
        // Join the matched tables pairwise through the FK graph.
        let graph = SchemaJoinGraph::build(db);
        let mut joins = Vec::new();
        let anchor = tables[0].clone();
        for t in tables.clone().iter().skip(1) {
            if let Some(path) = graph.path(t, &anchor) {
                for step in path {
                    for tt in [&step.fk_table, &step.pk_table] {
                        if !tables.iter().any(|x| x.eq_ignore_ascii_case(tt)) {
                            tables.push(tt.clone());
                        }
                    }
                    joins.push(step.condition());
                }
            }
        }
        let mut conditions = joins;
        conditions.extend(filters);
        let mut sql = format!("SELECT * FROM {}", tables.join(", "));
        if !conditions.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&conditions.join(" AND "));
        }
        Some(BaselineAnswer {
            sql: vec![sql],
            notes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_warehouse::minibank;

    #[test]
    fn matches_schema_terms_and_synonyms_without_touching_data() {
        let w = minibank::build(42);
        let index = InvertedIndex::build(&w.database);
        let k = Keymantic::default();
        let a = k
            .answer(&w.database, &index, "customers addresses")
            .unwrap();
        assert!(a.sql[0].contains("parties"));
        assert!(a.sql[0].contains("addresses"));
        let rs = w.database.run_sql(&a.sql[0]);
        assert!(rs.is_ok());
    }

    #[test]
    fn values_are_guessed_onto_possibly_wrong_columns() {
        let w = minibank::build(42);
        let index = InvertedIndex::build(&w.database);
        let k = Keymantic::default();
        let a = k.answer(&w.database, &index, "customers Zurich").unwrap();
        // "Zurich" is assigned to a column of the parties table, not to
        // addresses.city — the wrong-column behaviour the paper describes.
        assert!(a.sql[0].contains("LIKE '%zurich%'"));
        assert!(!a.sql[0].contains("addresses.city"));
    }

    #[test]
    fn declines_operator_and_aggregate_queries() {
        let w = minibank::build(42);
        let index = InvertedIndex::build(&w.database);
        let k = Keymantic::default();
        assert!(k.answer(&w.database, &index, "salary >= 100000").is_none());
        assert!(k.answer(&w.database, &index, "sum (amount)").is_none());
        assert_eq!(k.support(QueryFeature::Schema), Support::Yes);
        assert_eq!(k.support(QueryFeature::BaseData), Support::FailsAtScale);
    }
}
