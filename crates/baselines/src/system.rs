//! The common interface of the comparison systems plus shared machinery:
//! a key/foreign-key join graph derived from the physical schema (all of the
//! early keyword-search systems connect their hits through such a graph) and
//! keyword-to-base-data matching.

use std::collections::{HashMap, HashSet, VecDeque};

use soda_relation::{Database, InvertedIndex};

use crate::feature::{QueryFeature, Support};

/// The SQL statements a baseline produced for a query.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize)]
pub struct BaselineAnswer {
    /// Candidate SQL statements, best first.
    pub sql: Vec<String>,
    /// Explanatory notes (which keyword matched where, what was guessed).
    pub notes: Vec<String>,
}

/// A keyword-search comparison system.
pub trait BaselineSystem {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Declared support for a query-type feature (the Table 5 cell).
    fn support(&self, feature: QueryFeature) -> Support;

    /// Tries to answer a keyword query; `None` means the system's query model
    /// cannot express it at all.
    fn answer(&self, db: &Database, index: &InvertedIndex, query: &str) -> Option<BaselineAnswer>;
}

/// One join step between two tables, taken from declared foreign keys.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct SchemaJoin {
    /// Referencing table.
    pub fk_table: String,
    /// Referencing column.
    pub fk_column: String,
    /// Referenced table.
    pub pk_table: String,
    /// Referenced column.
    pub pk_column: String,
}

impl SchemaJoin {
    /// SQL condition text.
    pub fn condition(&self) -> String {
        format!(
            "{}.{} = {}.{}",
            self.fk_table, self.fk_column, self.pk_table, self.pk_column
        )
    }
}

/// Key/foreign-key join graph over the physical schema.
#[derive(Debug, Default, Clone)]
pub struct SchemaJoinGraph {
    joins: Vec<SchemaJoin>,
    adjacency: HashMap<String, Vec<usize>>,
}

impl SchemaJoinGraph {
    /// Builds the graph from the foreign keys declared in the catalog.
    pub fn build(db: &Database) -> Self {
        let mut graph = SchemaJoinGraph::default();
        for table in db.tables() {
            for fk in &table.schema().foreign_keys {
                graph.joins.push(SchemaJoin {
                    fk_table: table.name().to_string(),
                    fk_column: fk.column.clone(),
                    pk_table: fk.ref_table.clone(),
                    pk_column: fk.ref_column.clone(),
                });
            }
        }
        for (i, j) in graph.joins.iter().enumerate() {
            graph
                .adjacency
                .entry(j.fk_table.to_ascii_lowercase())
                .or_default()
                .push(i);
            graph
                .adjacency
                .entry(j.pk_table.to_ascii_lowercase())
                .or_default()
                .push(i);
        }
        graph
    }

    /// Number of join edges.
    pub fn len(&self) -> usize {
        self.joins.len()
    }

    /// True when the schema declares no foreign keys.
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty()
    }

    /// Shortest join path between two tables (undirected BFS over tables).
    pub fn path(&self, from: &str, to: &str) -> Option<Vec<SchemaJoin>> {
        let from = from.to_ascii_lowercase();
        let to = to.to_ascii_lowercase();
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: HashMap<String, (String, usize)> = HashMap::new();
        let mut seen: HashSet<String> = HashSet::new();
        seen.insert(from.clone());
        let mut queue = VecDeque::from([from]);
        while let Some(current) = queue.pop_front() {
            for &i in self
                .adjacency
                .get(&current)
                .map(|v| v.as_slice())
                .unwrap_or(&[])
            {
                let join = &self.joins[i];
                let next = if join.fk_table.eq_ignore_ascii_case(&current) {
                    join.pk_table.to_ascii_lowercase()
                } else {
                    join.fk_table.to_ascii_lowercase()
                };
                if seen.insert(next.clone()) {
                    prev.insert(next.clone(), (current.clone(), i));
                    if next == to {
                        let mut path = Vec::new();
                        let mut cursor = to.clone();
                        while let Some((p, idx)) = prev.get(&cursor) {
                            path.push(self.joins[*idx].clone());
                            cursor = p.clone();
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }
}

/// A keyword matched in the base data.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct DataHit {
    /// Table of the matching column.
    pub table: String,
    /// Matching column.
    pub column: String,
    /// Matched cell value (or the phrase itself when several values match).
    pub value: String,
    /// Whether `value` is an exact cell value.
    pub exact: bool,
}

/// Longest-span matching of the query words against the base data, shared by
/// the inverted-index-based systems.  Returns per matched span the list of
/// candidate hits, plus the words that matched nothing.
pub fn base_data_terms(
    db: &Database,
    index: &InvertedIndex,
    query: &str,
    max_span: usize,
) -> (Vec<Vec<DataHit>>, Vec<String>) {
    let tokens = soda_relation::tokenize(query);
    let mut terms = Vec::new();
    let mut unmatched = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let top = max_span.min(tokens.len() - i);
        let mut matched = false;
        for span in (1..=top).rev() {
            let phrase = tokens[i..i + span].join(" ");
            let hits = index.lookup_phrase(db, &phrase);
            if !hits.is_empty() {
                let mut per_column: Vec<DataHit> = Vec::new();
                for hit in hits {
                    if let Some(existing) = per_column
                        .iter_mut()
                        .find(|h| h.table == hit.table && h.column == hit.column)
                    {
                        existing.exact = false;
                        existing.value = phrase.clone();
                    } else {
                        per_column.push(DataHit {
                            table: hit.table,
                            column: hit.column,
                            value: hit.value,
                            exact: true,
                        });
                    }
                }
                terms.push(per_column);
                i += span;
                matched = true;
                break;
            }
        }
        if !matched {
            unmatched.push(tokens[i].clone());
            i += 1;
        }
    }
    (terms, unmatched)
}

/// Builds a `SELECT *` statement over the hit tables, connecting them through
/// the schema join graph and filtering each hit column.
pub fn candidate_network_sql(graph: &SchemaJoinGraph, hits: &[DataHit]) -> Option<String> {
    if hits.is_empty() {
        return None;
    }
    let mut tables: Vec<String> = Vec::new();
    let mut conditions: Vec<String> = Vec::new();
    for hit in hits {
        if !tables.iter().any(|t| t.eq_ignore_ascii_case(&hit.table)) {
            tables.push(hit.table.clone());
        }
        if hit.exact {
            conditions.push(format!(
                "{}.{} = '{}'",
                hit.table,
                hit.column,
                hit.value.replace('\'', "''")
            ));
        } else {
            conditions.push(format!(
                "{}.{} LIKE '%{}%'",
                hit.table, hit.column, hit.value
            ));
        }
    }
    // Connect every hit table to the first one.
    let anchor = tables[0].clone();
    let mut joins: Vec<String> = Vec::new();
    for table in tables.clone().iter().skip(1) {
        let path = graph.path(table, &anchor)?;
        for step in path {
            for t in [&step.fk_table, &step.pk_table] {
                if !tables.iter().any(|x| x.eq_ignore_ascii_case(t)) {
                    tables.push(t.clone());
                }
            }
            let cond = step.condition();
            if !joins.contains(&cond) {
                joins.push(cond);
            }
        }
    }
    let mut all_conditions = joins;
    all_conditions.extend(conditions);
    let mut sql = format!("SELECT * FROM {}", tables.join(", "));
    if !all_conditions.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&all_conditions.join(" AND "));
    }
    Some(sql)
}

#[cfg(test)]
mod tests {
    use super::*;
    use soda_relation::{DataType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("parties")
                .column("id", DataType::Int)
                .primary_key("id")
                .build(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("individuals")
                .column("id", DataType::Int)
                .column("firstname", DataType::Text)
                .primary_key("id")
                .foreign_key("id", "parties", "id")
                .build(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("addresses")
                .column("address_id", DataType::Int)
                .column("party_id", DataType::Int)
                .column("city", DataType::Text)
                .foreign_key("party_id", "individuals", "id")
                .build(),
        )
        .unwrap();
        db.insert("parties", vec![Value::Int(1)]).unwrap();
        db.insert("individuals", vec![Value::Int(1), Value::from("Sara")])
            .unwrap();
        db.insert(
            "addresses",
            vec![Value::Int(1), Value::Int(1), Value::from("Zurich")],
        )
        .unwrap();
        db
    }

    #[test]
    fn schema_join_graph_paths() {
        let db = db();
        let g = SchemaJoinGraph::build(&db);
        assert_eq!(g.len(), 2);
        let path = g.path("addresses", "parties").unwrap();
        assert_eq!(path.len(), 2);
        assert!(g.path("addresses", "missing").is_none());
    }

    #[test]
    fn base_data_terms_find_hits_and_unmatched_words() {
        let db = db();
        let index = InvertedIndex::build(&db);
        let (terms, unmatched) = base_data_terms(&db, &index, "Sara Zurich nonsense", 3);
        assert_eq!(terms.len(), 2);
        assert_eq!(unmatched, vec!["nonsense"]);
        assert_eq!(terms[0][0].table, "individuals");
        assert_eq!(terms[1][0].column, "city");
    }

    #[test]
    fn candidate_network_sql_joins_hit_tables() {
        let db = db();
        let index = InvertedIndex::build(&db);
        let graph = SchemaJoinGraph::build(&db);
        let (terms, _) = base_data_terms(&db, &index, "Sara Zurich", 3);
        let hits: Vec<DataHit> = terms.iter().map(|t| t[0].clone()).collect();
        let sql = candidate_network_sql(&graph, &hits).unwrap();
        assert!(sql.contains("individuals"));
        assert!(sql.contains("addresses"));
        assert!(sql.contains("= 'Sara'"));
        let rs = db.run_sql(&sql).unwrap();
        assert_eq!(rs.row_count(), 1);
    }
}
