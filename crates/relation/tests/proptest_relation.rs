//! Property-based tests of the relational substrate: value ordering, LIKE
//! matching, SQL printer/parser round trips and executor invariants.

use proptest::prelude::*;

use soda_relation::exec::eval::like_match;
use soda_relation::{parse_select, print_select, DataType, Database, Date, TableSchema, Value};

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-1_000_000i64..1_000_000).prop_map(Value::Int),
        (-1.0e6..1.0e6).prop_map(Value::Float),
        "[a-zA-Z ]{0,12}".prop_map(Value::Text),
        (1980i32..2030, 1u8..13, 1u8..29).prop_map(|(y, m, d)| Value::Date(Date::new(y, m, d))),
    ]
}

proptest! {
    /// The total order used for sorting is reflexive-consistent, antisymmetric
    /// in outcome and agrees with equality.
    #[test]
    fn total_cmp_is_consistent(a in value_strategy(), b in value_strategy()) {
        use std::cmp::Ordering;
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab.reverse(), ba);
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
        if a == b {
            prop_assert_eq!(ab, Ordering::Equal);
        }
    }

    /// Equal values hash identically (required for hash joins and grouping).
    #[test]
    fn eq_implies_same_hash(a in value_strategy(), b in value_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// `%text%` always matches a string containing `text`, and a pattern
    /// without wildcards only matches (case-insensitively) itself.
    #[test]
    fn like_matching_properties(text in "[a-zA-Z ]{0,16}", needle in "[a-zA-Z]{1,6}") {
        let padded = format!("xx{needle}yy {text}");
        let pattern = format!("%{needle}%");
        prop_assert!(like_match(&padded, &pattern));
        prop_assert!(like_match(&text, &text));
        prop_assert_eq!(like_match(&text, &needle), text.eq_ignore_ascii_case(&needle));
    }

    /// Dates parse/display round trip and ordering follows the calendar.
    #[test]
    fn date_round_trip(y in 1900i32..2100, m in 1u8..13, d in 1u8..29) {
        let date = Date::new(y, m, d);
        prop_assert_eq!(Date::parse(&date.to_string()), Some(date));
        let later = Date::new(y, m, d + 1);
        prop_assert!(later > date);
    }

    /// Printer output re-parses to the same statement for generated SELECTs.
    #[test]
    fn sql_print_parse_round_trip(
        limit in proptest::option::of(1usize..100),
        distinct in any::<bool>(),
        value in 0i64..1_000_000,
    ) {
        let mut sql = String::from("SELECT ");
        if distinct {
            sql.push_str("DISTINCT ");
        }
        sql.push_str("a.x, sum(a.y) FROM a, b WHERE a.id = b.id AND a.x >= ");
        sql.push_str(&value.to_string());
        sql.push_str(" GROUP BY a.x ORDER BY sum(a.y) DESC");
        if let Some(l) = limit {
            sql.push_str(&format!(" LIMIT {l}"));
        }
        let stmt = parse_select(&sql).unwrap();
        let printed = print_select(&stmt);
        let reparsed = parse_select(&printed).unwrap();
        prop_assert_eq!(stmt, reparsed);
    }
}

/// Executor invariants over a small randomly populated table.
fn populated_db(salaries: &[i64]) -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("person")
            .column("id", DataType::Int)
            .column("salary", DataType::Int)
            .primary_key("id")
            .build(),
    )
    .unwrap();
    for (i, s) in salaries.iter().enumerate() {
        db.insert("person", vec![Value::Int(i as i64), Value::Int(*s)])
            .unwrap();
    }
    db
}

proptest! {
    /// A filter never returns more rows than the table, LIMIT caps the output,
    /// and count(*) equals the filtered row count.
    #[test]
    fn filters_limits_and_counts_agree(
        salaries in proptest::collection::vec(0i64..200_000, 0..40),
        threshold in 0i64..200_000,
        limit in 1usize..10,
    ) {
        let db = populated_db(&salaries);
        let filtered = db
            .run_sql(&format!("SELECT id FROM person WHERE salary >= {threshold}"))
            .unwrap();
        let expected = salaries.iter().filter(|s| **s >= threshold).count();
        prop_assert_eq!(filtered.row_count(), expected);

        let limited = db
            .run_sql(&format!(
                "SELECT id FROM person WHERE salary >= {threshold} LIMIT {limit}"
            ))
            .unwrap();
        prop_assert_eq!(limited.row_count(), expected.min(limit));

        let counted = db
            .run_sql(&format!("SELECT count(*) FROM person WHERE salary >= {threshold}"))
            .unwrap();
        prop_assert_eq!(counted.rows()[0][0].clone(), Value::Int(expected as i64));
    }

    /// A self equi-join on the primary key returns exactly the table rows.
    #[test]
    fn self_join_on_primary_key_is_identity(
        salaries in proptest::collection::vec(0i64..100_000, 0..30),
    ) {
        let db = populated_db(&salaries);
        let joined = db
            .run_sql("SELECT a.id FROM person a, person b WHERE a.id = b.id")
            .unwrap();
        prop_assert_eq!(joined.row_count(), salaries.len());
    }

    /// Aggregation over groups preserves the total: the sum of per-group
    /// counts equals the number of rows.
    #[test]
    fn group_counts_sum_to_row_count(
        salaries in proptest::collection::vec(0i64..5, 1..50),
    ) {
        let db = populated_db(&salaries);
        let grouped = db
            .run_sql("SELECT salary, count(*) FROM person GROUP BY salary")
            .unwrap();
        let total: i64 = grouped
            .rows()
            .iter()
            .map(|r| r[1].as_i64().unwrap())
            .sum();
        prop_assert_eq!(total as usize, salaries.len());
    }
}
