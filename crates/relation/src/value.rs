//! Typed values and data types.
//!
//! The engine supports the types the paper's queries need: integers, floats
//! (amounts, salaries), text, dates (trade/order/birth dates, bi-temporal
//! validity dates) and booleans.  `Value` implements a *total* ordering and
//! hashing (floats compare through their bit pattern after normalising NaN)
//! so that values can be used as group-by and join keys.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Data type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Calendar date.
    Date,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Date => "DATE",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

/// A calendar date (year, month, day) with no time-zone concerns.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct Date {
    /// Year, e.g. 2011.
    pub year: i32,
    /// Month 1–12.
    pub month: u8,
    /// Day 1–31.
    pub day: u8,
}

impl Date {
    /// Creates a date; clamps month/day into valid ranges rather than
    /// panicking (synthetic data generators never produce invalid dates, but
    /// user input may).
    pub fn new(year: i32, month: u8, day: u8) -> Self {
        Self {
            year,
            month: month.clamp(1, 12),
            day: day.clamp(1, 31),
        }
    }

    /// Parses `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Option<Self> {
        let mut parts = s.split('-');
        let year: i32 = parts.next()?.parse().ok()?;
        let month: u8 = parts.next()?.parse().ok()?;
        let day: u8 = parts.next()?.parse().ok()?;
        if parts.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
            return None;
        }
        Some(Self { year, month, day })
    }

    /// Days since year 0 (approximate; only used for ordering and arithmetic
    /// on synthetic data).
    pub fn ordinal(&self) -> i64 {
        self.year as i64 * 372 + (self.month as i64 - 1) * 31 + (self.day as i64 - 1)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A dynamically typed value.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// Text.
    Text(String),
    /// Date.
    Date(Date),
}

impl Value {
    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// True if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints are widened to float); `None` for non-numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Date view.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// True if the value is compatible with the given column type (NULL is
    /// compatible with every type; ints are accepted where floats are
    /// expected).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (Value::Int(_), DataType::Float) => true,
            (v, t) => v.data_type() == Some(t),
        }
    }

    /// SQL-ish comparison used by the executor: NULL compares as unknown
    /// (returns `None`), numeric types compare numerically, text and dates
    /// compare naturally, and mismatched types do not compare.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            // A date compared with a text literal in date format works, which
            // keeps hand-written gold SQL concise.
            (Value::Date(a), Value::Text(b)) => Date::parse(b).map(|d| a.cmp(&d)),
            (Value::Text(a), Value::Date(b)) => Date::parse(a).map(|d| d.cmp(b)),
            _ => None,
        }
    }

    /// Total ordering used for sorting output rows (NULLs sort first, then by
    /// type, then by value).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) => 2,
                Value::Float(_) => 2,
                Value::Date(_) => 3,
                Value::Text(_) => 4,
            }
        }
        if let Some(ord) = self.sql_cmp(other) {
            return ord;
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => format!("{self}").cmp(&format!("{other}")),
            other_ord => other_ord,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *b == *a as f64,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Date(a), Value::Date(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                let f = if f.is_nan() { f64::NAN } else { *f };
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                4u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                5u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn date_parse_and_display_round_trip() {
        let d = Date::parse("2011-09-01").unwrap();
        assert_eq!(d, Date::new(2011, 9, 1));
        assert_eq!(d.to_string(), "2011-09-01");
        assert!(Date::parse("2011-13-01").is_none());
        assert!(Date::parse("2011-09").is_none());
        assert!(Date::parse("garbage").is_none());
    }

    #[test]
    fn date_ordering_follows_the_calendar() {
        assert!(Date::new(2010, 1, 1) < Date::new(2010, 1, 2));
        assert!(Date::new(2010, 12, 31) < Date::new(2011, 1, 1));
        assert!(Date::new(1980, 1, 1).ordinal() < Date::new(1990, 1, 1).ordinal());
    }

    #[test]
    fn sql_cmp_numeric_cross_type() {
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(2.5).sql_cmp(&Value::Int(3)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Text("a".into())), None);
    }

    #[test]
    fn date_text_comparison_for_gold_sql() {
        let d = Value::Date(Date::new(2011, 9, 2));
        assert_eq!(
            d.sql_cmp(&Value::Text("2011-09-01".into())),
            Some(Ordering::Greater)
        );
    }

    #[test]
    fn eq_and_hash_agree_for_int_float() {
        let a = Value::Int(5);
        let b = Value::Float(5.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn conformance_rules() {
        assert!(Value::Null.conforms_to(DataType::Int));
        assert!(Value::Int(1).conforms_to(DataType::Float));
        assert!(!Value::Float(1.0).conforms_to(DataType::Int));
        assert!(Value::Text("x".into()).conforms_to(DataType::Text));
        assert!(!Value::Text("x".into()).conforms_to(DataType::Date));
    }

    #[test]
    fn total_cmp_is_stable_across_types() {
        let mut vals = [
            Value::Text("b".into()),
            Value::Int(2),
            Value::Null,
            Value::Date(Date::new(2020, 1, 1)),
            Value::Int(1),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Int(1));
        assert_eq!(vals[2], Value::Int(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::from("Zurich").to_string(), "Zurich");
        assert_eq!(Value::from(3.5).to_string(), "3.5");
    }
}
