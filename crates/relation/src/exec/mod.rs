//! Query execution: predicate push-down, hash joins, grouping, ordering.
//!
//! The executor is deliberately simple — it exists so that the SQL produced by
//! SODA (and the gold-standard SQL) can be *run* and compared tuple-by-tuple —
//! but it avoids the obvious performance traps: single-table predicates are
//! pushed below the joins, and equi-joins are executed as hash joins in the
//! order in which join predicates connect the tables, so the 5-way joins of
//! the workload never materialise a cross product.

pub mod eval;

use std::collections::HashMap;

use self::eval::{eval_over_group, eval_scalar, truthy, RowSchema};
use crate::catalog::Database;
use crate::error::{RelationError, Result};
use crate::expr::{CompareOp, Expr};
use crate::sql::ast::{SelectStatement, TableRef};
use crate::value::Value;

/// The result of executing a `SELECT` statement.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ResultSet {
    columns: Vec<String>,
    rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Output column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Output rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows rendered as tab-separated strings — the canonical form used for
    /// precision/recall comparison against the gold standard (the paper
    /// compares result *tuples*).
    pub fn tuple_strings(&self) -> Vec<String> {
        self.rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join("\t")
            })
            .collect()
    }

    /// First `n` rows formatted for display (the paper's "result snippets" of
    /// up to twenty tuples).
    pub fn snippet(&self, n: usize) -> String {
        let mut out = self.columns.join(" | ");
        out.push('\n');
        for row in self.rows.iter().take(n) {
            out.push_str(
                &row.iter()
                    .map(|v| v.to_string())
                    .collect::<Vec<_>>()
                    .join(" | "),
            );
            out.push('\n');
        }
        out
    }
}

/// A bound table in the FROM clause.
struct Bound<'a> {
    qualifier: String,
    rows: Vec<Vec<Value>>,
    #[allow(dead_code)]
    table: &'a str,
}

/// Executes a statement against a database.
pub fn execute(db: &Database, stmt: &SelectStatement) -> Result<ResultSet> {
    if stmt.from.is_empty() {
        return Err(RelationError::Unsupported("FROM clause is required".into()));
    }

    // Bind tables and build the full schema.
    let mut bounds: Vec<Bound<'_>> = Vec::with_capacity(stmt.from.len());
    let mut full_schema = RowSchema::new();
    for tref in &stmt.from {
        let table = db.table(&tref.name)?;
        let qualifier = tref.effective_name().to_string();
        for col in &table.schema().columns {
            full_schema.push(&qualifier, &col.name);
        }
        bounds.push(Bound {
            qualifier,
            rows: table.rows().to_vec(),
            table: &table.schema().name,
        });
    }

    // Classify conjuncts of the WHERE clause.
    let conjuncts: Vec<Expr> = stmt
        .selection
        .as_ref()
        .map(|s| s.conjuncts().into_iter().cloned().collect())
        .unwrap_or_default();

    let mut pushdowns: Vec<Vec<Expr>> = vec![Vec::new(); bounds.len()];
    let mut equi_joins: Vec<(usize, usize, Expr, Expr)> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();

    for conj in conjuncts {
        match classify(&conj, &bounds, &full_schema)? {
            Classified::SingleTable(i) => pushdowns[i].push(conj),
            Classified::EquiJoin(a, b, left, right) => equi_joins.push((a, b, left, right)),
            Classified::Residual => residual.push(conj),
        }
    }

    // Scan each table applying its push-down predicates.
    let mut filtered: Vec<Vec<Vec<Value>>> = Vec::with_capacity(bounds.len());
    for (i, bound) in bounds.iter().enumerate() {
        let schema = single_schema(&stmt.from[i], db)?;
        let mut rows = Vec::new();
        'rows: for row in &bound.rows {
            for pred in &pushdowns[i] {
                let v = eval_scalar(pred, &schema, row)?;
                if truthy(&v) != Some(true) {
                    continue 'rows;
                }
            }
            rows.push(row.clone());
        }
        filtered.push(rows);
    }

    // Join tables. Start with table 0, repeatedly attach a table connected by
    // an equi-join (hash join); fall back to a cross product when no join
    // predicate connects the remaining tables.
    let mut joined_schema = RowSchema::new();
    let mut joined_tables: Vec<usize> = Vec::new();
    let mut joined_rows: Vec<Vec<Value>> = Vec::new();

    attach_first(
        &mut joined_schema,
        &mut joined_tables,
        &mut joined_rows,
        0,
        &bounds,
        &filtered,
        db,
        stmt,
    )?;

    while joined_tables.len() < bounds.len() {
        // Find a not-yet-joined table connected by at least one equi-join.
        let candidate = (0..bounds.len()).find(|i| {
            !joined_tables.contains(i)
                && equi_joins.iter().any(|(a, b, ..)| {
                    (joined_tables.contains(a) && b == i) || (joined_tables.contains(b) && a == i)
                })
        });
        let next = candidate.unwrap_or_else(|| {
            (0..bounds.len())
                .find(|i| !joined_tables.contains(i))
                .expect("at least one table remains")
        });

        // Gather join conditions between the joined set and `next`.
        let mut conditions: Vec<(Expr, Expr)> = Vec::new(); // (joined side, next side)
        for (a, b, left, right) in &equi_joins {
            if joined_tables.contains(a) && *b == next {
                conditions.push((left.clone(), right.clone()));
            } else if joined_tables.contains(b) && *a == next {
                conditions.push((right.clone(), left.clone()));
            }
        }

        let next_schema = single_schema(&stmt.from[next], db)?;
        joined_rows = hash_join(
            &joined_rows,
            &joined_schema,
            &filtered[next],
            &next_schema,
            &conditions,
        )?;
        for (q, c) in next_schema.columns() {
            joined_schema.push(q, c);
        }
        joined_tables.push(next);
    }

    // Residual predicates.
    if !residual.is_empty() {
        let mut kept = Vec::with_capacity(joined_rows.len());
        'outer: for row in joined_rows {
            for pred in &residual {
                let v = eval_scalar(pred, &joined_schema, &row)?;
                if truthy(&v) != Some(true) {
                    continue 'outer;
                }
            }
            kept.push(row);
        }
        joined_rows = kept;
    }

    // Projection / aggregation.
    let (columns, mut output): Projected = if stmt.is_aggregate() {
        aggregate_project(stmt, &joined_schema, &joined_rows)?
    } else {
        plain_project(stmt, &joined_schema, &joined_rows)?
    };

    // DISTINCT.
    if stmt.distinct {
        let mut seen = std::collections::HashSet::new();
        output.retain(|(vals, _)| {
            seen.insert(vals.iter().map(|v| v.to_string()).collect::<Vec<_>>())
        });
    }

    // ORDER BY (sort keys were computed during projection).
    if !stmt.order_by.is_empty() {
        output.sort_by(|(_, ka), (_, kb)| {
            for (i, ob) in stmt.order_by.iter().enumerate() {
                let ord = ka[i].total_cmp(&kb[i]);
                let ord = if ob.descending { ord.reverse() } else { ord };
                if !ord.is_eq() {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    // LIMIT.
    if let Some(limit) = stmt.limit {
        output.truncate(limit);
    }

    Ok(ResultSet {
        columns,
        rows: output.into_iter().map(|(vals, _)| vals).collect(),
    })
}

enum Classified {
    SingleTable(usize),
    EquiJoin(usize, usize, Expr, Expr),
    Residual,
}

fn classify(conj: &Expr, bounds: &[Bound<'_>], full: &RowSchema) -> Result<Classified> {
    // Which tables does the conjunct touch?
    let cols = conj.columns();
    let mut tables: Vec<usize> = Vec::new();
    for (qual, name) in &cols {
        let idx = full.resolve(qual.as_deref(), name)?;
        let (q, _) = &full.columns()[idx];
        let t = bounds
            .iter()
            .position(|b| b.qualifier.eq_ignore_ascii_case(q))
            .ok_or_else(|| RelationError::UnknownColumn(format!("{q}.{name}")))?;
        if !tables.contains(&t) {
            tables.push(t);
        }
    }
    if tables.len() <= 1 {
        return Ok(match tables.first() {
            Some(&t) => Classified::SingleTable(t),
            None => Classified::Residual,
        });
    }
    // Equi-join between exactly two tables: col = col.
    if tables.len() == 2 {
        if let Expr::Compare {
            op: CompareOp::Eq,
            left,
            right,
        } = conj
        {
            if matches!(**left, Expr::Column { .. }) && matches!(**right, Expr::Column { .. }) {
                let lt = table_of(left, bounds, full)?;
                let rt = table_of(right, bounds, full)?;
                if lt != rt {
                    return Ok(Classified::EquiJoin(
                        lt,
                        rt,
                        (**left).clone(),
                        (**right).clone(),
                    ));
                }
            }
        }
    }
    Ok(Classified::Residual)
}

fn table_of(e: &Expr, bounds: &[Bound<'_>], full: &RowSchema) -> Result<usize> {
    if let Expr::Column { table, column } = e {
        let idx = full.resolve(table.as_deref(), column)?;
        let (q, _) = &full.columns()[idx];
        return bounds
            .iter()
            .position(|b| b.qualifier.eq_ignore_ascii_case(q))
            .ok_or_else(|| RelationError::UnknownColumn(column.clone()));
    }
    Err(RelationError::Other("not a column".into()))
}

fn single_schema(tref: &TableRef, db: &Database) -> Result<RowSchema> {
    let table = db.table(&tref.name)?;
    let mut s = RowSchema::new();
    for col in &table.schema().columns {
        s.push(tref.effective_name(), &col.name);
    }
    Ok(s)
}

#[allow(clippy::too_many_arguments)]
fn attach_first(
    joined_schema: &mut RowSchema,
    joined_tables: &mut Vec<usize>,
    joined_rows: &mut Vec<Vec<Value>>,
    first: usize,
    _bounds: &[Bound<'_>],
    filtered: &[Vec<Vec<Value>>],
    db: &Database,
    stmt: &SelectStatement,
) -> Result<()> {
    let schema = single_schema(&stmt.from[first], db)?;
    for (q, c) in schema.columns() {
        joined_schema.push(q, c);
    }
    joined_tables.push(first);
    *joined_rows = filtered[first].clone();
    Ok(())
}

/// Hash join between the current intermediate result and a new table.
/// `conditions` pairs an expression over the intermediate with an expression
/// over the new table; when empty the join degenerates to a cross product.
fn hash_join(
    left_rows: &[Vec<Value>],
    left_schema: &RowSchema,
    right_rows: &[Vec<Value>],
    right_schema: &RowSchema,
    conditions: &[(Expr, Expr)],
) -> Result<Vec<Vec<Value>>> {
    let mut out = Vec::new();
    if conditions.is_empty() {
        for l in left_rows {
            for r in right_rows {
                let mut row = l.clone();
                row.extend(r.iter().cloned());
                out.push(row);
            }
        }
        return Ok(out);
    }

    // Build hash table on the right side.
    let mut table: HashMap<Vec<String>, Vec<usize>> = HashMap::new();
    for (i, r) in right_rows.iter().enumerate() {
        let mut key = Vec::with_capacity(conditions.len());
        let mut null_key = false;
        for (_, right_expr) in conditions {
            let v = eval_scalar(right_expr, right_schema, r)?;
            if v.is_null() {
                null_key = true;
                break;
            }
            key.push(canonical_key(&v));
        }
        if !null_key {
            table.entry(key).or_default().push(i);
        }
    }

    for l in left_rows {
        let mut key = Vec::with_capacity(conditions.len());
        let mut null_key = false;
        for (left_expr, _) in conditions {
            let v = eval_scalar(left_expr, left_schema, l)?;
            if v.is_null() {
                null_key = true;
                break;
            }
            key.push(canonical_key(&v));
        }
        if null_key {
            continue;
        }
        if let Some(matches) = table.get(&key) {
            for &i in matches {
                let mut row = l.clone();
                row.extend(right_rows[i].iter().cloned());
                out.push(row);
            }
        }
    }
    Ok(out)
}

/// Join-key canonicalisation so that `Int(5)` and `Float(5.0)` hash equally.
fn canonical_key(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("n:{}", *i as f64),
        Value::Float(f) => format!("n:{f}"),
        other => other.to_string(),
    }
}

type Projected = (Vec<String>, Vec<(Vec<Value>, Vec<Value>)>);

fn plain_project(
    stmt: &SelectStatement,
    schema: &RowSchema,
    rows: &[Vec<Value>],
) -> Result<Projected> {
    let mut columns: Vec<String> = Vec::new();
    for item in &stmt.projection {
        match &item.expr {
            Expr::Star => {
                for (q, c) in schema.columns() {
                    columns.push(format!("{q}.{c}"));
                }
            }
            _ => columns.push(item.output_name()),
        }
    }
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        let mut vals: Vec<Value> = Vec::with_capacity(columns.len());
        for item in &stmt.projection {
            match &item.expr {
                Expr::Star => vals.extend(row.iter().cloned()),
                e => vals.push(eval_scalar(e, schema, row)?),
            }
        }
        let mut keys = Vec::with_capacity(stmt.order_by.len());
        for ob in &stmt.order_by {
            keys.push(eval_scalar(&ob.expr, schema, row)?);
        }
        out.push((vals, keys));
    }
    Ok((columns, out))
}

fn aggregate_project(
    stmt: &SelectStatement,
    schema: &RowSchema,
    rows: &[Vec<Value>],
) -> Result<Projected> {
    // Group rows by the group-by key values.
    let mut groups: Vec<(Vec<String>, Vec<Vec<Value>>)> = Vec::new();
    let mut index: HashMap<Vec<String>, usize> = HashMap::new();
    if stmt.group_by.is_empty() {
        groups.push((Vec::new(), rows.to_vec()));
    } else {
        for row in rows {
            let mut key = Vec::with_capacity(stmt.group_by.len());
            for g in &stmt.group_by {
                key.push(eval_scalar(g, schema, row)?.to_string());
            }
            let idx = *index.entry(key.clone()).or_insert_with(|| {
                groups.push((key.clone(), Vec::new()));
                groups.len() - 1
            });
            groups[idx].1.push(row.clone());
        }
    }

    let columns: Vec<String> = stmt.projection.iter().map(|i| i.output_name()).collect();
    let mut out = Vec::with_capacity(groups.len());
    for (_, group) in &groups {
        let mut vals = Vec::with_capacity(columns.len());
        for item in &stmt.projection {
            if matches!(item.expr, Expr::Star) {
                return Err(RelationError::Unsupported(
                    "SELECT * cannot be combined with GROUP BY".into(),
                ));
            }
            vals.push(eval_over_group(&item.expr, schema, group)?);
        }
        let mut keys = Vec::with_capacity(stmt.order_by.len());
        for ob in &stmt.order_by {
            keys.push(eval_over_group(&ob.expr, schema, group)?);
        }
        out.push((vals, keys));
    }
    Ok((columns, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::{DataType, Date};

    /// The mini-bank slice used by the paper's worked examples.
    fn minidb() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("parties")
                .column("id", DataType::Int)
                .column("party_type", DataType::Text)
                .primary_key("id")
                .build(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("individuals")
                .column("id", DataType::Int)
                .column("firstname", DataType::Text)
                .column("lastname", DataType::Text)
                .column("salary", DataType::Float)
                .column("birthday", DataType::Date)
                .primary_key("id")
                .foreign_key("id", "parties", "id")
                .build(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("fi_transactions")
                .column("id", DataType::Int)
                .column("party_id", DataType::Int)
                .column("amount", DataType::Float)
                .column("transactiondate", DataType::Date)
                .primary_key("id")
                .foreign_key("party_id", "parties", "id")
                .build(),
        )
        .unwrap();

        for (id, ty) in [(1, "IND"), (2, "IND"), (3, "ORG")] {
            db.insert("parties", vec![Value::Int(id), Value::from(ty)])
                .unwrap();
        }
        db.insert(
            "individuals",
            vec![
                Value::Int(1),
                Value::from("Sara"),
                Value::from("Guttinger"),
                Value::Float(120_000.0),
                Value::Date(Date::new(1981, 4, 23)),
            ],
        )
        .unwrap();
        db.insert(
            "individuals",
            vec![
                Value::Int(2),
                Value::from("Peter"),
                Value::from("Meier"),
                Value::Float(80_000.0),
                Value::Date(Date::new(1975, 1, 2)),
            ],
        )
        .unwrap();
        for (id, pid, amount, d) in [
            (10, 1, 500.0, Date::new(2010, 3, 1)),
            (11, 1, 1500.0, Date::new(2010, 3, 1)),
            (12, 2, 700.0, Date::new(2010, 4, 2)),
            (13, 3, 9000.0, Date::new(2011, 9, 5)),
        ] {
            db.insert(
                "fi_transactions",
                vec![
                    Value::Int(id),
                    Value::Int(pid),
                    Value::Float(amount),
                    Value::Date(d),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn query1_sara_guttinger_join() {
        let db = minidb();
        let rs = db
            .run_sql(
                "SELECT * FROM parties, individuals WHERE parties.id = individuals.id \
                 AND individuals.firstname = 'Sara' AND individuals.lastname = 'Guttinger'",
            )
            .unwrap();
        assert_eq!(rs.row_count(), 1);
        assert_eq!(rs.columns().len(), 7);
    }

    #[test]
    fn query2_salary_and_birthday_filters() {
        let db = minidb();
        let rs = db
            .run_sql(
                "SELECT * FROM individuals WHERE individuals.salary >= 100000 \
                 AND individuals.birthday = '1981-04-23'",
            )
            .unwrap();
        assert_eq!(rs.row_count(), 1);
        assert_eq!(rs.rows()[0][1], Value::from("Sara"));
    }

    #[test]
    fn query3_group_by_transaction_date() {
        let db = minidb();
        let rs = db
            .run_sql(
                "SELECT sum(amount), transactiondate FROM fi_transactions GROUP BY transactiondate",
            )
            .unwrap();
        assert_eq!(rs.row_count(), 3);
        let total: f64 = rs.rows().iter().map(|r| r[0].as_f64().unwrap()).sum();
        assert!((total - 11_700.0).abs() < 1e-9);
    }

    #[test]
    fn aggregation_with_order_by_count_desc() {
        let db = minidb();
        let rs = db
            .run_sql(
                "SELECT count(fi_transactions.id), parties.party_type \
                 FROM fi_transactions, parties \
                 WHERE fi_transactions.party_id = parties.id \
                 GROUP BY parties.party_type \
                 ORDER BY count(fi_transactions.id) DESC",
            )
            .unwrap();
        assert_eq!(rs.row_count(), 2);
        assert_eq!(rs.rows()[0][0], Value::Int(3)); // IND has 3 transactions
        assert_eq!(rs.rows()[1][0], Value::Int(1)); // ORG has 1
    }

    #[test]
    fn date_range_predicate() {
        let db = minidb();
        let rs = db
            .run_sql("SELECT id FROM fi_transactions WHERE transactiondate > '2011-09-01'")
            .unwrap();
        assert_eq!(rs.row_count(), 1);
        assert_eq!(rs.rows()[0][0], Value::Int(13));
    }

    #[test]
    fn three_way_join_without_cross_product_explosion() {
        let db = minidb();
        let rs = db
            .run_sql(
                "SELECT individuals.lastname, fi_transactions.amount \
                 FROM parties, individuals, fi_transactions \
                 WHERE parties.id = individuals.id AND fi_transactions.party_id = parties.id",
            )
            .unwrap();
        assert_eq!(rs.row_count(), 3);
    }

    #[test]
    fn cross_product_fallback_when_no_join_predicate() {
        let db = minidb();
        let rs = db
            .run_sql("SELECT parties.id, individuals.id FROM parties, individuals")
            .unwrap();
        assert_eq!(rs.row_count(), 6);
    }

    #[test]
    fn distinct_and_limit() {
        let db = minidb();
        let rs = db
            .run_sql("SELECT DISTINCT party_id FROM fi_transactions ORDER BY party_id LIMIT 2")
            .unwrap();
        assert_eq!(rs.row_count(), 2);
        assert_eq!(rs.rows()[0][0], Value::Int(1));
        assert_eq!(rs.rows()[1][0], Value::Int(2));
    }

    #[test]
    fn like_predicate() {
        let db = minidb();
        let rs = db
            .run_sql("SELECT firstname FROM individuals WHERE lastname LIKE '%gutt%'")
            .unwrap();
        assert_eq!(rs.row_count(), 1);
        assert_eq!(rs.rows()[0][0], Value::from("Sara"));
    }

    #[test]
    fn order_by_column_ascending_and_descending() {
        let db = minidb();
        let asc = db
            .run_sql("SELECT amount FROM fi_transactions ORDER BY amount")
            .unwrap();
        let desc = db
            .run_sql("SELECT amount FROM fi_transactions ORDER BY amount DESC")
            .unwrap();
        assert_eq!(asc.rows()[0][0], Value::Float(500.0));
        assert_eq!(desc.rows()[0][0], Value::Float(9000.0));
    }

    #[test]
    fn aliases_resolve_in_predicates() {
        let db = minidb();
        let rs = db
            .run_sql(
                "SELECT i.lastname FROM individuals i, parties p WHERE i.id = p.id AND p.party_type = 'IND'",
            )
            .unwrap();
        assert_eq!(rs.row_count(), 2);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let db = minidb();
        assert!(matches!(
            db.run_sql("SELECT * FROM missing"),
            Err(RelationError::UnknownTable(_))
        ));
        assert!(db.run_sql("SELECT nosuchcol FROM parties").is_err());
    }

    #[test]
    fn count_star_without_group_by() {
        let db = minidb();
        let rs = db.run_sql("SELECT count(*) FROM fi_transactions").unwrap();
        assert_eq!(rs.row_count(), 1);
        assert_eq!(rs.rows()[0][0], Value::Int(4));
    }

    #[test]
    fn tuple_strings_and_snippet() {
        let db = minidb();
        let rs = db.run_sql("SELECT id FROM parties ORDER BY id").unwrap();
        assert_eq!(rs.tuple_strings(), vec!["1", "2", "3"]);
        let snip = rs.snippet(2);
        assert!(snip.starts_with("id"));
        assert_eq!(snip.lines().count(), 3);
    }
}
