//! Scalar and aggregate expression evaluation.

use crate::error::{RelationError, Result};
use crate::expr::{AggFunc, CompareOp, Expr};
use crate::value::Value;

/// Schema of an intermediate (joined) row: a list of qualified column names.
#[derive(Debug, Clone, Default)]
pub struct RowSchema {
    cols: Vec<(String, String)>,
}

impl RowSchema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a column belonging to `qualifier`.
    pub fn push(&mut self, qualifier: &str, column: &str) {
        self.cols
            .push((qualifier.to_ascii_lowercase(), column.to_ascii_lowercase()));
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.cols.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    /// All `(qualifier, column)` pairs.
    pub fn columns(&self) -> &[(String, String)] {
        &self.cols
    }

    /// Resolves a column reference to its index.
    pub fn resolve(&self, table: Option<&str>, column: &str) -> Result<usize> {
        let column = column.to_ascii_lowercase();
        match table {
            Some(t) => {
                let t = t.to_ascii_lowercase();
                self.cols
                    .iter()
                    .position(|(q, c)| *q == t && *c == column)
                    .ok_or_else(|| RelationError::UnknownColumn(format!("{t}.{column}")))
            }
            None => {
                let mut hits = self
                    .cols
                    .iter()
                    .enumerate()
                    .filter(|(_, (_, c))| *c == column);
                match (hits.next(), hits.next()) {
                    (Some((i, _)), None) => Ok(i),
                    (Some(_), Some(_)) => Err(RelationError::AmbiguousColumn(column)),
                    (None, _) => Err(RelationError::UnknownColumn(column)),
                }
            }
        }
    }

    /// True if the reference can be resolved.
    pub fn can_resolve(&self, table: Option<&str>, column: &str) -> bool {
        self.resolve(table, column).is_ok()
    }

    /// Indexes of all columns belonging to `qualifier`.
    pub fn columns_of(&self, qualifier: &str) -> Vec<usize> {
        let q = qualifier.to_ascii_lowercase();
        self.cols
            .iter()
            .enumerate()
            .filter_map(|(i, (qq, _))| if *qq == q { Some(i) } else { None })
            .collect()
    }
}

/// Case-insensitive SQL `LIKE` with `%` wildcards.
pub fn like_match(text: &str, pattern: &str) -> bool {
    let text = text.to_ascii_lowercase();
    let pattern = pattern.to_ascii_lowercase();
    let parts: Vec<&str> = pattern.split('%').collect();
    if parts.len() == 1 {
        return text == pattern;
    }
    let mut pos = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            if !text.starts_with(part) {
                return false;
            }
            pos = part.len();
        } else if i == parts.len() - 1 {
            return text.len() >= pos && text[pos..].ends_with(part);
        } else {
            match text[pos..].find(part) {
                Some(found) => pos += found + part.len(),
                None => return false,
            }
        }
    }
    true
}

/// Evaluates a scalar expression against one row.  Aggregates are rejected —
/// they are handled by [`eval_over_group`].
pub fn eval_scalar(expr: &Expr, schema: &RowSchema, row: &[Value]) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { table, column } => {
            let idx = schema.resolve(table.as_deref(), column)?;
            Ok(row[idx].clone())
        }
        Expr::Compare { op, left, right } => {
            let l = eval_scalar(left, schema, row)?;
            let r = eval_scalar(right, schema, row)?;
            match l.sql_cmp(&r) {
                None => Ok(Value::Null),
                Some(ord) => {
                    let b = match op {
                        CompareOp::Eq => ord.is_eq(),
                        CompareOp::NotEq => !ord.is_eq(),
                        CompareOp::Lt => ord.is_lt(),
                        CompareOp::LtEq => ord.is_le(),
                        CompareOp::Gt => ord.is_gt(),
                        CompareOp::GtEq => ord.is_ge(),
                    };
                    Ok(Value::Bool(b))
                }
            }
        }
        Expr::Like { expr, pattern } => {
            let v = eval_scalar(expr, schema, row)?;
            match v {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Bool(like_match(&s, pattern))),
                other => Ok(Value::Bool(like_match(&other.to_string(), pattern))),
            }
        }
        Expr::And(a, b) => {
            let l = eval_scalar(a, schema, row)?;
            let r = eval_scalar(b, schema, row)?;
            Ok(match (truthy(&l), truthy(&r)) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Null,
            })
        }
        Expr::Or(a, b) => {
            let l = eval_scalar(a, schema, row)?;
            let r = eval_scalar(b, schema, row)?;
            Ok(match (truthy(&l), truthy(&r)) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Null,
            })
        }
        Expr::Not(e) => {
            let v = eval_scalar(e, schema, row)?;
            Ok(match truthy(&v) {
                Some(b) => Value::Bool(!b),
                None => Value::Null,
            })
        }
        Expr::IsNull(e) => {
            let v = eval_scalar(e, schema, row)?;
            Ok(Value::Bool(v.is_null()))
        }
        Expr::Aggregate { .. } => Err(RelationError::Unsupported(
            "aggregate used outside GROUP BY context".into(),
        )),
        Expr::Star => Err(RelationError::Unsupported(
            "* cannot be evaluated as a scalar".into(),
        )),
    }
}

/// Boolean interpretation of a value (`None` means SQL unknown).
pub fn truthy(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        Value::Null => None,
        Value::Int(i) => Some(*i != 0),
        _ => None,
    }
}

/// Evaluates an expression that may contain aggregates over a group of rows.
/// Non-aggregate sub-expressions are evaluated against the first row of the
/// group (which is correct for group-by keys).
pub fn eval_over_group(expr: &Expr, schema: &RowSchema, group: &[Vec<Value>]) -> Result<Value> {
    match expr {
        Expr::Aggregate { func, arg } => {
            let mut values: Vec<Value> = Vec::with_capacity(group.len());
            for row in group {
                match arg {
                    None => values.push(Value::Int(1)),
                    Some(a) => values.push(eval_scalar(a, schema, row)?),
                }
            }
            Ok(compute_aggregate(*func, &values))
        }
        Expr::Compare { op, left, right } => {
            let l = eval_over_group(left, schema, group)?;
            let r = eval_over_group(right, schema, group)?;
            eval_scalar(
                &Expr::Compare {
                    op: *op,
                    left: Box::new(Expr::Literal(l)),
                    right: Box::new(Expr::Literal(r)),
                },
                schema,
                &[],
            )
        }
        _ if !expr.contains_aggregate() => match group.first() {
            Some(row) => eval_scalar(expr, schema, row),
            None => Ok(Value::Null),
        },
        other => Err(RelationError::Unsupported(format!(
            "unsupported aggregate expression: {other}"
        ))),
    }
}

fn compute_aggregate(func: AggFunc, values: &[Value]) -> Value {
    let non_null: Vec<&Value> = values.iter().filter(|v| !v.is_null()).collect();
    match func {
        AggFunc::Count => Value::Int(non_null.len() as i64),
        AggFunc::Sum => {
            if non_null.is_empty() {
                return Value::Null;
            }
            if non_null.iter().all(|v| matches!(v, Value::Int(_))) {
                Value::Int(non_null.iter().filter_map(|v| v.as_i64()).sum())
            } else {
                Value::Float(non_null.iter().filter_map(|v| v.as_f64()).sum())
            }
        }
        AggFunc::Avg => {
            if non_null.is_empty() {
                return Value::Null;
            }
            let sum: f64 = non_null.iter().filter_map(|v| v.as_f64()).sum();
            Value::Float(sum / non_null.len() as f64)
        }
        AggFunc::Min => non_null
            .iter()
            .min_by(|a, b| a.total_cmp(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
        AggFunc::Max => non_null
            .iter()
            .max_by(|a, b| a.total_cmp(b))
            .map(|v| (*v).clone())
            .unwrap_or(Value::Null),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> RowSchema {
        let mut s = RowSchema::new();
        s.push("individuals", "id");
        s.push("individuals", "firstname");
        s.push("individuals", "salary");
        s.push("parties", "id");
        s
    }

    fn row() -> Vec<Value> {
        vec![
            Value::Int(1),
            Value::from("Sara"),
            Value::Float(120_000.0),
            Value::Int(1),
        ]
    }

    #[test]
    fn resolve_qualified_and_unqualified() {
        let s = schema();
        assert_eq!(s.resolve(Some("parties"), "id").unwrap(), 3);
        assert_eq!(s.resolve(None, "firstname").unwrap(), 1);
        assert!(matches!(
            s.resolve(None, "id"),
            Err(RelationError::AmbiguousColumn(_))
        ));
        assert!(matches!(
            s.resolve(None, "missing"),
            Err(RelationError::UnknownColumn(_))
        ));
        assert_eq!(s.columns_of("individuals"), vec![0, 1, 2]);
    }

    #[test]
    fn comparison_and_boolean_logic() {
        let s = schema();
        let r = row();
        let e = Expr::And(
            Box::new(Expr::compare(
                CompareOp::GtEq,
                Expr::column("salary"),
                Expr::literal(100_000),
            )),
            Box::new(Expr::compare(
                CompareOp::Eq,
                Expr::column("firstname"),
                Expr::literal("Sara"),
            )),
        );
        assert_eq!(eval_scalar(&e, &s, &r).unwrap(), Value::Bool(true));

        let e2 = Expr::Not(Box::new(e));
        assert_eq!(eval_scalar(&e2, &s, &r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn null_propagation_in_logic() {
        let s = schema();
        let mut r = row();
        r[2] = Value::Null;
        let cmp = Expr::compare(CompareOp::Gt, Expr::column("salary"), Expr::literal(1));
        assert_eq!(eval_scalar(&cmp, &s, &r).unwrap(), Value::Null);
        // NULL AND false = false; NULL OR true = true.
        let and = Expr::And(Box::new(cmp.clone()), Box::new(Expr::literal(false)));
        assert_eq!(eval_scalar(&and, &s, &r).unwrap(), Value::Bool(false));
        let or = Expr::Or(Box::new(cmp), Box::new(Expr::literal(true)));
        assert_eq!(eval_scalar(&or, &s, &r).unwrap(), Value::Bool(true));
        let isnull = Expr::IsNull(Box::new(Expr::column("salary")));
        assert_eq!(eval_scalar(&isnull, &s, &r).unwrap(), Value::Bool(true));
    }

    #[test]
    fn like_matching_rules() {
        assert!(like_match("Credit Suisse", "%credit%"));
        assert!(like_match("Credit Suisse", "Credit%"));
        assert!(like_match("Credit Suisse", "%Suisse"));
        assert!(like_match("Credit Suisse", "Credit Suisse"));
        assert!(!like_match("Credit Suisse", "credit"));
        assert!(!like_match("Credit Suisse", "%UBS%"));
        assert!(like_match("abcabc", "%abc%abc"));
        assert!(!like_match("abc", "%abc%abc"));
    }

    #[test]
    fn aggregates_over_groups() {
        let s = schema();
        let group: Vec<Vec<Value>> = vec![
            vec![
                Value::Int(1),
                Value::from("a"),
                Value::Float(10.0),
                Value::Int(1),
            ],
            vec![
                Value::Int(2),
                Value::from("b"),
                Value::Float(20.0),
                Value::Int(1),
            ],
            vec![Value::Int(3), Value::from("c"), Value::Null, Value::Int(1)],
        ];
        let count_star = Expr::Aggregate {
            func: AggFunc::Count,
            arg: None,
        };
        assert_eq!(
            eval_over_group(&count_star, &s, &group).unwrap(),
            Value::Int(3)
        );
        let count_salary = Expr::Aggregate {
            func: AggFunc::Count,
            arg: Some(Box::new(Expr::column("salary"))),
        };
        assert_eq!(
            eval_over_group(&count_salary, &s, &group).unwrap(),
            Value::Int(2)
        );
        let sum = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::column("salary"))),
        };
        assert_eq!(
            eval_over_group(&sum, &s, &group).unwrap(),
            Value::Float(30.0)
        );
        let avg = Expr::Aggregate {
            func: AggFunc::Avg,
            arg: Some(Box::new(Expr::column("salary"))),
        };
        assert_eq!(
            eval_over_group(&avg, &s, &group).unwrap(),
            Value::Float(15.0)
        );
        let min = Expr::Aggregate {
            func: AggFunc::Min,
            arg: Some(Box::new(Expr::qualified("individuals", "id"))),
        };
        assert_eq!(eval_over_group(&min, &s, &group).unwrap(), Value::Int(1));
        let max = Expr::Aggregate {
            func: AggFunc::Max,
            arg: Some(Box::new(Expr::qualified("individuals", "id"))),
        };
        assert_eq!(eval_over_group(&max, &s, &group).unwrap(), Value::Int(3));
    }

    #[test]
    fn group_key_falls_back_to_first_row() {
        let s = schema();
        let group: Vec<Vec<Value>> = vec![row(), row()];
        let key = Expr::column("firstname");
        assert_eq!(
            eval_over_group(&key, &s, &group).unwrap(),
            Value::from("Sara")
        );
    }

    #[test]
    fn sum_of_int_values_stays_integer() {
        let s = schema();
        let group: Vec<Vec<Value>> = vec![
            vec![
                Value::Int(1),
                Value::from("a"),
                Value::Int(5),
                Value::Int(1),
            ],
            vec![
                Value::Int(2),
                Value::from("b"),
                Value::Int(7),
                Value::Int(1),
            ],
        ];
        let sum = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::column("salary"))),
        };
        assert_eq!(eval_over_group(&sum, &s, &group).unwrap(), Value::Int(12));
    }

    #[test]
    fn aggregate_outside_group_context_is_rejected() {
        let s = schema();
        let agg = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::column("salary"))),
        };
        assert!(eval_scalar(&agg, &s, &row()).is_err());
    }
}
