//! Scalar and aggregate expressions used in SQL statements.

use std::fmt;

use crate::value::Value;

/// Comparison operators supported by the engine (and by SODA's input
/// language: `>`, `>=`, `=`, `<=`, `<`, `like`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CompareOp {
    /// SQL spelling of the operator.
    pub fn as_sql(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::NotEq => "<>",
            CompareOp::Lt => "<",
            CompareOp::LtEq => "<=",
            CompareOp::Gt => ">",
            CompareOp::GtEq => ">=",
        }
    }

    /// Parses an operator from its textual form.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "=" | "==" => Some(CompareOp::Eq),
            "<>" | "!=" => Some(CompareOp::NotEq),
            "<" => Some(CompareOp::Lt),
            "<=" => Some(CompareOp::LtEq),
            ">" => Some(CompareOp::Gt),
            ">=" => Some(CompareOp::GtEq),
            _ => None,
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_sql())
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AggFunc {
    /// `count(*)` or `count(col)`
    Count,
    /// `sum(col)`
    Sum,
    /// `avg(col)`
    Avg,
    /// `min(col)`
    Min,
    /// `max(col)`
    Max,
}

impl AggFunc {
    /// SQL spelling of the function name.
    pub fn as_sql(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Parses a function name (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "avg" => Some(AggFunc::Avg),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

/// A scalar (or aggregate) expression.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Expr {
    /// A column reference, optionally qualified with a table name or alias.
    Column {
        /// Table qualifier (`parties.id`), if present.
        table: Option<String>,
        /// Column name.
        column: String,
    },
    /// A literal value.
    Literal(Value),
    /// A binary comparison.
    Compare {
        /// Comparison operator.
        op: CompareOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// SQL `LIKE` with `%` wildcards (case-insensitive, as in the paper's
    /// keyword filters).
    Like {
        /// Expression producing the text to test.
        expr: Box<Expr>,
        /// Pattern with `%` wildcards.
        pattern: String,
    },
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `IS NULL` test.
    IsNull(Box<Expr>),
    /// An aggregate function call; `None` argument means `count(*)`.
    Aggregate {
        /// The aggregate function.
        func: AggFunc,
        /// The aggregated expression, or `None` for `count(*)`.
        arg: Option<Box<Expr>>,
    },
    /// `*` in a projection list.
    Star,
}

impl Expr {
    /// Convenience constructor for an unqualified column reference.
    pub fn column(name: impl Into<String>) -> Self {
        Expr::Column {
            table: None,
            column: name.into(),
        }
    }

    /// Convenience constructor for a qualified column reference.
    pub fn qualified(table: impl Into<String>, name: impl Into<String>) -> Self {
        Expr::Column {
            table: Some(table.into()),
            column: name.into(),
        }
    }

    /// Convenience constructor for a literal.
    pub fn literal(v: impl Into<Value>) -> Self {
        Expr::Literal(v.into())
    }

    /// Convenience constructor for a comparison.
    pub fn compare(op: CompareOp, left: Expr, right: Expr) -> Self {
        Expr::Compare {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Conjunction of an iterator of expressions; `None` when empty.
    pub fn and_all<I: IntoIterator<Item = Expr>>(exprs: I) -> Option<Expr> {
        exprs
            .into_iter()
            .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)))
    }

    /// Splits a conjunctive expression into its conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// True if the expression (recursively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Compare { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::And(a, b) | Expr::Or(a, b) => a.contains_aggregate() || b.contains_aggregate(),
            Expr::Not(e) | Expr::IsNull(e) => e.contains_aggregate(),
            Expr::Like { expr, .. } => expr.contains_aggregate(),
            _ => false,
        }
    }

    /// All column references mentioned in the expression.
    pub fn columns(&self) -> Vec<(&Option<String>, &str)> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<(&'a Option<String>, &'a str)>) {
        match self {
            Expr::Column { table, column } => out.push((table, column.as_str())),
            Expr::Compare { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(e) | Expr::IsNull(e) => e.collect_columns(out),
            Expr::Like { expr, .. } => expr.collect_columns(out),
            Expr::Aggregate { arg: Some(a), .. } => a.collect_columns(out),
            _ => {}
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { table, column } => match table {
                Some(t) => write!(f, "{t}.{column}"),
                None => write!(f, "{column}"),
            },
            Expr::Literal(v) => match v {
                Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
                Value::Date(d) => write!(f, "'{d}'"),
                other => write!(f, "{other}"),
            },
            Expr::Compare { op, left, right } => write!(f, "{left} {op} {right}"),
            Expr::Like { expr, pattern } => write!(f, "{expr} LIKE '{pattern}'"),
            Expr::And(a, b) => write!(f, "{a} AND {b}"),
            Expr::Or(a, b) => write!(f, "({a} OR {b})"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::IsNull(e) => write!(f, "{e} IS NULL"),
            Expr::Aggregate { func, arg } => match arg {
                Some(a) => write!(f, "{}({a})", func.as_sql()),
                None => write!(f, "{}(*)", func.as_sql()),
            },
            Expr::Star => f.write_str("*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_op_round_trip() {
        for op in [
            CompareOp::Eq,
            CompareOp::NotEq,
            CompareOp::Lt,
            CompareOp::LtEq,
            CompareOp::Gt,
            CompareOp::GtEq,
        ] {
            assert_eq!(CompareOp::parse(op.as_sql()), Some(op));
        }
        assert_eq!(CompareOp::parse("like"), None);
    }

    #[test]
    fn agg_func_parse_is_case_insensitive() {
        assert_eq!(AggFunc::parse("SUM"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("Count"), Some(AggFunc::Count));
        assert_eq!(AggFunc::parse("median"), None);
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::and_all(vec![
            Expr::compare(CompareOp::Eq, Expr::column("a"), Expr::literal(1)),
            Expr::compare(CompareOp::Eq, Expr::column("b"), Expr::literal(2)),
            Expr::compare(CompareOp::Eq, Expr::column("c"), Expr::literal(3)),
        ])
        .unwrap();
        assert_eq!(e.conjuncts().len(), 3);
    }

    #[test]
    fn and_all_of_empty_is_none() {
        assert_eq!(Expr::and_all(Vec::new()), None);
    }

    #[test]
    fn contains_aggregate_detection() {
        let agg = Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::column("amount"))),
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::compare(CompareOp::Gt, agg, Expr::literal(10));
        assert!(nested.contains_aggregate());
        assert!(!Expr::column("amount").contains_aggregate());
    }

    #[test]
    fn columns_are_collected_recursively() {
        let e = Expr::And(
            Box::new(Expr::compare(
                CompareOp::Eq,
                Expr::qualified("parties", "id"),
                Expr::qualified("individuals", "id"),
            )),
            Box::new(Expr::Like {
                expr: Box::new(Expr::column("firstname")),
                pattern: "Sara%".into(),
            }),
        );
        let cols = e.columns();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[2].1, "firstname");
    }

    #[test]
    fn display_produces_readable_sql_fragments() {
        let e = Expr::compare(
            CompareOp::GtEq,
            Expr::qualified("persons", "salary"),
            Expr::literal(100_000),
        );
        assert_eq!(e.to_string(), "persons.salary >= 100000");
        let txt = Expr::literal("O'Brien");
        assert_eq!(txt.to_string(), "'O''Brien'");
    }
}
