//! Pretty-printer that turns a [`SelectStatement`] back into SQL text.
//!
//! SODA presents the generated SQL to the business user (and our experiment
//! reports include it), so the output aims for the readable style used in the
//! paper's examples.

use crate::sql::ast::{SelectItem, SelectStatement, TableRef};

fn print_table_ref(t: &TableRef) -> String {
    match &t.alias {
        Some(a) => format!("{} {a}", t.name),
        None => t.name.clone(),
    }
}

fn print_select_item(item: &SelectItem) -> String {
    match &item.alias {
        Some(a) => format!("{} AS {a}", item.expr),
        None => item.expr.to_string(),
    }
}

/// Renders a statement as a single-line SQL string.
pub fn print_select(stmt: &SelectStatement) -> String {
    let mut out = String::from("SELECT ");
    if stmt.distinct {
        out.push_str("DISTINCT ");
    }
    out.push_str(
        &stmt
            .projection
            .iter()
            .map(print_select_item)
            .collect::<Vec<_>>()
            .join(", "),
    );
    out.push_str(" FROM ");
    out.push_str(
        &stmt
            .from
            .iter()
            .map(print_table_ref)
            .collect::<Vec<_>>()
            .join(", "),
    );
    if let Some(sel) = &stmt.selection {
        out.push_str(" WHERE ");
        out.push_str(&sel.to_string());
    }
    if !stmt.group_by.is_empty() {
        out.push_str(" GROUP BY ");
        out.push_str(
            &stmt
                .group_by
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    if !stmt.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        out.push_str(
            &stmt
                .order_by
                .iter()
                .map(|o| {
                    if o.descending {
                        format!("{} DESC", o.expr)
                    } else {
                        o.expr.to_string()
                    }
                })
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    if let Some(limit) = stmt.limit {
        out.push_str(&format!(" LIMIT {limit}"));
    }
    out
}

/// Renders a statement in the indented, multi-line style the paper uses for
/// its query listings.
pub fn print_select_pretty(stmt: &SelectStatement) -> String {
    let single = print_select(stmt);
    single
        .replace(" FROM ", "\nFROM ")
        .replace(" WHERE ", "\nWHERE ")
        .replace(" AND ", "\nAND ")
        .replace(" GROUP BY ", "\nGROUP BY ")
        .replace(" ORDER BY ", "\nORDER BY ")
        .replace(" LIMIT ", "\nLIMIT ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_select;

    #[test]
    fn round_trips_through_the_parser() {
        let sql = "SELECT count(fi_transactions.id), companyname \
                   FROM transactions, fi_transactions, organizations \
                   WHERE transactions.id = fi_transactions.id \
                   AND transactions.toparty = organizations.id \
                   GROUP BY organizations.companyname \
                   ORDER BY count(fi_transactions.id) DESC LIMIT 10";
        let stmt = parse_select(sql).unwrap();
        let printed = print_select(&stmt);
        let reparsed = parse_select(&printed).unwrap();
        assert_eq!(stmt, reparsed);
    }

    #[test]
    fn pretty_print_breaks_clauses_onto_lines() {
        let stmt = parse_select(
            "SELECT * FROM parties, individuals WHERE parties.id = individuals.id AND individuals.firstname = 'Sara'",
        )
        .unwrap();
        let pretty = print_select_pretty(&stmt);
        assert!(pretty.contains("\nFROM "));
        assert!(pretty.contains("\nWHERE "));
        assert!(pretty.contains("\nAND "));
    }

    #[test]
    fn distinct_and_aliases_are_preserved() {
        let stmt = parse_select("SELECT DISTINCT a AS x FROM t u WHERE u.a > 1").unwrap();
        let printed = print_select(&stmt);
        assert!(printed.contains("DISTINCT"));
        assert!(printed.contains("AS x"));
        assert!(printed.contains("t u"));
        assert_eq!(parse_select(&printed).unwrap(), stmt);
    }
}
