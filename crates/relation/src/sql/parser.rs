//! Recursive-descent parser for the SQL subset.

use crate::error::{RelationError, Result};
use crate::expr::{AggFunc, CompareOp, Expr};
use crate::sql::ast::{OrderByItem, SelectItem, SelectStatement, TableRef};
use crate::sql::lexer::{lex, Token};
use crate::value::{Date, Value};

/// Reserved words that cannot be used as bare table aliases.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "by", "limit", "and", "or", "not", "like", "is",
    "null", "as", "asc", "desc", "distinct", "between", "in", "inner", "join", "on",
];

/// Parses a single `SELECT` statement.
pub fn parse_select(sql: &str) -> Result<SelectStatement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.select()?;
    if !p.at_end() {
        return Err(RelationError::Parse(format!(
            "unexpected trailing token: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(t) if t.is_keyword(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(RelationError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<()> {
        if self.eat(tok) {
            Ok(())
        } else {
            Err(RelationError::Parse(format!(
                "expected {tok:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(RelationError::Parse(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn select(&mut self) -> Result<SelectStatement> {
        self.expect_keyword("select")?;
        let distinct = self.eat_keyword("distinct");
        let mut projection = vec![self.select_item()?];
        while self.eat(&Token::Comma) {
            projection.push(self.select_item()?);
        }
        self.expect_keyword("from")?;
        let mut from = vec![self.table_ref()?];
        while self.eat(&Token::Comma) {
            from.push(self.table_ref()?);
        }
        let selection = if self.eat_keyword("where") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("group") {
            self.expect_keyword("by")?;
            group_by.push(self.operand()?);
            while self.eat(&Token::Comma) {
                group_by.push(self.operand()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.operand()?;
                let descending = if self.eat_keyword("desc") {
                    true
                } else {
                    self.eat_keyword("asc");
                    false
                };
                order_by.push(OrderByItem { expr, descending });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("limit") {
            match self.next() {
                Some(Token::Number(n)) => Some(
                    n.parse::<usize>()
                        .map_err(|_| RelationError::Parse(format!("invalid LIMIT value: {n}")))?,
                ),
                other => {
                    return Err(RelationError::Parse(format!(
                        "expected number after LIMIT, found {other:?}"
                    )))
                }
            }
        } else {
            None
        };
        Ok(SelectStatement {
            distinct,
            projection,
            from,
            selection,
            group_by,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::expr(Expr::Star));
        }
        let expr = self.operand()?;
        let alias = if self.eat_keyword("as") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                Some(Token::Ident(s)) if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) => {
                    let a = s.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(SelectItem { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_keyword("as") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                Some(Token::Ident(s)) if !RESERVED.contains(&s.to_ascii_lowercase().as_str()) => {
                    let a = s.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(TableRef { name, alias })
    }

    fn expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("or") {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("and") {
            let right = self.not_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("not") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> Result<Expr> {
        // Parenthesised boolean expression.
        if self.peek() == Some(&Token::LParen) {
            // Look ahead: a parenthesis could also wrap an operand in a
            // comparison; we only treat it as a boolean group if it parses as
            // one cleanly.
            let checkpoint = self.pos;
            self.pos += 1;
            if let Ok(inner) = self.expr() {
                if self.eat(&Token::RParen) {
                    // If the next token is a comparison operator, the group was
                    // actually an operand; fall through by rewinding.
                    let next_is_cmp = matches!(self.peek(), Some(Token::Op(_)))
                        || matches!(self.peek(), Some(t) if t.is_keyword("like"));
                    if !next_is_cmp {
                        return Ok(inner);
                    }
                }
            }
            self.pos = checkpoint;
        }

        let left = self.operand()?;
        match self.peek().cloned() {
            Some(Token::Op(op)) => {
                self.pos += 1;
                let op = CompareOp::parse(&op)
                    .ok_or_else(|| RelationError::Parse(format!("unknown operator {op}")))?;
                let right = self.operand()?;
                Ok(Expr::Compare {
                    op,
                    left: Box::new(left),
                    right: Box::new(right),
                })
            }
            Some(t) if t.is_keyword("like") => {
                self.pos += 1;
                match self.next() {
                    Some(Token::StringLit(p)) => Ok(Expr::Like {
                        expr: Box::new(left),
                        pattern: p,
                    }),
                    other => Err(RelationError::Parse(format!(
                        "expected string pattern after LIKE, found {other:?}"
                    ))),
                }
            }
            Some(t) if t.is_keyword("is") => {
                self.pos += 1;
                let negated = self.eat_keyword("not");
                self.expect_keyword("null")?;
                let e = Expr::IsNull(Box::new(left));
                Ok(if negated { Expr::Not(Box::new(e)) } else { e })
            }
            Some(t) if t.is_keyword("between") => {
                self.pos += 1;
                let low = self.operand()?;
                self.expect_keyword("and")?;
                let high = self.operand()?;
                Ok(Expr::And(
                    Box::new(Expr::Compare {
                        op: CompareOp::GtEq,
                        left: Box::new(left.clone()),
                        right: Box::new(low),
                    }),
                    Box::new(Expr::Compare {
                        op: CompareOp::LtEq,
                        left: Box::new(left),
                        right: Box::new(high),
                    }),
                ))
            }
            _ => Ok(left),
        }
    }

    fn operand(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Number(n)) => {
                if n.contains('.') {
                    let f: f64 = n
                        .parse()
                        .map_err(|_| RelationError::Parse(format!("bad number {n}")))?;
                    Ok(Expr::Literal(Value::Float(f)))
                } else {
                    let i: i64 = n
                        .parse()
                        .map_err(|_| RelationError::Parse(format!("bad number {n}")))?;
                    Ok(Expr::Literal(Value::Int(i)))
                }
            }
            Some(Token::StringLit(s)) => {
                // Date-shaped strings become dates so that comparisons against
                // DATE columns behave naturally.
                if let Some(d) = Date::parse(&s) {
                    Ok(Expr::Literal(Value::Date(d)))
                } else {
                    Ok(Expr::Literal(Value::Text(s)))
                }
            }
            Some(Token::Star) => Ok(Expr::Star),
            Some(Token::LParen) => {
                let inner = self.operand()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                // DATE '2011-09-01'
                if name.eq_ignore_ascii_case("date") {
                    if let Some(Token::StringLit(s)) = self.peek().cloned() {
                        self.pos += 1;
                        let d = Date::parse(&s).ok_or_else(|| {
                            RelationError::Parse(format!("invalid date literal '{s}'"))
                        })?;
                        return Ok(Expr::Literal(Value::Date(d)));
                    }
                }
                // Aggregate function call.
                if self.peek() == Some(&Token::LParen) {
                    if let Some(func) = AggFunc::parse(&name) {
                        self.pos += 1;
                        // Both `count(*)` and a bare `count()` mean "no
                        // argument"; the star just needs consuming.
                        let arg = if self.eat(&Token::Star) || self.peek() == Some(&Token::RParen) {
                            None
                        } else {
                            Some(Box::new(self.operand()?))
                        };
                        self.expect(&Token::RParen)?;
                        return Ok(Expr::Aggregate { func, arg });
                    }
                    return Err(RelationError::Parse(format!("unknown function {name}")));
                }
                // Qualified column (or table.*).
                if self.eat(&Token::Dot) {
                    if self.eat(&Token::Star) {
                        // table.* is only meaningful in projections; represent
                        // it as a Star with a qualifier lost — the executor
                        // treats it as all columns of that table via Column
                        // with a special name. Keep it simple: full star.
                        return Ok(Expr::Star);
                    }
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        table: Some(name),
                        column: col,
                    });
                }
                if name.eq_ignore_ascii_case("null") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("true") {
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("false") {
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                Ok(Expr::Column {
                    table: None,
                    column: name,
                })
            }
            other => Err(RelationError::Parse(format!(
                "expected operand, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query1_from_the_paper() {
        let sql = "SELECT * FROM parties, individuals \
                   WHERE parties.id = individuals.id \
                   AND individuals.firstName = 'Sara' \
                   AND individuals.lastName = 'Guttinger'";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.from.len(), 2);
        assert_eq!(stmt.projection.len(), 1);
        let conjuncts = stmt.selection.as_ref().unwrap().conjuncts().len();
        assert_eq!(conjuncts, 3);
    }

    #[test]
    fn parses_query3_aggregation() {
        let sql =
            "SELECT sum(amount), transactiondate FROM fi_transactions GROUP BY transactiondate";
        let stmt = parse_select(sql).unwrap();
        assert!(stmt.is_aggregate());
        assert_eq!(stmt.group_by.len(), 1);
        assert!(matches!(
            stmt.projection[0].expr,
            Expr::Aggregate {
                func: AggFunc::Sum,
                ..
            }
        ));
    }

    #[test]
    fn parses_query4_with_order_by_desc() {
        let sql = "SELECT count(fi_transactions.id), companyname \
                   FROM transactions, fi_transactions, organizations \
                   WHERE transactions.id = fi_transactions.id \
                   AND transactions.toParty = organizations.id \
                   GROUP BY organizations.companyname \
                   ORDER BY count(fi_transactions.id) desc";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.from.len(), 3);
        assert_eq!(stmt.order_by.len(), 1);
        assert!(stmt.order_by[0].descending);
        assert!(stmt.order_by[0].expr.contains_aggregate());
    }

    #[test]
    fn parses_dates_and_ranges() {
        let stmt = parse_select(
            "SELECT * FROM persons WHERE birthday = date('1981-04-23') AND salary >= 100000",
        );
        // date('...') is not the supported form; DATE 'literal' and plain
        // strings are. Verify the error is clean.
        assert!(stmt.is_err());

        let stmt = parse_select(
            "SELECT * FROM persons WHERE birthday = DATE '1981-04-23' AND salary >= 100000",
        )
        .unwrap();
        let conj = stmt.selection.unwrap();
        assert_eq!(conj.conjuncts().len(), 2);

        let stmt = parse_select(
            "SELECT * FROM trade_order_td WHERE order_dt BETWEEN '2010-01-01' AND '2010-12-31'",
        )
        .unwrap();
        assert_eq!(stmt.selection.unwrap().conjuncts().len(), 2);
    }

    #[test]
    fn parses_distinct_limit_and_aliases() {
        let stmt = parse_select(
            "SELECT DISTINCT i.family_name AS name FROM individual i WHERE i.salary > 500000 LIMIT 10",
        )
        .unwrap();
        assert!(stmt.distinct);
        assert_eq!(stmt.limit, Some(10));
        assert_eq!(stmt.from[0].alias.as_deref(), Some("i"));
        assert_eq!(stmt.projection[0].alias.as_deref(), Some("name"));
    }

    #[test]
    fn parses_like_and_or_and_not() {
        let stmt =
            parse_select("SELECT * FROM t WHERE (a LIKE '%gold%' OR b = 1) AND NOT c IS NULL")
                .unwrap();
        let sel = stmt.selection.unwrap();
        assert_eq!(sel.conjuncts().len(), 2);
    }

    #[test]
    fn rejects_trailing_garbage_and_missing_from() {
        assert!(parse_select("SELECT * FROM t WHERE a = 1 extra garbage tokens").is_err());
        assert!(parse_select("SELECT *").is_err());
        assert!(parse_select("FROM t").is_err());
    }

    #[test]
    fn count_star_and_count_column() {
        let stmt = parse_select("SELECT count(*), count(id) FROM t GROUP BY x").unwrap();
        assert!(matches!(
            stmt.projection[0].expr,
            Expr::Aggregate {
                func: AggFunc::Count,
                arg: None
            }
        ));
        assert!(matches!(
            stmt.projection[1].expr,
            Expr::Aggregate {
                func: AggFunc::Count,
                arg: Some(_)
            }
        ));
    }

    #[test]
    fn null_and_boolean_literals() {
        let stmt = parse_select("SELECT * FROM t WHERE a = NULL OR b = TRUE").unwrap();
        assert!(stmt.selection.is_some());
    }
}
