//! SQL subset: abstract syntax tree, lexer, parser and printer.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
