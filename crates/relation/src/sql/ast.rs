//! Abstract syntax tree of the SQL subset.
//!
//! The paper's generated SQL uses the classic comma-separated `FROM` list with
//! join predicates in the `WHERE` clause (see Query 1 and Query 4 of the
//! paper), so the AST models exactly that: a list of table references, a
//! single optional selection expression, optional grouping, ordering and a
//! row limit.

use crate::expr::Expr;

/// A table reference in the `FROM` clause.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TableRef {
    /// Table name in the catalog.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// A table reference without alias.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            alias: None,
        }
    }

    /// A table reference with an alias.
    pub fn aliased(name: impl Into<String>, alias: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            alias: Some(alias.into()),
        }
    }

    /// The name used to qualify columns of this reference (alias if present).
    pub fn effective_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// Optional output alias.
    pub alias: Option<String>,
}

impl SelectItem {
    /// Projection item without alias.
    pub fn expr(expr: Expr) -> Self {
        Self { expr, alias: None }
    }

    /// Projection item with alias.
    pub fn aliased(expr: Expr, alias: impl Into<String>) -> Self {
        Self {
            expr,
            alias: Some(alias.into()),
        }
    }

    /// The output column name of this item.
    pub fn output_name(&self) -> String {
        if let Some(a) = &self.alias {
            return a.clone();
        }
        match &self.expr {
            Expr::Column { column, .. } => column.clone(),
            other => other.to_string(),
        }
    }
}

/// An `ORDER BY` entry.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OrderByItem {
    /// Expression to order by.
    pub expr: Expr,
    /// True for descending order.
    pub descending: bool,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SelectStatement {
    /// `DISTINCT` flag.
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// `FROM` list (implicit cross product; join predicates live in `selection`).
    pub from: Vec<TableRef>,
    /// `WHERE` clause.
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `ORDER BY` entries.
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT` row count.
    pub limit: Option<usize>,
}

impl SelectStatement {
    /// Creates an empty `SELECT *`-style statement over the given tables.
    pub fn star_over(tables: Vec<TableRef>) -> Self {
        Self {
            distinct: false,
            projection: vec![SelectItem::expr(Expr::Star)],
            from: tables,
            selection: None,
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        }
    }

    /// True if the statement aggregates (has group-by or an aggregate in the
    /// projection).
    pub fn is_aggregate(&self) -> bool {
        !self.group_by.is_empty()
            || self
                .projection
                .iter()
                .any(|item| item.expr.contains_aggregate())
    }

    /// Names of all referenced tables.
    pub fn table_names(&self) -> Vec<&str> {
        self.from.iter().map(|t| t.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{AggFunc, CompareOp};

    #[test]
    fn table_ref_effective_name() {
        assert_eq!(TableRef::new("parties").effective_name(), "parties");
        assert_eq!(TableRef::aliased("parties", "p").effective_name(), "p");
    }

    #[test]
    fn select_item_output_name() {
        assert_eq!(
            SelectItem::expr(Expr::qualified("t", "amount")).output_name(),
            "amount"
        );
        assert_eq!(
            SelectItem::aliased(Expr::column("x"), "total").output_name(),
            "total"
        );
        let agg = SelectItem::expr(Expr::Aggregate {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::column("amount"))),
        });
        assert_eq!(agg.output_name(), "sum(amount)");
    }

    #[test]
    fn aggregate_detection() {
        let mut stmt = SelectStatement::star_over(vec![TableRef::new("t")]);
        assert!(!stmt.is_aggregate());
        stmt.group_by.push(Expr::column("c"));
        assert!(stmt.is_aggregate());

        let mut stmt2 = SelectStatement::star_over(vec![TableRef::new("t")]);
        stmt2.projection = vec![SelectItem::expr(Expr::Aggregate {
            func: AggFunc::Count,
            arg: None,
        })];
        assert!(stmt2.is_aggregate());
        let _ = CompareOp::Eq;
    }

    #[test]
    fn table_names_listed_in_from_order() {
        let stmt = SelectStatement::star_over(vec![
            TableRef::new("transactions"),
            TableRef::new("fi_transactions"),
            TableRef::new("organizations"),
        ]);
        assert_eq!(
            stmt.table_names(),
            vec!["transactions", "fi_transactions", "organizations"]
        );
    }
}
