//! A small SQL lexer.

use crate::error::{RelationError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased check happens in the parser).
    Ident(String),
    /// Numeric literal.
    Number(String),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    StringLit(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// Comparison operator: `=`, `<`, `<=`, `>`, `>=`, `<>`, `!=`.
    Op(String),
}

impl Token {
    /// True if this token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenises a SQL string.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            c if c.is_whitespace() => i += 1,
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ';' => i += 1,
            '\'' => {
                let mut s = String::new();
                i += 1;
                let mut closed = false;
                while i < bytes.len() {
                    let c2 = bytes[i] as char;
                    if c2 == '\'' {
                        if i + 1 < bytes.len() && bytes[i + 1] as char == '\'' {
                            s.push('\'');
                            i += 2;
                            continue;
                        }
                        closed = true;
                        i += 1;
                        break;
                    }
                    s.push(c2);
                    i += 1;
                }
                if !closed {
                    return Err(RelationError::Parse("unterminated string literal".into()));
                }
                tokens.push(Token::StringLit(s));
            }
            '=' => {
                tokens.push(Token::Op("=".into()));
                i += 1;
            }
            '<' | '>' | '!' => {
                let mut op = String::new();
                op.push(c);
                if i + 1 < bytes.len() {
                    let next = bytes[i + 1] as char;
                    if next == '=' || (c == '<' && next == '>') {
                        op.push(next);
                        i += 1;
                    }
                }
                if op == "!" {
                    return Err(RelationError::Parse("unexpected '!'".into()));
                }
                tokens.push(Token::Op(op));
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] as char == '.'
                        || bytes[i] as char == '-' && i == start)
                {
                    // A '.' followed by a non-digit ends the number (covers
                    // `t1.c` style qualified names starting with digits, which
                    // we do not generate anyway).
                    if bytes[i] as char == '.'
                        && (i + 1 >= bytes.len() || !(bytes[i + 1] as char).is_ascii_digit())
                    {
                        break;
                    }
                    i += 1;
                }
                tokens.push(Token::Number(input[start..i].to_string()));
            }
            '-' if i + 1 < bytes.len() && (bytes[i + 1] as char).is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit() || bytes[i] as char == '.')
                {
                    i += 1;
                }
                tokens.push(Token::Number(input[start..i].to_string()));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] as char == '_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(RelationError::Parse(format!(
                    "unexpected character {other:?} at byte {i}"
                )));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_simple_select() {
        let toks = lex("SELECT * FROM parties WHERE id = 1").unwrap();
        assert_eq!(toks.len(), 8);
        assert!(toks[0].is_keyword("select"));
        assert_eq!(toks[1], Token::Star);
        assert_eq!(toks[6], Token::Op("=".into()));
        assert_eq!(toks[7], Token::Number("1".into()));
    }

    #[test]
    fn lexes_strings_with_escaped_quotes() {
        let toks = lex("name = 'O''Brien'").unwrap();
        assert_eq!(toks[2], Token::StringLit("O'Brien".into()));
    }

    #[test]
    fn lexes_comparison_operators() {
        let toks = lex("a >= 1 AND b <> 2 AND c != 3 AND d <= 4").unwrap();
        let ops: Vec<_> = toks
            .iter()
            .filter_map(|t| match t {
                Token::Op(o) => Some(o.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec![">=", "<>", "!=", "<="]);
    }

    #[test]
    fn lexes_qualified_names_and_floats() {
        let toks = lex("parties.id = 3.5").unwrap();
        assert_eq!(toks[0], Token::Ident("parties".into()));
        assert_eq!(toks[1], Token::Dot);
        assert_eq!(toks[4], Token::Number("3.5".into()));
    }

    #[test]
    fn negative_numbers_after_operator() {
        let toks = lex("salary >= -100").unwrap();
        assert_eq!(toks[2], Token::Number("-100".into()));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("name = 'oops").is_err());
    }

    #[test]
    fn unexpected_character_is_an_error() {
        assert!(lex("a = #").is_err());
    }
}
