//! Error type shared across the relational engine.

use std::fmt;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, RelationError>;

/// Errors produced by the catalog, parser or executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationError {
    /// A table name was not found in the catalog.
    UnknownTable(String),
    /// A column name could not be resolved.
    UnknownColumn(String),
    /// A column reference was ambiguous between several tables.
    AmbiguousColumn(String),
    /// A table with the same name already exists.
    DuplicateTable(String),
    /// A row did not match its table schema.
    SchemaViolation(String),
    /// The SQL text could not be parsed.
    Parse(String),
    /// The statement is valid SQL but not executable by this engine.
    Unsupported(String),
    /// A type error during expression evaluation.
    Type(String),
    /// Anything else.
    Other(String),
}

impl fmt::Display for RelationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            RelationError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            RelationError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            RelationError::DuplicateTable(t) => write!(f, "table already exists: {t}"),
            RelationError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            RelationError::Parse(m) => write!(f, "SQL parse error: {m}"),
            RelationError::Unsupported(m) => write!(f, "unsupported SQL: {m}"),
            RelationError::Type(m) => write!(f, "type error: {m}"),
            RelationError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RelationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RelationError::UnknownTable("parties".into());
        assert!(e.to_string().contains("parties"));
        let e = RelationError::Parse("expected FROM".into());
        assert!(e.to_string().contains("expected FROM"));
    }
}
