//! Table schemas: columns, primary keys and foreign keys.
//!
//! Foreign-key definitions are what the SODA graph builder translates into
//! `foreign_key` / join-relationship edges of the metadata graph, so the
//! schema carries them explicitly.

use crate::value::DataType;

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ColumnDef {
    /// Column name (physical name, e.g. `birth_dt`).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether NULLs are allowed.
    pub nullable: bool,
}

/// A foreign-key relationship from one column of this table to a column of a
/// referenced table.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ForeignKeyDef {
    /// Referencing column in this table.
    pub column: String,
    /// Referenced table name.
    pub ref_table: String,
    /// Referenced column name.
    pub ref_column: String,
}

/// Schema of a table.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TableSchema {
    /// Physical table name.
    pub name: String,
    /// Column definitions in order.
    pub columns: Vec<ColumnDef>,
    /// Primary-key columns (may be empty for bridge/history tables).
    pub primary_key: Vec<String>,
    /// Foreign keys declared on this table.
    pub foreign_keys: Vec<ForeignKeyDef>,
    /// Free-form business comment (surfaces in the metadata graph as a label).
    pub comment: Option<String>,
}

impl TableSchema {
    /// Starts a builder for a schema with the given table name.
    pub fn builder(name: impl Into<String>) -> TableSchemaBuilder {
        TableSchemaBuilder {
            schema: TableSchema {
                name: name.into(),
                columns: Vec::new(),
                primary_key: Vec::new(),
                foreign_keys: Vec::new(),
                comment: None,
            },
        }
    }

    /// Index of a column by name (case-insensitive).
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.column_index(name).map(|i| &self.columns[i])
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// All column names in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// True if `name` is part of the primary key.
    pub fn is_primary_key(&self, name: &str) -> bool {
        self.primary_key
            .iter()
            .any(|k| k.eq_ignore_ascii_case(name))
    }

    /// Returns the foreign key declared on `column`, if any.
    pub fn foreign_key_of(&self, column: &str) -> Option<&ForeignKeyDef> {
        self.foreign_keys
            .iter()
            .find(|fk| fk.column.eq_ignore_ascii_case(column))
    }
}

/// Fluent builder for [`TableSchema`].
#[derive(Debug, Clone)]
pub struct TableSchemaBuilder {
    schema: TableSchema,
}

impl TableSchemaBuilder {
    /// Adds a non-nullable column.
    pub fn column(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        self.schema.columns.push(ColumnDef {
            name: name.into(),
            data_type,
            nullable: false,
        });
        self
    }

    /// Adds a nullable column.
    pub fn nullable_column(mut self, name: impl Into<String>, data_type: DataType) -> Self {
        self.schema.columns.push(ColumnDef {
            name: name.into(),
            data_type,
            nullable: true,
        });
        self
    }

    /// Declares a single-column primary key (may be called repeatedly for a
    /// composite key).
    pub fn primary_key(mut self, column: impl Into<String>) -> Self {
        self.schema.primary_key.push(column.into());
        self
    }

    /// Declares a foreign key `column → ref_table.ref_column`.
    pub fn foreign_key(
        mut self,
        column: impl Into<String>,
        ref_table: impl Into<String>,
        ref_column: impl Into<String>,
    ) -> Self {
        self.schema.foreign_keys.push(ForeignKeyDef {
            column: column.into(),
            ref_table: ref_table.into(),
            ref_column: ref_column.into(),
        });
        self
    }

    /// Attaches a business comment.
    pub fn comment(mut self, comment: impl Into<String>) -> Self {
        self.schema.comment = Some(comment.into());
        self
    }

    /// Finishes the schema.
    ///
    /// # Panics
    /// Panics if a primary-key or foreign-key column does not exist, or if two
    /// columns share a name — these are programming errors in schema
    /// definitions, not runtime conditions.
    pub fn build(self) -> TableSchema {
        let s = self.schema;
        for (i, c) in s.columns.iter().enumerate() {
            assert!(
                !s.columns[..i]
                    .iter()
                    .any(|o| o.name.eq_ignore_ascii_case(&c.name)),
                "duplicate column {} in table {}",
                c.name,
                s.name
            );
        }
        for pk in &s.primary_key {
            assert!(
                s.column_index(pk).is_some(),
                "primary key column {pk} missing in table {}",
                s.name
            );
        }
        for fk in &s.foreign_keys {
            assert!(
                s.column_index(&fk.column).is_some(),
                "foreign key column {} missing in table {}",
                fk.column,
                s.name
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        TableSchema::builder("individual")
            .column("party_id", DataType::Int)
            .column("given_name", DataType::Text)
            .column("family_name", DataType::Text)
            .nullable_column("salary", DataType::Float)
            .column("birth_dt", DataType::Date)
            .primary_key("party_id")
            .foreign_key("party_id", "party", "party_id")
            .comment("private customers")
            .build()
    }

    #[test]
    fn builder_produces_expected_schema() {
        let s = schema();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.column_index("GIVEN_NAME"), Some(1));
        assert!(s.is_primary_key("party_id"));
        assert!(!s.is_primary_key("salary"));
        assert_eq!(s.foreign_key_of("party_id").unwrap().ref_table, "party");
        assert_eq!(s.comment.as_deref(), Some("private customers"));
        assert!(s.column("salary").unwrap().nullable);
    }

    #[test]
    fn column_lookup_is_case_insensitive() {
        let s = schema();
        assert!(s.column("Birth_DT").is_some());
        assert!(s.column("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_panic() {
        TableSchema::builder("t")
            .column("a", DataType::Int)
            .column("A", DataType::Int)
            .build();
    }

    #[test]
    #[should_panic(expected = "primary key column")]
    fn missing_primary_key_column_panics() {
        TableSchema::builder("t")
            .column("a", DataType::Int)
            .primary_key("b")
            .build();
    }

    #[test]
    #[should_panic(expected = "foreign key column")]
    fn missing_foreign_key_column_panics() {
        TableSchema::builder("t")
            .column("a", DataType::Int)
            .foreign_key("b", "other", "id")
            .build();
    }

    #[test]
    fn column_names_in_declaration_order() {
        let s = schema();
        assert_eq!(
            s.column_names(),
            vec![
                "party_id",
                "given_name",
                "family_name",
                "salary",
                "birth_dt"
            ]
        );
    }
}
