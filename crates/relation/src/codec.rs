//! Compact binary encoding of relational values, rows and SQL statements.
//!
//! The durability layer (`soda-journal`, and the serving layer's persistent
//! result-page cache) needs to write [`Value`]s, [`Row`]s and generated
//! [`SelectStatement`]s to disk and read them back **structurally
//! identical** — re-parsing printed SQL would round-trip the text but not
//! necessarily the AST, and floats must survive bit-exactly for recovered
//! pages to compare equal to never-persisted ones.  This module provides
//! that: a tiny, dependency-free, little-endian tag-length-value codec with
//! an explicit [`Encoder`] / [`Decoder`] pair and per-type helpers.
//!
//! The format is not self-describing and carries no versioning of its own;
//! the files built on top of it (journal, cache) prefix a magic + version
//! header and checksum every frame, so a decoder here only ever sees bytes
//! that were written by the same build lineage and passed a CRC.
//!
//! ```
//! use soda_relation::codec::{Decoder, Encoder};
//! use soda_relation::Value;
//!
//! let mut enc = Encoder::new();
//! enc.put_value(&Value::from("Zurich"));
//! enc.put_value(&Value::Float(1.5));
//! let bytes = enc.into_bytes();
//!
//! let mut dec = Decoder::new(&bytes);
//! assert_eq!(dec.get_value().unwrap(), Value::from("Zurich"));
//! assert_eq!(dec.get_value().unwrap(), Value::Float(1.5));
//! assert!(dec.is_empty());
//! ```

use std::fmt;

use crate::expr::{AggFunc, CompareOp, Expr};
use crate::sql::ast::{OrderByItem, SelectItem, SelectStatement, TableRef};
use crate::table::Row;
use crate::value::{Date, Value};

/// Maximum nesting depth accepted when decoding recursive expressions —
/// generated statements stay far below this; the cap keeps a corrupted (but
/// CRC-valid) frame from recursing the decoder off the stack, even on the
/// 2 MiB stacks test threads get.
pub const MAX_EXPR_DEPTH: usize = 200;

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    UnexpectedEof,
    /// An enum tag byte had no meaning for the type being decoded.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// A length prefix exceeded the remaining input.
    BadLength,
    /// A string was not valid UTF-8.
    BadUtf8,
    /// Expression nesting exceeded [`MAX_EXPR_DEPTH`].
    TooDeep,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::BadTag { what, tag } => write!(f, "invalid tag {tag:#04x} for {what}"),
            CodecError::BadLength => write!(f, "length prefix exceeds remaining input"),
            CodecError::BadUtf8 => write!(f, "string is not valid UTF-8"),
            CodecError::TooDeep => write!(f, "expression nesting exceeds the decoder limit"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience alias for decode results.
pub type CodecResult<T> = std::result::Result<T, CodecError>;

/// Appends primitive and relational values to a growing byte buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// A boolean as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// A `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// An `i64`, little-endian two's complement.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// An `f64` through its bit pattern — bit-exact round trips, NaN
    /// payloads included.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// A `usize` widened to `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// A length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// An optional string: presence byte, then the string.
    pub fn put_opt_str(&mut self, v: Option<&str>) {
        match v {
            Some(s) => {
                self.put_bool(true);
                self.put_str(s);
            }
            None => self.put_bool(false),
        }
    }

    /// A [`Value`].
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Bool(b) => {
                self.put_u8(1);
                self.put_bool(*b);
            }
            Value::Int(i) => {
                self.put_u8(2);
                self.put_i64(*i);
            }
            Value::Float(x) => {
                self.put_u8(3);
                self.put_f64(*x);
            }
            Value::Text(s) => {
                self.put_u8(4);
                self.put_str(s);
            }
            Value::Date(d) => {
                self.put_u8(5);
                self.put_i64(i64::from(d.year));
                self.put_u8(d.month);
                self.put_u8(d.day);
            }
        }
    }

    /// A [`Row`] (length-prefixed vector of values).
    pub fn put_row(&mut self, row: &Row) {
        self.put_usize(row.len());
        for v in row {
            self.put_value(v);
        }
    }

    /// An [`Expr`], encoded structurally (recursive).
    pub fn put_expr(&mut self, expr: &Expr) {
        match expr {
            Expr::Column { table, column } => {
                self.put_u8(0);
                self.put_opt_str(table.as_deref());
                self.put_str(column);
            }
            Expr::Literal(v) => {
                self.put_u8(1);
                self.put_value(v);
            }
            Expr::Compare { op, left, right } => {
                self.put_u8(2);
                self.put_u8(compare_op_tag(*op));
                self.put_expr(left);
                self.put_expr(right);
            }
            Expr::Like { expr, pattern } => {
                self.put_u8(3);
                self.put_expr(expr);
                self.put_str(pattern);
            }
            Expr::And(a, b) => {
                self.put_u8(4);
                self.put_expr(a);
                self.put_expr(b);
            }
            Expr::Or(a, b) => {
                self.put_u8(5);
                self.put_expr(a);
                self.put_expr(b);
            }
            Expr::Not(e) => {
                self.put_u8(6);
                self.put_expr(e);
            }
            Expr::IsNull(e) => {
                self.put_u8(7);
                self.put_expr(e);
            }
            Expr::Aggregate { func, arg } => {
                self.put_u8(8);
                self.put_u8(agg_func_tag(*func));
                match arg {
                    Some(a) => {
                        self.put_bool(true);
                        self.put_expr(a);
                    }
                    None => self.put_bool(false),
                }
            }
            Expr::Star => self.put_u8(9),
        }
    }

    /// A full [`SelectStatement`].
    pub fn put_statement(&mut self, stmt: &SelectStatement) {
        self.put_bool(stmt.distinct);
        self.put_usize(stmt.projection.len());
        for item in &stmt.projection {
            self.put_expr(&item.expr);
            self.put_opt_str(item.alias.as_deref());
        }
        self.put_usize(stmt.from.len());
        for t in &stmt.from {
            self.put_str(&t.name);
            self.put_opt_str(t.alias.as_deref());
        }
        match &stmt.selection {
            Some(e) => {
                self.put_bool(true);
                self.put_expr(e);
            }
            None => self.put_bool(false),
        }
        self.put_usize(stmt.group_by.len());
        for e in &stmt.group_by {
            self.put_expr(e);
        }
        self.put_usize(stmt.order_by.len());
        for o in &stmt.order_by {
            self.put_expr(&o.expr);
            self.put_bool(o.descending);
        }
        match stmt.limit {
            Some(n) => {
                self.put_bool(true);
                self.put_usize(n);
            }
            None => self.put_bool(false),
        }
    }
}

/// Reads values back out of a byte slice, in the order they were written.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One raw byte.
    pub fn get_u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// A boolean (any non-zero byte is `true`).
    pub fn get_bool(&mut self) -> CodecResult<bool> {
        Ok(self.get_u8()? != 0)
    }

    /// A little-endian `u32`.
    pub fn get_u32(&mut self) -> CodecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// A little-endian `u64`.
    pub fn get_u64(&mut self) -> CodecResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// A little-endian `i64`.
    pub fn get_i64(&mut self) -> CodecResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// An `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// A `usize`, checked against the remaining input where it prefixes a
    /// length (so a corrupt length can never trigger a huge allocation).
    pub fn get_usize(&mut self) -> CodecResult<usize> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| CodecError::BadLength)
    }

    fn get_len(&mut self) -> CodecResult<usize> {
        let n = self.get_usize()?;
        // Every encoded element costs at least one byte, so a valid length
        // can never exceed what is left to read.
        if n > self.remaining() {
            return Err(CodecError::BadLength);
        }
        Ok(n)
    }

    /// A length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> CodecResult<String> {
        let n = self.get_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// An optional string written by [`Encoder::put_opt_str`].
    pub fn get_opt_str(&mut self) -> CodecResult<Option<String>> {
        if self.get_bool()? {
            Ok(Some(self.get_str()?))
        } else {
            Ok(None)
        }
    }

    /// A [`Value`].
    pub fn get_value(&mut self) -> CodecResult<Value> {
        match self.get_u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Bool(self.get_bool()?)),
            2 => Ok(Value::Int(self.get_i64()?)),
            3 => Ok(Value::Float(self.get_f64()?)),
            4 => Ok(Value::Text(self.get_str()?)),
            5 => {
                let year = i32::try_from(self.get_i64()?).map_err(|_| CodecError::BadLength)?;
                let month = self.get_u8()?;
                let day = self.get_u8()?;
                Ok(Value::Date(Date { year, month, day }))
            }
            tag => Err(CodecError::BadTag { what: "Value", tag }),
        }
    }

    /// A [`Row`].
    pub fn get_row(&mut self) -> CodecResult<Row> {
        let n = self.get_len()?;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.get_value()?);
        }
        Ok(row)
    }

    /// An [`Expr`].
    pub fn get_expr(&mut self) -> CodecResult<Expr> {
        self.get_expr_at(0)
    }

    fn get_expr_at(&mut self, depth: usize) -> CodecResult<Expr> {
        if depth > MAX_EXPR_DEPTH {
            return Err(CodecError::TooDeep);
        }
        match self.get_u8()? {
            0 => Ok(Expr::Column {
                table: self.get_opt_str()?,
                column: self.get_str()?,
            }),
            1 => Ok(Expr::Literal(self.get_value()?)),
            2 => {
                let op = compare_op_from_tag(self.get_u8()?)?;
                let left = Box::new(self.get_expr_at(depth + 1)?);
                let right = Box::new(self.get_expr_at(depth + 1)?);
                Ok(Expr::Compare { op, left, right })
            }
            3 => {
                let expr = Box::new(self.get_expr_at(depth + 1)?);
                let pattern = self.get_str()?;
                Ok(Expr::Like { expr, pattern })
            }
            4 => Ok(Expr::And(
                Box::new(self.get_expr_at(depth + 1)?),
                Box::new(self.get_expr_at(depth + 1)?),
            )),
            5 => Ok(Expr::Or(
                Box::new(self.get_expr_at(depth + 1)?),
                Box::new(self.get_expr_at(depth + 1)?),
            )),
            6 => Ok(Expr::Not(Box::new(self.get_expr_at(depth + 1)?))),
            7 => Ok(Expr::IsNull(Box::new(self.get_expr_at(depth + 1)?))),
            8 => {
                let func = agg_func_from_tag(self.get_u8()?)?;
                let arg = if self.get_bool()? {
                    Some(Box::new(self.get_expr_at(depth + 1)?))
                } else {
                    None
                };
                Ok(Expr::Aggregate { func, arg })
            }
            9 => Ok(Expr::Star),
            tag => Err(CodecError::BadTag { what: "Expr", tag }),
        }
    }

    /// A [`SelectStatement`].
    pub fn get_statement(&mut self) -> CodecResult<SelectStatement> {
        let distinct = self.get_bool()?;
        let n = self.get_len()?;
        let mut projection = Vec::with_capacity(n);
        for _ in 0..n {
            let expr = self.get_expr()?;
            let alias = self.get_opt_str()?;
            projection.push(SelectItem { expr, alias });
        }
        let n = self.get_len()?;
        let mut from = Vec::with_capacity(n);
        for _ in 0..n {
            let name = self.get_str()?;
            let alias = self.get_opt_str()?;
            from.push(TableRef { name, alias });
        }
        let selection = if self.get_bool()? {
            Some(self.get_expr()?)
        } else {
            None
        };
        let n = self.get_len()?;
        let mut group_by = Vec::with_capacity(n);
        for _ in 0..n {
            group_by.push(self.get_expr()?);
        }
        let n = self.get_len()?;
        let mut order_by = Vec::with_capacity(n);
        for _ in 0..n {
            let expr = self.get_expr()?;
            let descending = self.get_bool()?;
            order_by.push(OrderByItem { expr, descending });
        }
        let limit = if self.get_bool()? {
            Some(self.get_usize()?)
        } else {
            None
        };
        Ok(SelectStatement {
            distinct,
            projection,
            from,
            selection,
            group_by,
            order_by,
            limit,
        })
    }
}

fn compare_op_tag(op: CompareOp) -> u8 {
    match op {
        CompareOp::Eq => 0,
        CompareOp::NotEq => 1,
        CompareOp::Lt => 2,
        CompareOp::LtEq => 3,
        CompareOp::Gt => 4,
        CompareOp::GtEq => 5,
    }
}

fn compare_op_from_tag(tag: u8) -> CodecResult<CompareOp> {
    Ok(match tag {
        0 => CompareOp::Eq,
        1 => CompareOp::NotEq,
        2 => CompareOp::Lt,
        3 => CompareOp::LtEq,
        4 => CompareOp::Gt,
        5 => CompareOp::GtEq,
        tag => {
            return Err(CodecError::BadTag {
                what: "CompareOp",
                tag,
            })
        }
    })
}

fn agg_func_tag(func: AggFunc) -> u8 {
    match func {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Avg => 2,
        AggFunc::Min => 3,
        AggFunc::Max => 4,
    }
}

fn agg_func_from_tag(tag: u8) -> CodecResult<AggFunc> {
    Ok(match tag {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Avg,
        3 => AggFunc::Min,
        4 => AggFunc::Max,
        tag => {
            return Err(CodecError::BadTag {
                what: "AggFunc",
                tag,
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_select;
    use crate::sql::printer::print_select;

    fn round_trip_value(v: Value) {
        let mut enc = Encoder::new();
        enc.put_value(&v);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_value().unwrap(), v);
        assert!(dec.is_empty());
    }

    #[test]
    fn values_round_trip() {
        round_trip_value(Value::Null);
        round_trip_value(Value::Bool(true));
        round_trip_value(Value::Int(-42));
        round_trip_value(Value::Float(1.5));
        round_trip_value(Value::Float(f64::MIN_POSITIVE));
        round_trip_value(Value::Text("O'Brien — Zürich".into()));
        round_trip_value(Value::Date(Date::new(2011, 12, 31)));
    }

    #[test]
    fn float_round_trip_is_bit_exact() {
        for bits in [0u64, 1, f64::NAN.to_bits(), (-0.0f64).to_bits(), u64::MAX] {
            let mut enc = Encoder::new();
            enc.put_f64(f64::from_bits(bits));
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(dec.get_f64().unwrap().to_bits(), bits);
        }
    }

    #[test]
    fn rows_round_trip() {
        let row: Row = vec![Value::Int(1), Value::Null, Value::from("x")];
        let mut enc = Encoder::new();
        enc.put_row(&row);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_row().unwrap(), row);
    }

    #[test]
    fn statements_round_trip_structurally() {
        let sql = "SELECT DISTINCT parties.id, count(*) FROM parties, individuals \
                   WHERE parties.id = individuals.id AND individuals.firstname LIKE 'Sara%' \
                   GROUP BY parties.id ORDER BY parties.id DESC LIMIT 10";
        let stmt = parse_select(sql).unwrap();
        let mut enc = Encoder::new();
        enc.put_statement(&stmt);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = dec.get_statement().unwrap();
        assert!(dec.is_empty());
        assert_eq!(back, stmt);
        assert_eq!(print_select(&back), print_select(&stmt));
    }

    #[test]
    fn every_expr_variant_round_trips() {
        let exprs = vec![
            Expr::Star,
            Expr::column("a"),
            Expr::qualified("t", "a"),
            Expr::Literal(Value::Float(2.25)),
            Expr::compare(CompareOp::GtEq, Expr::column("a"), Expr::literal(1)),
            Expr::Like {
                expr: Box::new(Expr::column("name")),
                pattern: "Sara%".into(),
            },
            Expr::And(
                Box::new(Expr::column("a")),
                Box::new(Expr::Not(Box::new(Expr::column("b")))),
            ),
            Expr::Or(
                Box::new(Expr::IsNull(Box::new(Expr::column("a")))),
                Box::new(Expr::column("b")),
            ),
            Expr::Aggregate {
                func: AggFunc::Sum,
                arg: Some(Box::new(Expr::column("amount"))),
            },
            Expr::Aggregate {
                func: AggFunc::Count,
                arg: None,
            },
        ];
        for expr in exprs {
            let mut enc = Encoder::new();
            enc.put_expr(&expr);
            let bytes = enc.into_bytes();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(dec.get_expr().unwrap(), expr, "{expr}");
            assert!(dec.is_empty());
        }
    }

    #[test]
    fn truncated_input_reports_eof_not_panic() {
        let mut enc = Encoder::new();
        enc.put_value(&Value::from("a longer text value"));
        let bytes = enc.into_bytes();
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            assert!(dec.get_value().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupt_tags_and_lengths_are_rejected() {
        let mut dec = Decoder::new(&[9]);
        assert_eq!(
            dec.get_value(),
            Err(CodecError::BadTag {
                what: "Value",
                tag: 9
            })
        );
        // A length prefix far beyond the buffer is rejected before
        // allocating anything.
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(dec.get_str().is_err());
    }

    #[test]
    fn deep_expression_nesting_is_capped() {
        // NOT(NOT(NOT(...))) beyond the depth cap decodes to TooDeep instead
        // of blowing the stack.
        let mut bytes = vec![6u8; MAX_EXPR_DEPTH + 10];
        bytes.push(9); // innermost Star
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_expr(), Err(CodecError::TooDeep));
    }
}
