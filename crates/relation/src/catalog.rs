//! The database catalog: a named collection of in-memory tables plus the
//! convenience entry point [`Database::run_sql`].

use std::collections::BTreeMap;

use crate::error::{RelationError, Result};
use crate::exec::{execute, ResultSet};
use crate::schema::TableSchema;
use crate::sql::parser::parse_select;
use crate::table::{Row, Table};

/// An in-memory database: the catalog plus all table contents.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table from a schema.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        let key = schema.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(RelationError::DuplicateTable(schema.name));
        }
        self.tables.insert(key, Table::new(schema));
        Ok(())
    }

    /// Returns a table by name (case-insensitive).
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| RelationError::UnknownTable(name.to_string()))
    }

    /// Returns a mutable table by name.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| RelationError::UnknownTable(name.to_string()))
    }

    /// True if the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Inserts a row into a table.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<()> {
        self.table_mut(table)?.insert(row)
    }

    /// Inserts many rows into a table.
    pub fn insert_all<I: IntoIterator<Item = Row>>(
        &mut self,
        table: &str,
        rows: I,
    ) -> Result<usize> {
        self.table_mut(table)?.insert_all(rows)
    }

    /// Names of all tables in deterministic (sorted) order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.values().map(|t| t.name()).collect()
    }

    /// All tables in deterministic order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of columns across all tables.
    pub fn column_count(&self) -> usize {
        self.tables.values().map(|t| t.schema().arity()).sum()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.row_count()).sum()
    }

    /// Parses and executes a `SELECT` statement.
    pub fn run_sql(&self, sql: &str) -> Result<ResultSet> {
        let stmt = parse_select(sql)?;
        execute(self, &stmt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("parties")
                .column("id", DataType::Int)
                .column("party_type", DataType::Text)
                .primary_key("id")
                .build(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("individuals")
                .column("id", DataType::Int)
                .column("firstname", DataType::Text)
                .column("lastname", DataType::Text)
                .primary_key("id")
                .foreign_key("id", "parties", "id")
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn create_and_lookup_tables() {
        let db = db();
        assert_eq!(db.table_count(), 2);
        assert!(db.has_table("PARTIES"));
        assert!(!db.has_table("missing"));
        assert_eq!(db.table("Individuals").unwrap().name(), "individuals");
        assert!(matches!(
            db.table("nope"),
            Err(RelationError::UnknownTable(_))
        ));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db();
        let err = db
            .create_table(
                TableSchema::builder("parties")
                    .column("x", DataType::Int)
                    .build(),
            )
            .unwrap_err();
        assert!(matches!(err, RelationError::DuplicateTable(_)));
    }

    #[test]
    fn insert_and_counts() {
        let mut db = db();
        db.insert("parties", vec![Value::Int(1), Value::from("IND")])
            .unwrap();
        db.insert("parties", vec![Value::Int(2), Value::from("ORG")])
            .unwrap();
        db.insert(
            "individuals",
            vec![Value::Int(1), Value::from("Sara"), Value::from("Guttinger")],
        )
        .unwrap();
        assert_eq!(db.total_rows(), 3);
        assert_eq!(db.column_count(), 5);
        assert_eq!(db.table_names(), vec!["individuals", "parties"]);
    }

    #[test]
    fn run_sql_end_to_end() {
        let mut db = db();
        db.insert("parties", vec![Value::Int(1), Value::from("IND")])
            .unwrap();
        db.insert(
            "individuals",
            vec![Value::Int(1), Value::from("Sara"), Value::from("Guttinger")],
        )
        .unwrap();
        let rs = db
            .run_sql(
                "SELECT parties.id, individuals.lastname FROM parties, individuals \
                 WHERE parties.id = individuals.id AND individuals.firstname = 'Sara'",
            )
            .unwrap();
        assert_eq!(rs.row_count(), 1);
        assert_eq!(rs.rows()[0][1], Value::from("Guttinger"));
    }
}
