//! The database catalog: a named collection of in-memory tables plus the
//! convenience entry point [`Database::run_sql`].
//!
//! Tables sit behind per-table [`Arc`]s, so cloning a database is one `Arc`
//! bump per table — no row moves.  Mutation goes through
//! [`Database::table_mut`], which copy-on-writes exactly the touched table
//! (`Arc::make_mut`); combined with [`Table`]'s frozen row segments, the
//! cost of deriving a next-generation database from a published one is
//! proportional to the delta, not the warehouse.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::{RelationError, Result};
use crate::exec::{execute, ResultSet};
use crate::schema::TableSchema;
use crate::sql::parser::parse_select;
use crate::table::{Row, Table};

/// An in-memory database: the catalog plus all table contents, structurally
/// shared between clones until a table is mutated.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table from a schema.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        let key = schema.name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(RelationError::DuplicateTable(schema.name));
        }
        self.tables.insert(key, Arc::new(Table::new(schema)));
        Ok(())
    }

    /// Returns a table by name (case-insensitive).
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .map(Arc::as_ref)
            .ok_or_else(|| RelationError::UnknownTable(name.to_string()))
    }

    /// Returns the shared handle of a table by name — what snapshot layers
    /// compare (`Arc::ptr_eq`) to prove an ingest left a table untouched.
    pub fn table_arc(&self, name: &str) -> Result<&Arc<Table>> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| RelationError::UnknownTable(name.to_string()))
    }

    /// Returns a mutable table by name, copy-on-writing it first when the
    /// table is shared with another database clone.  The copy is cheap:
    /// frozen row segments move by `Arc` bump, only the mutable tail's rows
    /// are duplicated.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_lowercase())
            .map(Arc::make_mut)
            .ok_or_else(|| RelationError::UnknownTable(name.to_string()))
    }

    /// True if the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// Inserts a row into a table.
    pub fn insert(&mut self, table: &str, row: Row) -> Result<()> {
        self.table_mut(table)?.insert(row)
    }

    /// Inserts many rows into a table.
    pub fn insert_all<I: IntoIterator<Item = Row>>(
        &mut self,
        table: &str,
        rows: I,
    ) -> Result<usize> {
        self.table_mut(table)?.insert_all(rows)
    }

    /// Names of all tables in deterministic (sorted) order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.values().map(|t| t.name()).collect()
    }

    /// All tables in deterministic order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values().map(Arc::as_ref)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of columns across all tables.
    pub fn column_count(&self) -> usize {
        self.tables.values().map(|t| t.schema().arity()).sum()
    }

    /// Total number of rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.row_count()).sum()
    }

    /// Number of tables whose handle is shared (`Arc::ptr_eq`) with
    /// `other` — how much of this database a derive left untouched.
    pub fn tables_shared_with(&self, other: &Database) -> usize {
        self.tables
            .iter()
            .filter(|(name, table)| {
                other
                    .tables
                    .get(*name)
                    .is_some_and(|theirs| Arc::ptr_eq(table, theirs))
            })
            .count()
    }

    /// Parses and executes a `SELECT` statement.
    pub fn run_sql(&self, sql: &str) -> Result<ResultSet> {
        let stmt = parse_select(sql)?;
        execute(self, &stmt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("parties")
                .column("id", DataType::Int)
                .column("party_type", DataType::Text)
                .primary_key("id")
                .build(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("individuals")
                .column("id", DataType::Int)
                .column("firstname", DataType::Text)
                .column("lastname", DataType::Text)
                .primary_key("id")
                .foreign_key("id", "parties", "id")
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn create_and_lookup_tables() {
        let db = db();
        assert_eq!(db.table_count(), 2);
        assert!(db.has_table("PARTIES"));
        assert!(!db.has_table("missing"));
        assert_eq!(db.table("Individuals").unwrap().name(), "individuals");
        assert!(matches!(
            db.table("nope"),
            Err(RelationError::UnknownTable(_))
        ));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = db();
        let err = db
            .create_table(
                TableSchema::builder("parties")
                    .column("x", DataType::Int)
                    .build(),
            )
            .unwrap_err();
        assert!(matches!(err, RelationError::DuplicateTable(_)));
    }

    #[test]
    fn insert_and_counts() {
        let mut db = db();
        db.insert("parties", vec![Value::Int(1), Value::from("IND")])
            .unwrap();
        db.insert("parties", vec![Value::Int(2), Value::from("ORG")])
            .unwrap();
        db.insert(
            "individuals",
            vec![Value::Int(1), Value::from("Sara"), Value::from("Guttinger")],
        )
        .unwrap();
        assert_eq!(db.total_rows(), 3);
        assert_eq!(db.column_count(), 5);
        assert_eq!(db.table_names(), vec!["individuals", "parties"]);
    }

    #[test]
    fn run_sql_end_to_end() {
        let mut db = db();
        db.insert("parties", vec![Value::Int(1), Value::from("IND")])
            .unwrap();
        db.insert(
            "individuals",
            vec![Value::Int(1), Value::from("Sara"), Value::from("Guttinger")],
        )
        .unwrap();
        let rs = db
            .run_sql(
                "SELECT parties.id, individuals.lastname FROM parties, individuals \
                 WHERE parties.id = individuals.id AND individuals.firstname = 'Sara'",
            )
            .unwrap();
        assert_eq!(rs.row_count(), 1);
        assert_eq!(rs.rows()[0][1], Value::from("Guttinger"));
    }

    #[test]
    fn clone_shares_every_table_until_one_is_mutated() {
        let mut base = db();
        base.insert("parties", vec![Value::Int(1), Value::from("IND")])
            .unwrap();
        let mut next = base.clone();
        assert_eq!(next.tables_shared_with(&base), 2);
        assert!(Arc::ptr_eq(
            base.table_arc("parties").unwrap(),
            next.table_arc("parties").unwrap()
        ));

        // Copy-on-write: inserting into the clone detaches only `parties`.
        next.insert("parties", vec![Value::Int(2), Value::from("ORG")])
            .unwrap();
        assert_eq!(next.tables_shared_with(&base), 1);
        assert!(!Arc::ptr_eq(
            base.table_arc("parties").unwrap(),
            next.table_arc("parties").unwrap()
        ));
        assert!(Arc::ptr_eq(
            base.table_arc("individuals").unwrap(),
            next.table_arc("individuals").unwrap()
        ));
        // The base is unchanged; the clone sees both rows.
        assert_eq!(base.table("parties").unwrap().row_count(), 1);
        assert_eq!(next.table("parties").unwrap().row_count(), 2);
    }

    #[test]
    fn table_mut_on_an_unshared_table_does_not_copy() {
        let mut base = db();
        base.insert("parties", vec![Value::Int(1), Value::from("IND")])
            .unwrap();
        let before = Arc::as_ptr(base.table_arc("parties").unwrap());
        base.table_mut("parties").unwrap().truncate();
        // No other owner — `Arc::make_mut` mutated in place.
        assert_eq!(before, Arc::as_ptr(base.table_arc("parties").unwrap()));
    }
}
