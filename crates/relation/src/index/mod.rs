//! Base-data indexing: tokenizer and inverted index over text columns.

pub mod inverted;
pub mod tokenizer;
