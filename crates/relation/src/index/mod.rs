//! Base-data indexing: tokenizer, inverted index over text columns and the
//! per-shard side logs streaming ingestion overlays on top of it.

pub mod inverted;
pub mod sidelog;
pub mod tokenizer;
