//! Sharded inverted index over the text columns of the base data.
//!
//! The paper builds an inverted index over all 472 base tables (text columns
//! only; 9.5 GB, 24 hours to build on their hardware).  Here the index maps
//! each token to postings `(table, column, row)` and offers the phrase lookup
//! the SODA lookup step needs: given a keyword such as "Zurich" or
//! "Credit Suisse", return the columns whose cells contain it, together with
//! the matched cell value — that value becomes the filter literal in the
//! generated SQL.
//!
//! ## Sharding
//!
//! The postings are partitioned into [`IndexShard`]s by a *stable* hash of
//! the owning table ([`shard_for_table`]), so every table's postings live in
//! exactly one shard and a phrase probe decomposes into independent per-shard
//! probes whose results merge deterministically ([`merge_hits`] — shards own
//! disjoint table sets, so a sort by `(table, column, value)` reproduces the
//! exact output of the monolithic index regardless of the shard count).
//! [`ShardedInvertedIndex::build`] is the classic 1-shard case; callers that
//! want partition-parallel probes build with
//! [`ShardedInvertedIndex::build_sharded`] and drive the shards themselves
//! (see `soda-core`'s lookup step), or call
//! [`lookup_phrase`](ShardedInvertedIndex::lookup_phrase) for the sequential
//! all-shard probe.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

use super::sidelog::SideLog;
use super::tokenizer::tokenize;
use crate::catalog::Database;
use crate::value::Value;

/// The classic (monolithic) inverted index is the 1-shard case of the
/// sharded structure.
pub type InvertedIndex = ShardedInvertedIndex;

/// A single posting: one row of one text column containing the token.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize)]
pub struct Posting {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Row index within the table.
    pub row: usize,
}

/// Result of a phrase lookup: a column that contains the phrase, the matched
/// cell value and how many rows matched.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct PhraseHit {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// The exact cell value that matched (used as the SQL filter literal).
    pub value: String,
    /// Number of rows with this exact value that matched the phrase.
    pub row_count: usize,
}

/// A prepared phrase probe, shared by every shard of one lookup so that all
/// shards scan the postings of the *same* token.
///
/// The probe token is chosen by global frequency across all shards
/// ([`ShardedInvertedIndex::probe`]); choosing it per shard would let the
/// shard count change which candidate cells are scanned and thereby the
/// result set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhraseProbe {
    /// The normalized phrase: its tokens joined by single spaces.  A cell
    /// matches when its normalized text contains this needle.
    pub needle: String,
    /// The globally rarest token of the phrase — every shard scans this
    /// token's postings list.  Always normalized (lower-case tokenizer
    /// output), so probes can access the postings maps directly.
    pub token: String,
}

/// FNV-1a over the bytes of a key: a stable hash (same value in every process
/// and on every platform), unlike `DefaultHasher`, whose output is only
/// guaranteed stable within one compiler release.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Routes a string key to one of `shard_count` partitions by stable hash.
/// Used for the inverted index (keyed by owning table) and for any other
/// index that wants the same deterministic partitioning.
pub fn stable_shard(key: &str, shard_count: usize) -> usize {
    if shard_count <= 1 {
        return 0;
    }
    (fnv1a(key.as_bytes()) % shard_count as u64) as usize
}

/// The shard that owns `table`'s postings (case-insensitive, matching the
/// catalog's case-insensitive table names).
pub fn shard_for_table(table: &str, shard_count: usize) -> usize {
    stable_shard(&table.to_lowercase(), shard_count)
}

/// One partition of the inverted index: the postings of the tables whose
/// stable hash routes here, plus per-shard size accounting.
#[derive(Debug, Default, Clone)]
pub struct IndexShard {
    postings: HashMap<String, Vec<Posting>>,
    /// Number of indexed cells (non-unique records, in the paper's terms).
    indexed_cells: usize,
    /// Number of indexed (table, column) pairs.
    indexed_columns: usize,
}

impl IndexShard {
    /// Number of distinct tokens in this shard.
    pub fn token_count(&self) -> usize {
        self.postings.len()
    }

    /// Number of indexed text cells in this shard.
    pub fn indexed_cells(&self) -> usize {
        self.indexed_cells
    }

    /// Number of indexed text columns in this shard.
    pub fn indexed_columns(&self) -> usize {
        self.indexed_columns
    }

    /// Number of postings in this shard.
    pub fn posting_count(&self) -> usize {
        self.postings.values().map(|v| v.len()).sum()
    }

    /// Postings for a single token (lower-cased internally) within this shard.
    pub fn lookup_token(&self, token: &str) -> &[Posting] {
        let key = token.to_lowercase();
        self.postings.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Candidate postings of a prepared probe's token in this shard.  The
    /// probe token is already normalized, so this is a direct map access
    /// with no allocation — the hot path of the per-shard fan-out.
    pub fn probe_candidates(&self, probe: &PhraseProbe) -> &[Posting] {
        self.postings
            .get(&probe.token)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Builds the single partition `shard_idx` of a `shard_count`-way sharded
    /// index: only the tables whose stable hash routes to that partition are
    /// scanned.  `build_sharded` produces exactly this shard at position
    /// `shard_idx`, so a hot-swap layer can rebuild one partition from a new
    /// [`Database`] and splice it in while the other shards keep serving.
    pub fn build_partition(db: &Database, shard_idx: usize, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        let mut shard = IndexShard::default();
        for table in db.tables() {
            if shard_for_table(&table.schema().name, shard_count) == shard_idx {
                shard.index_table(table);
            }
        }
        shard
    }

    /// Indexes every text cell of one table into this shard.
    fn index_table(&mut self, table: &crate::table::Table) {
        let schema = table.schema();
        for (col_idx, col) in schema.columns.iter().enumerate() {
            if col.data_type != crate::value::DataType::Text {
                continue;
            }
            self.indexed_columns += 1;
            for (row_idx, row) in table.rows().iter().enumerate() {
                if let Value::Text(text) = &row[col_idx] {
                    self.indexed_cells += 1;
                    let mut seen: HashSet<String> = HashSet::new();
                    for token in tokenize(text) {
                        if seen.insert(token.clone()) {
                            self.postings.entry(token).or_default().push(Posting {
                                table: schema.name.clone(),
                                column: col.name.clone(),
                                row: row_idx,
                            });
                        }
                    }
                }
            }
        }
    }

    /// Probes this shard for a prepared phrase: scans the probe token's local
    /// postings and verifies the full needle against each candidate cell.
    /// Returns one hit per distinct `(table, column, cell value)`, sorted by
    /// that triple.
    pub fn probe_phrase(&self, db: &Database, probe: &PhraseProbe) -> Vec<PhraseHit> {
        self.probe_phrase_with_log(db, probe, &SideLog::default())
    }

    /// Probes this shard *overlaid with its side log*: frozen candidates of
    /// masked tables are skipped (their rows were replaced or truncated
    /// since the partition was built), the log's candidates join the scan,
    /// and per-triple row counts accumulate across both sources.  Frozen
    /// and log postings are row-disjoint by construction (appends index
    /// only the new tail rows; replacements mask the frozen side), so the
    /// result is byte-identical to probing a partition freshly rebuilt over
    /// `db`.
    pub fn probe_phrase_with_log(
        &self,
        db: &Database,
        probe: &PhraseProbe,
        log: &SideLog,
    ) -> Vec<PhraseHit> {
        let mut hits: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        {
            let mut scan = |posting: &Posting| {
                let Ok(table) = db.table(&posting.table) else {
                    return;
                };
                let Some(value) = table.value(posting.row, &posting.column) else {
                    return;
                };
                let Value::Text(text) = value else { return };
                let normalized = tokenize(text).join(" ");
                if normalized.contains(&probe.needle) {
                    *hits
                        .entry((posting.table.clone(), posting.column.clone(), text.clone()))
                        .or_default() += 1;
                }
            };
            let masked = log.has_masks();
            for posting in self.probe_candidates(probe) {
                if masked && log.masks(&posting.table) {
                    continue;
                }
                scan(posting);
            }
            for posting in log.candidates(probe) {
                scan(posting);
            }
        }
        hits.into_iter()
            .map(|((table, column, value), row_count)| PhraseHit {
                table,
                column,
                value,
                row_count,
            })
            .collect()
    }
}

/// Merges per-shard probe results into the canonical order: ascending by
/// `(table, column, value)`.  Because shards own disjoint table sets, this is
/// byte-identical to what the 1-shard index produces for the same probe —
/// the invariant the shard-invariance property tests pin down.
pub fn merge_hits(per_shard: Vec<Vec<PhraseHit>>) -> Vec<PhraseHit> {
    let mut all: Vec<PhraseHit> = per_shard.into_iter().flatten().collect();
    all.sort_by(|a, b| (&a.table, &a.column, &a.value).cmp(&(&b.table, &b.column, &b.value)));
    all
}

/// Inverted index over text columns of a [`Database`], partitioned by table.
///
/// Each partition sits behind an [`Arc`], so a derived index that rebuilds
/// only some partitions (see [`with_rebuilt_shards`](Self::with_rebuilt_shards))
/// shares the untouched ones with its parent instead of copying their
/// postings — the structural basis of per-shard hot snapshot swapping.
#[derive(Debug, Clone)]
pub struct ShardedInvertedIndex {
    shards: Vec<Arc<IndexShard>>,
    /// Per-shard side logs, parallel to `shards` (all empty until a
    /// streaming ingestion derives a logged index via
    /// [`with_side_logs`](Self::with_side_logs)).  Every probe merges a
    /// shard with its log; a rebuild of a partition folds (and clears) its
    /// log.
    logs: Vec<Arc<SideLog>>,
    /// Number of distinct tokens across all *frozen* shards (a token whose
    /// postings span several tables can live in several shards);
    /// [`token_count`](Self::token_count) adds the log-only tokens on top.
    distinct_tokens: usize,
}

impl Default for ShardedInvertedIndex {
    fn default() -> Self {
        Self {
            shards: vec![Arc::new(IndexShard::default())],
            logs: vec![Arc::new(SideLog::default())],
            distinct_tokens: 0,
        }
    }
}

impl ShardedInvertedIndex {
    /// Builds the classic monolithic index (one shard) over every text column
    /// of every table.
    pub fn build(db: &Database) -> Self {
        Self::build_sharded(db, 1)
    }

    /// Builds the index partitioned into `shard_count` shards (clamped to at
    /// least 1) by the stable table hash.
    pub fn build_sharded(db: &Database, shard_count: usize) -> Self {
        let shard_count = shard_count.max(1);
        let mut shards = vec![IndexShard::default(); shard_count];
        for table in db.tables() {
            shards[shard_for_table(&table.schema().name, shard_count)].index_table(table);
        }
        Self::from_shards(shards.into_iter().map(Arc::new).collect())
    }

    /// Assembles an index from already-built partitions, recounting the
    /// distinct tokens.  The recount hashes every shard's vocabulary —
    /// O(distinct tokens), which a per-shard rebuild pays once per swap; the
    /// rebuilt partition's posting scan dominates it in practice, and the
    /// count must span all shards anyway (tokens overlap across partitions).
    fn from_shards(shards: Vec<Arc<IndexShard>>) -> Self {
        let logs = shards
            .iter()
            .map(|_| Arc::new(SideLog::default()))
            .collect();
        Self::from_parts(shards, logs)
    }

    fn from_parts(shards: Vec<Arc<IndexShard>>, logs: Vec<Arc<SideLog>>) -> Self {
        debug_assert_eq!(shards.len(), logs.len());
        let distinct_tokens = {
            let mut tokens: HashSet<&str> = HashSet::new();
            for shard in &shards {
                tokens.extend(shard.postings.keys().map(String::as_str));
            }
            tokens.len()
        };
        Self {
            shards,
            logs,
            distinct_tokens,
        }
    }

    /// Derives an index over `db` in which only the partitions named by
    /// `affected` are rebuilt (from `db`, scanning just the tables they own);
    /// every other partition is shared with `self` by [`Arc`].  A rebuilt
    /// partition's side log is folded by construction (the rebuild scans
    /// `db`, which already contains the logged rows), so its log comes back
    /// empty; unaffected partitions keep their logs.
    ///
    /// Sound only when the tables owned by the *unaffected* partitions are
    /// unchanged between the database this index was built from and `db` —
    /// their postings (and side-log postings) carry row indexes into those
    /// tables.  Out-of-range entries in `affected` are ignored.
    pub fn with_rebuilt_shards(&self, db: &Database, affected: &[usize]) -> Self {
        let shard_count = self.shards.len();
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                if affected.contains(&i) {
                    Arc::new(IndexShard::build_partition(db, i, shard_count))
                } else {
                    Arc::clone(shard)
                }
            })
            .collect();
        let logs = self
            .logs
            .iter()
            .enumerate()
            .map(|(i, log)| {
                if affected.contains(&i) {
                    Arc::new(SideLog::default())
                } else {
                    Arc::clone(log)
                }
            })
            .collect();
        Self::from_parts(shards, logs)
    }

    /// Derives an index with the same frozen partitions but new side logs —
    /// the publication step of streaming ingestion.  `logs.len()` must equal
    /// the shard count.
    pub fn with_side_logs(&self, logs: Vec<SideLog>) -> Self {
        assert_eq!(
            logs.len(),
            self.shards.len(),
            "one side log per index partition"
        );
        Self {
            shards: self.shards.clone(),
            logs: logs.into_iter().map(Arc::new).collect(),
            distinct_tokens: self.distinct_tokens,
        }
    }

    /// Like [`with_side_logs`](Self::with_side_logs), but replaces only the
    /// logs named by `patches` and `Arc`-shares every other shard's log with
    /// `self` — so an ingest touching one shard never copies the accumulated
    /// logs of the others.  Out-of-range patch indexes are ignored.
    pub fn with_patched_side_logs(&self, patches: Vec<(usize, SideLog)>) -> Self {
        let mut logs: Vec<Arc<SideLog>> = self.logs.iter().map(Arc::clone).collect();
        for (shard, log) in patches {
            if let Some(slot) = logs.get_mut(shard) {
                *slot = Arc::new(log);
            }
        }
        Self {
            shards: self.shards.clone(),
            logs,
            distinct_tokens: self.distinct_tokens,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in partition order.  The SODA lookup step fans a probe out
    /// across these on scoped threads; the hot-swap layer clones individual
    /// [`Arc`]s to share unchanged partitions across snapshot generations.
    pub fn shards(&self) -> &[Arc<IndexShard>] {
        &self.shards
    }

    /// The per-shard side logs, parallel to [`shards`](Self::shards) (empty
    /// logs for an index that never absorbed a change feed).
    pub fn side_logs(&self) -> &[Arc<SideLog>] {
        &self.logs
    }

    /// True when any shard carries a non-empty side log.
    pub fn has_side_logs(&self) -> bool {
        self.logs.iter().any(|l| !l.is_empty())
    }

    /// Side-log postings per shard, in partition order.
    pub fn side_log_postings(&self) -> Vec<usize> {
        self.logs.iter().map(|l| l.posting_count()).collect()
    }

    /// Side-log rows per shard, in partition order.
    pub fn side_log_rows(&self) -> Vec<usize> {
        self.logs.iter().map(|l| l.row_count()).collect()
    }

    /// Masked tables per shard's side log, in partition order.  A mask taxes
    /// every probe of its shard even when the log holds no postings (frozen
    /// candidates are filtered per posting), so compaction policies treat
    /// any mask as worth folding.
    pub fn side_log_masks(&self) -> Vec<usize> {
        self.logs.iter().map(|l| l.masked_tables().len()).collect()
    }

    /// Number of distinct tokens across all shards *and* their side logs
    /// (tokens of masked frozen postings still count — this is a size gauge,
    /// not a semantic invariant).
    pub fn token_count(&self) -> usize {
        if !self.has_side_logs() {
            return self.distinct_tokens;
        }
        let mut extra: HashSet<&str> = HashSet::new();
        for log in &self.logs {
            for token in log.tokens() {
                if !self.shards.iter().any(|s| s.postings.contains_key(token)) {
                    extra.insert(token);
                }
            }
        }
        self.distinct_tokens + extra.len()
    }

    /// Number of indexed text cells.
    pub fn indexed_cells(&self) -> usize {
        self.shards.iter().map(|s| s.indexed_cells()).sum()
    }

    /// Number of indexed text columns.
    pub fn indexed_columns(&self) -> usize {
        self.shards.iter().map(|s| s.indexed_columns()).sum()
    }

    /// Total number of postings.
    pub fn posting_count(&self) -> usize {
        self.shards.iter().map(|s| s.posting_count()).sum()
    }

    /// Total *live* postings for a single token across all shards: frozen
    /// postings of masked tables are excluded and side-log postings are
    /// included, so the count equals what a full rebuild over the ingested
    /// database would report.  Probe-token selection rides on this, which is
    /// what keeps the chosen token — and therefore the candidate scan and
    /// the generated SQL — identical between a side-log-merged index and a
    /// fully rebuilt one.
    pub fn token_frequency(&self, token: &str) -> usize {
        let key = token.to_lowercase();
        (0..self.shards.len())
            .map(|i| self.shard_token_frequency(i, &key))
            .sum()
    }

    /// Live postings of an already-normalized token in one shard (frozen
    /// minus masked, plus log).
    fn shard_token_frequency(&self, shard: usize, key: &str) -> usize {
        let log = &self.logs[shard];
        let frozen = match self.shards[shard].postings.get(key) {
            Some(list) if log.has_masks() => list.iter().filter(|p| !log.masks(&p.table)).count(),
            Some(list) => list.len(),
            None => 0,
        };
        frozen + log.postings_of(key).len()
    }

    /// Postings for a single token (lower-cased internally), merged across
    /// shards and side logs into the canonical order `(table, column, row)`.
    pub fn lookup_token(&self, token: &str) -> Vec<Posting> {
        let key = token.to_lowercase();
        let mut out: Vec<Posting> = Vec::new();
        for (shard, log) in self.shards.iter().zip(&self.logs) {
            let masked = log.has_masks();
            out.extend(
                shard
                    .lookup_token(&key)
                    .iter()
                    .filter(|p| !(masked && log.masks(&p.table)))
                    .cloned(),
            );
            out.extend(log.postings_of(&key).iter().cloned());
        }
        out.sort_by(|a, b| (&a.table, &a.column, a.row).cmp(&(&b.table, &b.column, b.row)));
        out
    }

    /// Probes one shard, merged with its side log — the unit of work of the
    /// lookup step's per-shard fan-out.
    pub fn probe_shard(&self, shard: usize, db: &Database, probe: &PhraseProbe) -> Vec<PhraseHit> {
        self.shards[shard].probe_phrase_with_log(db, probe, &self.logs[shard])
    }

    /// Number of candidate postings (frozen + side log) a probe would scan
    /// in one shard.  Frozen candidates of masked tables are included — this
    /// gauges scan work for the fan-out heuristics, not the hit count.
    pub fn shard_candidates(&self, shard: usize, probe: &PhraseProbe) -> usize {
        self.shards[shard].probe_candidates(probe).len() + self.logs[shard].candidates(probe).len()
    }

    /// [`shard_candidates`](Self::shard_candidates) split into its two
    /// sources: `(frozen partition postings, side-log postings)`.  Query
    /// tracing reports both per probed shard, so a trace shows whether a
    /// probe's scan work came from the frozen index or from not-yet-compacted
    /// streaming ingests.
    pub fn shard_candidate_split(&self, shard: usize, probe: &PhraseProbe) -> (usize, usize) {
        (
            self.shards[shard].probe_candidates(probe).len(),
            self.logs[shard].candidates(probe).len(),
        )
    }

    /// Prepares a phrase probe: normalizes the phrase and selects the
    /// globally rarest token.  Returns `None` when the phrase has no tokens
    /// or the rarest token has no postings anywhere (the probe cannot hit).
    pub fn probe(&self, phrase: &str) -> Option<PhraseProbe> {
        let words = tokenize(phrase);
        if words.is_empty() {
            return None;
        }
        let mut rarest = &words[0];
        let mut rarest_len = self.token_frequency(rarest);
        for w in &words[1..] {
            let len = self.token_frequency(w);
            if len < rarest_len {
                rarest = w;
                rarest_len = len;
            }
        }
        if rarest_len == 0 {
            return None;
        }
        Some(PhraseProbe {
            needle: words.join(" "),
            token: rarest.clone(),
        })
    }

    /// Phrase lookup: finds columns whose cells contain *all* words of the
    /// phrase (as a case-insensitive substring of the cell text, mirroring the
    /// paper's "Credit Suisse" example which must match the full organisation
    /// name).  Returns one hit per distinct `(table, column, cell value)` in
    /// canonical order; the result is independent of the shard count.
    pub fn lookup_phrase(&self, db: &Database, phrase: &str) -> Vec<PhraseHit> {
        let Some(probe) = self.probe(phrase) else {
            return Vec::new();
        };
        merge_hits(
            (0..self.shards.len())
                .map(|shard| self.probe_shard(shard, db, &probe))
                .collect(),
        )
    }

    /// Distinct `(table, column)` pairs containing the phrase.
    pub fn columns_containing(&self, db: &Database, phrase: &str) -> Vec<(String, String)> {
        let mut cols: Vec<(String, String)> = self
            .lookup_phrase(db, phrase)
            .into_iter()
            .map(|h| (h.table, h.column))
            .collect();
        cols.sort();
        cols.dedup();
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("organization")
                .column("party_id", DataType::Int)
                .column("org_name", DataType::Text)
                .column("country", DataType::Text)
                .primary_key("party_id")
                .build(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("address")
                .column("address_id", DataType::Int)
                .column("city", DataType::Text)
                .column("zip", DataType::Int)
                .build(),
        )
        .unwrap();
        db.insert(
            "organization",
            vec![
                Value::Int(1),
                Value::from("Credit Suisse"),
                Value::from("Switzerland"),
            ],
        )
        .unwrap();
        db.insert(
            "organization",
            vec![
                Value::Int(2),
                Value::from("Helvetia Insurance"),
                Value::from("Switzerland"),
            ],
        )
        .unwrap();
        db.insert(
            "address",
            vec![Value::Int(10), Value::from("Zurich"), Value::Int(8001)],
        )
        .unwrap();
        db.insert(
            "address",
            vec![Value::Int(11), Value::from("Geneva"), Value::Int(1201)],
        )
        .unwrap();
        db.insert(
            "address",
            vec![Value::Int(12), Value::from("Zurich"), Value::Int(8002)],
        )
        .unwrap();
        db
    }

    #[test]
    fn builds_over_text_columns_only() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        assert_eq!(idx.shard_count(), 1);
        assert_eq!(idx.indexed_columns(), 3); // org_name, country, city
        assert_eq!(idx.indexed_cells(), 4 + 3); // 2 orgs x 2 cols + 3 addresses x 1 col
        assert!(idx.token_count() > 0);
        assert!(idx.lookup_token("8001").is_empty()); // numeric column not indexed
    }

    #[test]
    fn token_lookup_is_case_insensitive() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        assert_eq!(idx.lookup_token("ZURICH").len(), 2);
        assert_eq!(idx.lookup_token("zurich").len(), 2);
        assert!(idx.lookup_token("basel").is_empty());
    }

    #[test]
    fn phrase_lookup_finds_multi_word_values() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let hits = idx.lookup_phrase(&db, "Credit Suisse");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].table, "organization");
        assert_eq!(hits[0].column, "org_name");
        assert_eq!(hits[0].value, "Credit Suisse");
        // Single word appearing in two different rows of the same column is
        // one hit with row_count 2.
        let hits = idx.lookup_phrase(&db, "Zurich");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].row_count, 2);
    }

    #[test]
    fn phrase_lookup_requires_all_words() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        assert!(idx.lookup_phrase(&db, "Credit Helvetia").is_empty());
        assert!(idx.lookup_phrase(&db, "").is_empty());
    }

    #[test]
    fn columns_containing_deduplicates() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let cols = idx.columns_containing(&db, "Switzerland");
        assert_eq!(
            cols,
            vec![("organization".to_string(), "country".to_string())]
        );
    }

    #[test]
    fn posting_count_tracks_tokens_per_cell_once() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("t")
                .column("c", DataType::Text)
                .build(),
        )
        .unwrap();
        db.insert("t", vec![Value::from("gold gold gold")]).unwrap();
        let idx = InvertedIndex::build(&db);
        // The same token in one cell is recorded once.
        assert_eq!(idx.posting_count(), 1);
    }

    #[test]
    fn stable_shard_is_deterministic_and_in_range() {
        for n in [1usize, 2, 3, 8, 16] {
            for key in ["organization", "address", "trade_order_td", ""] {
                let s = stable_shard(key, n);
                assert!(s < n.max(1));
                assert_eq!(s, stable_shard(key, n), "hash must be stable");
            }
        }
        assert_eq!(stable_shard("anything", 1), 0);
        // Case-insensitive routing matches the catalog's table naming.
        assert_eq!(
            shard_for_table("Trade_Order_TD", 8),
            shard_for_table("trade_order_td", 8)
        );
    }

    #[test]
    fn sharded_build_partitions_every_table_into_exactly_one_shard() {
        let db = db();
        for shards in [2usize, 3, 8] {
            let idx = InvertedIndex::build_sharded(&db, shards);
            assert_eq!(idx.shard_count(), shards);
            // Global sizes are preserved under partitioning.
            let mono = InvertedIndex::build(&db);
            assert_eq!(idx.indexed_cells(), mono.indexed_cells());
            assert_eq!(idx.indexed_columns(), mono.indexed_columns());
            assert_eq!(idx.posting_count(), mono.posting_count());
            assert_eq!(idx.token_count(), mono.token_count());
            // Each table's postings live in exactly the shard its hash names.
            for (i, shard) in idx.shards().iter().enumerate() {
                for postings in shard.postings.values() {
                    for p in postings {
                        assert_eq!(shard_for_table(&p.table, shards), i);
                    }
                }
            }
        }
    }

    #[test]
    fn sharded_lookup_matches_monolithic_lookup() {
        let db = db();
        let mono = InvertedIndex::build(&db);
        for shards in [2usize, 5, 8] {
            let idx = InvertedIndex::build_sharded(&db, shards);
            for phrase in ["Zurich", "Credit Suisse", "Switzerland", "Geneva", ""] {
                assert_eq!(
                    mono.lookup_phrase(&db, phrase),
                    idx.lookup_phrase(&db, phrase),
                    "phrase '{phrase}' diverged at {shards} shards"
                );
                assert_eq!(
                    mono.lookup_token(phrase),
                    idx.lookup_token(phrase),
                    "token '{phrase}' diverged at {shards} shards"
                );
            }
            assert_eq!(
                mono.columns_containing(&db, "Switzerland"),
                idx.columns_containing(&db, "Switzerland")
            );
        }
    }

    #[test]
    fn build_partition_reproduces_the_sharded_build_shard_by_shard() {
        let db = db();
        for shards in [1usize, 2, 3, 8] {
            let idx = InvertedIndex::build_sharded(&db, shards);
            for (i, shard) in idx.shards().iter().enumerate() {
                let rebuilt = IndexShard::build_partition(&db, i, shards);
                assert_eq!(rebuilt.postings, shard.postings, "shard {i}/{shards}");
                assert_eq!(rebuilt.indexed_cells(), shard.indexed_cells());
                assert_eq!(rebuilt.indexed_columns(), shard.indexed_columns());
            }
        }
    }

    #[test]
    fn with_rebuilt_shards_shares_untouched_partitions_and_tracks_changes() {
        let mut db = db();
        let shards = 4;
        let before = InvertedIndex::build_sharded(&db, shards);
        // Mutate one table, then rebuild only its owning partition.
        let owner = shard_for_table("address", shards);
        db.insert(
            "address",
            vec![Value::Int(13), Value::from("Basel"), Value::Int(4001)],
        )
        .unwrap();
        let after = before.with_rebuilt_shards(&db, &[owner]);
        // The derived index answers exactly like a fresh full build.
        let fresh = InvertedIndex::build_sharded(&db, shards);
        for phrase in ["Basel", "Zurich", "Credit Suisse", "Switzerland"] {
            assert_eq!(
                after.lookup_phrase(&db, phrase),
                fresh.lookup_phrase(&db, phrase),
                "phrase '{phrase}'"
            );
        }
        assert_eq!(after.posting_count(), fresh.posting_count());
        assert_eq!(after.token_count(), fresh.token_count());
        // Untouched partitions are shared, not copied; the rebuilt one is new.
        for (i, (old, new)) in before.shards().iter().zip(after.shards()).enumerate() {
            if i == owner {
                assert!(!Arc::ptr_eq(old, new), "owner shard must be rebuilt");
            } else {
                assert!(Arc::ptr_eq(old, new), "shard {i} must be shared");
            }
        }
        // Out-of-range indexes are ignored.
        let noop = after.with_rebuilt_shards(&db, &[99]);
        for (old, new) in after.shards().iter().zip(noop.shards()) {
            assert!(Arc::ptr_eq(old, new));
        }
    }

    /// Builds per-shard side logs reflecting `events` applied on top of
    /// `base`: the canonical ingestion shape (`soda-ingest` drives the same
    /// calls through its `Ingestor`).
    fn logged_index_after(
        base: &Database,
        shards: usize,
        apply: impl Fn(&mut Database, &mut Vec<SideLog>),
    ) -> (Database, InvertedIndex) {
        let idx = InvertedIndex::build_sharded(base, shards);
        let mut db = base.clone();
        let mut logs = vec![SideLog::default(); shards];
        apply(&mut db, &mut logs);
        (db, idx.with_side_logs(logs))
    }

    #[test]
    fn side_log_merged_index_matches_a_full_rebuild() {
        let base = db();
        for shards in [1usize, 2, 4, 8] {
            let (new_db, logged) = logged_index_after(&base, shards, |db, logs| {
                // Append a new address row…
                let start = db.table("address").unwrap().row_count();
                db.insert(
                    "address",
                    vec![Value::Int(13), Value::from("Basel"), Value::Int(4001)],
                )
                .unwrap();
                logs[shard_for_table("address", shards)]
                    .append_rows(db.table("address").unwrap(), start);
                // …and replace the organization table wholesale.
                db.table_mut("organization").unwrap().truncate();
                db.insert(
                    "organization",
                    vec![
                        Value::Int(7),
                        Value::from("Basler Bank"),
                        Value::from("Basel"),
                    ],
                )
                .unwrap();
                logs[shard_for_table("organization", shards)]
                    .replace_table(db.table("organization").unwrap());
            });
            let rebuilt = InvertedIndex::build_sharded(&new_db, shards);
            for phrase in [
                "Basel",
                "Basler Bank",
                "Zurich",
                "Credit Suisse",
                "Switzerland",
                "Geneva",
                "",
            ] {
                assert_eq!(
                    logged.lookup_phrase(&new_db, phrase),
                    rebuilt.lookup_phrase(&new_db, phrase),
                    "phrase '{phrase}' diverged at {shards} shards"
                );
                assert_eq!(
                    logged.lookup_token(phrase),
                    rebuilt.lookup_token(phrase),
                    "token '{phrase}' diverged at {shards} shards"
                );
                assert_eq!(
                    logged.token_frequency(phrase),
                    rebuilt.token_frequency(phrase),
                    "frequency of '{phrase}' diverged at {shards} shards"
                );
            }
            // Probe selection is identical, so the same token is scanned.
            assert_eq!(
                logged.probe("Basler Bank"),
                rebuilt.probe("Basler Bank"),
                "probe choice diverged at {shards} shards"
            );
            // Credit Suisse was replaced away: both views agree it is gone.
            assert!(logged.lookup_phrase(&new_db, "Credit Suisse").is_empty());
            assert!(logged.has_side_logs());
            assert!(!rebuilt.has_side_logs());
        }
    }

    #[test]
    fn rebuilding_a_shard_folds_its_side_log() {
        let base = db();
        let shards = 4;
        let (new_db, logged) = logged_index_after(&base, shards, |db, logs| {
            let start = db.table("address").unwrap().row_count();
            db.insert(
                "address",
                vec![Value::Int(13), Value::from("Basel"), Value::Int(4001)],
            )
            .unwrap();
            logs[shard_for_table("address", shards)]
                .append_rows(db.table("address").unwrap(), start);
        });
        let owner = shard_for_table("address", shards);
        assert!(!logged.side_logs()[owner].is_empty());
        let folded = logged.with_rebuilt_shards(&new_db, &[owner]);
        assert!(folded.side_logs()[owner].is_empty(), "log must be folded");
        assert!(!folded.has_side_logs());
        assert_eq!(
            folded.lookup_phrase(&new_db, "Basel"),
            logged.lookup_phrase(&new_db, "Basel"),
            "folding must not change answers"
        );
        assert_eq!(folded.side_log_postings(), vec![0; shards]);
        assert!(logged.side_log_postings()[owner] > 0);
        assert_eq!(logged.side_log_rows()[owner], 1);
    }

    #[test]
    fn shard_candidate_split_partitions_the_candidate_count() {
        let base = db();
        let shards = 4;
        let (_, logged) = logged_index_after(&base, shards, |db, logs| {
            let start = db.table("address").unwrap().row_count();
            db.insert(
                "address",
                vec![Value::Int(13), Value::from("Basel"), Value::Int(4001)],
            )
            .unwrap();
            logs[shard_for_table("address", shards)]
                .append_rows(db.table("address").unwrap(), start);
        });
        let owner = shard_for_table("address", shards);
        let probe = logged.probe("Basel").unwrap();
        for shard in 0..shards {
            let (frozen, log) = logged.shard_candidate_split(shard, &probe);
            assert_eq!(
                frozen + log,
                logged.shard_candidates(shard, &probe),
                "split must sum to the total in shard {shard}"
            );
        }
        // The appended row is indexed only in the owner's side log.
        let (_, log) = logged.shard_candidate_split(owner, &probe);
        assert!(log > 0, "side-log candidates must be visible in the split");
        for shard in (0..shards).filter(|&s| s != owner) {
            assert_eq!(logged.shard_candidate_split(shard, &probe).1, 0);
        }
    }

    #[test]
    fn patched_side_logs_share_untouched_overlays() {
        let base = db();
        let shards = 4;
        let idx = InvertedIndex::build_sharded(&base, shards);
        let mut log = SideLog::default();
        log.truncate_table("address");
        let patched = idx.with_patched_side_logs(vec![(1, log), (99, SideLog::default())]);
        for (i, (old, new)) in idx.side_logs().iter().zip(patched.side_logs()).enumerate() {
            assert_eq!(Arc::ptr_eq(old, new), i != 1, "log {i}");
        }
        assert_eq!(patched.side_log_masks(), vec![0, 1, 0, 0]);
        assert_eq!(idx.side_log_masks(), vec![0; shards]);
        // Frozen partitions are shared wholesale.
        for (old, new) in idx.shards().iter().zip(patched.shards()) {
            assert!(Arc::ptr_eq(old, new));
        }
    }

    #[test]
    fn probe_picks_the_globally_rarest_token() {
        let db = db();
        let idx = InvertedIndex::build_sharded(&db, 4);
        // "suisse" (1 posting) is rarer than "credit" (1) — first wins ties —
        // and both are rarer than "switzerland" (2).
        let probe = idx.probe("Credit Suisse").unwrap();
        assert_eq!(probe.needle, "credit suisse");
        assert_eq!(probe.token, "credit");
        assert_eq!(idx.token_frequency("switzerland"), 2);
        assert!(idx.probe("no such words anywhere").is_none());
        assert!(idx.probe("").is_none());
    }
}
