//! Inverted index over the text columns of the base data.
//!
//! The paper builds an inverted index over all 472 base tables (text columns
//! only; 9.5 GB, 24 hours to build on their hardware).  Here the index maps
//! each token to postings `(table, column, row)` and offers the phrase lookup
//! the SODA lookup step needs: given a keyword such as "Zurich" or
//! "Credit Suisse", return the columns whose cells contain it, together with
//! the matched cell value — that value becomes the filter literal in the
//! generated SQL.

use std::collections::{BTreeMap, HashMap, HashSet};

use super::tokenizer::tokenize;
use crate::catalog::Database;
use crate::value::Value;

/// A single posting: one row of one text column containing the token.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize)]
pub struct Posting {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// Row index within the table.
    pub row: usize,
}

/// Result of a phrase lookup: a column that contains the phrase, the matched
/// cell value and how many rows matched.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct PhraseHit {
    /// Table name.
    pub table: String,
    /// Column name.
    pub column: String,
    /// The exact cell value that matched (used as the SQL filter literal).
    pub value: String,
    /// Number of rows with this exact value that matched the phrase.
    pub row_count: usize,
}

/// Inverted index over text columns of a [`Database`].
#[derive(Debug, Default, Clone)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<Posting>>,
    /// Number of indexed cells (non-unique records, in the paper's terms).
    indexed_cells: usize,
    /// Number of indexed (table, column) pairs.
    indexed_columns: usize,
}

impl InvertedIndex {
    /// Builds the index over every text column of every table.
    pub fn build(db: &Database) -> Self {
        let mut index = InvertedIndex::default();
        for table in db.tables() {
            let schema = table.schema();
            for (col_idx, col) in schema.columns.iter().enumerate() {
                if col.data_type != crate::value::DataType::Text {
                    continue;
                }
                index.indexed_columns += 1;
                for (row_idx, row) in table.rows().iter().enumerate() {
                    if let Value::Text(text) = &row[col_idx] {
                        index.indexed_cells += 1;
                        let mut seen: HashSet<String> = HashSet::new();
                        for token in tokenize(text) {
                            if seen.insert(token.clone()) {
                                index.postings.entry(token).or_default().push(Posting {
                                    table: schema.name.clone(),
                                    column: col.name.clone(),
                                    row: row_idx,
                                });
                            }
                        }
                    }
                }
            }
        }
        index
    }

    /// Number of distinct tokens.
    pub fn token_count(&self) -> usize {
        self.postings.len()
    }

    /// Number of indexed text cells.
    pub fn indexed_cells(&self) -> usize {
        self.indexed_cells
    }

    /// Number of indexed text columns.
    pub fn indexed_columns(&self) -> usize {
        self.indexed_columns
    }

    /// Total number of postings.
    pub fn posting_count(&self) -> usize {
        self.postings.values().map(|v| v.len()).sum()
    }

    /// Postings for a single token (lower-cased internally).
    pub fn lookup_token(&self, token: &str) -> &[Posting] {
        let key = token.to_lowercase();
        self.postings.get(&key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Phrase lookup: finds columns whose cells contain *all* words of the
    /// phrase (as a case-insensitive substring of the cell text, mirroring the
    /// paper's "Credit Suisse" example which must match the full organisation
    /// name).  Returns one hit per distinct `(table, column, cell value)`.
    pub fn lookup_phrase(&self, db: &Database, phrase: &str) -> Vec<PhraseHit> {
        let words = tokenize(phrase);
        if words.is_empty() {
            return Vec::new();
        }
        // Candidate postings: rows containing the first (rarest would be
        // better, but first is fine at our scale) token.
        let mut rarest = &words[0];
        let mut rarest_len = self.lookup_token(rarest).len();
        for w in &words[1..] {
            let len = self.lookup_token(w).len();
            if len < rarest_len {
                rarest = w;
                rarest_len = len;
            }
        }
        let candidates = self.lookup_token(rarest);
        let needle = words.join(" ");
        let mut hits: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        for posting in candidates {
            let Ok(table) = db.table(&posting.table) else {
                continue;
            };
            let Some(value) = table.value(posting.row, &posting.column) else {
                continue;
            };
            let Value::Text(text) = value else { continue };
            let normalized = tokenize(text).join(" ");
            if normalized.contains(&needle) {
                *hits
                    .entry((posting.table.clone(), posting.column.clone(), text.clone()))
                    .or_default() += 1;
            }
        }
        hits.into_iter()
            .map(|((table, column, value), row_count)| PhraseHit {
                table,
                column,
                value,
                row_count,
            })
            .collect()
    }

    /// Distinct `(table, column)` pairs containing the phrase.
    pub fn columns_containing(&self, db: &Database, phrase: &str) -> Vec<(String, String)> {
        let mut cols: Vec<(String, String)> = self
            .lookup_phrase(db, phrase)
            .into_iter()
            .map(|h| (h.table, h.column))
            .collect();
        cols.sort();
        cols.dedup();
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("organization")
                .column("party_id", DataType::Int)
                .column("org_name", DataType::Text)
                .column("country", DataType::Text)
                .primary_key("party_id")
                .build(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("address")
                .column("address_id", DataType::Int)
                .column("city", DataType::Text)
                .column("zip", DataType::Int)
                .build(),
        )
        .unwrap();
        db.insert(
            "organization",
            vec![
                Value::Int(1),
                Value::from("Credit Suisse"),
                Value::from("Switzerland"),
            ],
        )
        .unwrap();
        db.insert(
            "organization",
            vec![
                Value::Int(2),
                Value::from("Helvetia Insurance"),
                Value::from("Switzerland"),
            ],
        )
        .unwrap();
        db.insert(
            "address",
            vec![Value::Int(10), Value::from("Zurich"), Value::Int(8001)],
        )
        .unwrap();
        db.insert(
            "address",
            vec![Value::Int(11), Value::from("Geneva"), Value::Int(1201)],
        )
        .unwrap();
        db.insert(
            "address",
            vec![Value::Int(12), Value::from("Zurich"), Value::Int(8002)],
        )
        .unwrap();
        db
    }

    #[test]
    fn builds_over_text_columns_only() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        assert_eq!(idx.indexed_columns(), 3); // org_name, country, city
        assert_eq!(idx.indexed_cells(), 4 + 3); // 2 orgs x 2 cols + 3 addresses x 1 col
        assert!(idx.token_count() > 0);
        assert!(idx.lookup_token("8001").is_empty()); // numeric column not indexed
    }

    #[test]
    fn token_lookup_is_case_insensitive() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        assert_eq!(idx.lookup_token("ZURICH").len(), 2);
        assert_eq!(idx.lookup_token("zurich").len(), 2);
        assert!(idx.lookup_token("basel").is_empty());
    }

    #[test]
    fn phrase_lookup_finds_multi_word_values() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let hits = idx.lookup_phrase(&db, "Credit Suisse");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].table, "organization");
        assert_eq!(hits[0].column, "org_name");
        assert_eq!(hits[0].value, "Credit Suisse");
        // Single word appearing in two different rows of the same column is
        // one hit with row_count 2.
        let hits = idx.lookup_phrase(&db, "Zurich");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].row_count, 2);
    }

    #[test]
    fn phrase_lookup_requires_all_words() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        assert!(idx.lookup_phrase(&db, "Credit Helvetia").is_empty());
        assert!(idx.lookup_phrase(&db, "").is_empty());
    }

    #[test]
    fn columns_containing_deduplicates() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let cols = idx.columns_containing(&db, "Switzerland");
        assert_eq!(
            cols,
            vec![("organization".to_string(), "country".to_string())]
        );
    }

    #[test]
    fn posting_count_tracks_tokens_per_cell_once() {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("t")
                .column("c", DataType::Text)
                .build(),
        )
        .unwrap();
        db.insert("t", vec![Value::from("gold gold gold")]).unwrap();
        let idx = InvertedIndex::build(&db);
        // The same token in one cell is recorded once.
        assert_eq!(idx.posting_count(), 1);
    }
}
