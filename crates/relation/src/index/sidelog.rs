//! Per-shard side logs: append-only posting overlays for streaming ingestion.
//!
//! A frozen [`IndexShard`](super::inverted::IndexShard) is immutable by
//! design — freshness normally comes from rebuilding the partition.  A
//! [`SideLog`] is the cheap alternative for row-level change feeds: it
//! indexes *only* the rows an ingestion event touched, in the same
//! `(table, column, row)` posting shape as the frozen shard, and the probe
//! path merges both deterministically
//! ([`IndexShard::probe_phrase_with_log`](super::inverted::IndexShard::probe_phrase_with_log)).
//!
//! Three event shapes map onto the log:
//!
//! * **Append** — the new rows get postings with their absolute row indexes
//!   (which continue after the frozen rows, so frozen and log postings are
//!   row-disjoint by construction).
//! * **Replace** — the table is *masked*: its frozen postings are dead (the
//!   rows they point at were replaced), any earlier log postings for it are
//!   dropped, and the replacement rows are indexed from row 0.
//! * **Truncate** — masked, postings dropped, nothing indexed.
//!
//! Because appended rows extend the table the frozen postings point into,
//! and masked tables hide the frozen postings entirely, the merged view is
//! *posting-for-posting identical* to a shard freshly rebuilt over the
//! updated database — which is what keeps generated SQL byte-identical to a
//! full rebuild (the invariant the shard-invariance tests pin down).
//!
//! Logs are meant to stay small: a compaction layer folds a grown log into
//! a rebuilt partition (see `soda-ingest`'s `CompactionPolicy` and
//! `soda_core::SnapshotHandle::compact`), after which the log is empty
//! again.

use std::collections::{BTreeMap, HashMap, HashSet};

use super::inverted::{PhraseProbe, Posting};
use super::tokenizer::tokenize;
use crate::table::Table;
use crate::value::Value;

/// An append-only posting overlay over one frozen index partition.
///
/// Not internally synchronised: the ingestion layer builds the next
/// generation's logs on the writer thread and publishes them immutably
/// behind `Arc`s (see
/// [`ShardedInvertedIndex::with_side_logs`](super::inverted::ShardedInvertedIndex::with_side_logs)).
#[derive(Debug, Default, Clone)]
pub struct SideLog {
    /// Postings of the ingested rows, keyed by normalized token.
    postings: HashMap<String, Vec<Posting>>,
    /// Lower-cased names of tables whose *frozen* postings are superseded
    /// (replaced or truncated since the partition was built).
    masked: Vec<String>,
    /// Live rows indexed into this log, per (lower-cased) table.
    rows: BTreeMap<String, usize>,
}

impl SideLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when the log carries neither postings nor masks — merging it is
    /// a no-op and compaction has nothing to fold.
    pub fn is_empty(&self) -> bool {
        self.postings.is_empty() && self.masked.is_empty()
    }

    /// Number of postings in the log.
    pub fn posting_count(&self) -> usize {
        self.postings.values().map(Vec::len).sum()
    }

    /// Number of live rows indexed into the log across all tables.
    pub fn row_count(&self) -> usize {
        self.rows.values().sum()
    }

    /// Lower-cased names of the tables whose frozen postings this log
    /// supersedes.
    pub fn masked_tables(&self) -> &[String] {
        &self.masked
    }

    /// True when any table is masked (the probe path can skip per-posting
    /// mask checks otherwise).
    pub fn has_masks(&self) -> bool {
        !self.masked.is_empty()
    }

    /// True when `table`'s frozen postings are superseded by this log.
    pub fn masks(&self, table: &str) -> bool {
        self.masked.iter().any(|m| m.eq_ignore_ascii_case(table))
    }

    /// The distinct tokens present in the log.
    pub fn tokens(&self) -> impl Iterator<Item = &str> {
        self.postings.keys().map(String::as_str)
    }

    /// Log postings of an (already normalized) token.
    pub fn postings_of(&self, token: &str) -> &[Posting] {
        self.postings.get(token).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Candidate log postings of a prepared probe's token — the overlay
    /// counterpart of
    /// [`IndexShard::probe_candidates`](super::inverted::IndexShard::probe_candidates).
    pub fn candidates(&self, probe: &PhraseProbe) -> &[Posting] {
        self.postings_of(&probe.token)
    }

    /// Indexes the rows of `table` from `start_row` to the end (an append
    /// event: the rows before `start_row` are already covered, either by the
    /// frozen partition or by earlier log entries).
    pub fn append_rows(&mut self, table: &Table, start_row: usize) {
        let indexed = self.index_range(table, start_row);
        *self.rows.entry(table.name().to_lowercase()).or_default() += indexed;
    }

    /// Records a wholesale replacement of `table`: masks its frozen
    /// postings, drops any earlier log postings for it and indexes the
    /// replacement rows from row 0.
    pub fn replace_table(&mut self, table: &Table) {
        self.drop_table(table.name());
        self.mask(table.name());
        let indexed = self.index_range(table, 0);
        self.rows.insert(table.name().to_lowercase(), indexed);
    }

    /// Records a truncation of the table named `name`: masks its frozen
    /// postings and drops any earlier log postings for it.
    pub fn truncate_table(&mut self, name: &str) {
        self.drop_table(name);
        self.mask(name);
        self.rows.insert(name.to_lowercase(), 0);
    }

    fn mask(&mut self, name: &str) {
        if !self.masks(name) {
            self.masked.push(name.to_lowercase());
            self.masked.sort_unstable();
        }
    }

    fn drop_table(&mut self, name: &str) {
        self.postings.retain(|_, list| {
            list.retain(|p| !p.table.eq_ignore_ascii_case(name));
            !list.is_empty()
        });
        self.rows.remove(&name.to_lowercase());
    }

    /// Indexes every text cell of `table`'s rows `start_row..` into the log,
    /// mirroring the frozen build's per-cell token dedup.  Returns the
    /// number of rows indexed.
    fn index_range(&mut self, table: &Table, start_row: usize) -> usize {
        let schema = table.schema();
        let rows = table.rows();
        for (col_idx, col) in schema.columns.iter().enumerate() {
            if col.data_type != crate::value::DataType::Text {
                continue;
            }
            for (row_idx, row) in rows.iter().enumerate().skip(start_row) {
                if let Value::Text(text) = &row[col_idx] {
                    let mut seen: HashSet<String> = HashSet::new();
                    for token in tokenize(text) {
                        if seen.insert(token.clone()) {
                            self.postings.entry(token).or_default().push(Posting {
                                table: schema.name.clone(),
                                column: col.name.clone(),
                                row: row_idx,
                            });
                        }
                    }
                }
            }
        }
        rows.len().saturating_sub(start_row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::schema::TableSchema;
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("city")
                .column("id", DataType::Int)
                .column("name", DataType::Text)
                .build(),
        )
        .unwrap();
        db.insert("city", vec![Value::Int(1), Value::from("Zurich")])
            .unwrap();
        db.insert("city", vec![Value::Int(2), Value::from("Geneva")])
            .unwrap();
        db
    }

    #[test]
    fn append_indexes_only_the_new_rows_with_absolute_indexes() {
        let mut db = db();
        let mut log = SideLog::new();
        db.insert("city", vec![Value::Int(3), Value::from("Basel Stadt")])
            .unwrap();
        log.append_rows(db.table("city").unwrap(), 2);
        assert!(!log.is_empty());
        assert_eq!(log.row_count(), 1);
        assert_eq!(log.posting_count(), 2); // "basel", "stadt"
        assert_eq!(log.postings_of("basel")[0].row, 2);
        assert!(log.postings_of("zurich").is_empty());
        assert!(!log.has_masks());
    }

    #[test]
    fn replace_masks_and_reindexes_from_zero() {
        let mut db = db();
        let mut log = SideLog::new();
        // Earlier append…
        db.insert("city", vec![Value::Int(3), Value::from("Basel")])
            .unwrap();
        log.append_rows(db.table("city").unwrap(), 2);
        // …then a wholesale replacement drops it and masks the table.
        db.table_mut("city").unwrap().truncate();
        db.insert("city", vec![Value::Int(9), Value::from("Chur")])
            .unwrap();
        log.replace_table(db.table("city").unwrap());
        assert!(log.masks("city"));
        assert!(log.masks("CITY"));
        assert!(log.postings_of("basel").is_empty());
        assert_eq!(log.postings_of("chur")[0].row, 0);
        assert_eq!(log.row_count(), 1);
    }

    #[test]
    fn truncate_masks_without_indexing() {
        let mut log = SideLog::new();
        log.truncate_table("City");
        assert!(log.masks("city"));
        assert_eq!(log.posting_count(), 0);
        assert_eq!(log.row_count(), 0);
        assert!(!log.is_empty(), "a mask alone still changes probe results");
    }

    #[test]
    fn cells_dedupe_repeated_tokens() {
        let mut db = db();
        db.insert("city", vec![Value::Int(3), Value::from("gold gold gold")])
            .unwrap();
        let mut log = SideLog::new();
        log.append_rows(db.table("city").unwrap(), 2);
        assert_eq!(log.posting_count(), 1);
    }
}
