//! Tokenisation used both by the inverted index over the base data and by the
//! SODA classification index over metadata labels.
//!
//! Tokens are lower-cased and split on any non-alphanumeric character, which
//! mirrors the behaviour the paper needs: "Credit Suisse" indexes as
//! `credit` and `suisse`, `birth_dt` as `birth` and `dt`.

/// Splits `text` into lower-case alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            current.extend(c.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Normalises a multi-word phrase into a single lookup key (lower-case tokens
/// joined by single spaces).
pub fn normalize_phrase(text: &str) -> String {
    tokenize(text).join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_whitespace_and_punctuation() {
        assert_eq!(tokenize("Credit Suisse"), vec!["credit", "suisse"]);
        assert_eq!(tokenize("birth_dt"), vec!["birth", "dt"]);
        assert_eq!(tokenize("fi-contains.sec"), vec!["fi", "contains", "sec"]);
    }

    #[test]
    fn lowercases_and_keeps_digits() {
        assert_eq!(tokenize("Basel II 2010"), vec!["basel", "ii", "2010"]);
    }

    #[test]
    fn empty_and_symbol_only_strings() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("--- ***").is_empty());
    }

    #[test]
    fn normalize_phrase_canonicalises_spacing_and_case() {
        assert_eq!(
            normalize_phrase("  Private   CUSTOMERS "),
            "private customers"
        );
        assert_eq!(
            normalize_phrase("financial_instruments"),
            "financial instruments"
        );
    }

    #[test]
    fn unicode_characters_are_preserved() {
        assert_eq!(tokenize("Zürich"), vec!["zürich"]);
    }
}
