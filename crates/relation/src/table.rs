//! In-memory table storage (row-oriented).

use crate::error::{RelationError, Result};
use crate::schema::TableSchema;
use crate::value::Value;

/// A row of values; the order matches the table schema.
pub type Row = Vec<Value>;

/// An in-memory table: a schema plus rows.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Self {
            schema,
            rows: Vec::new(),
        }
    }

    /// Table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// All rows.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Inserts one row, validating arity, types and NULLability.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(RelationError::SchemaViolation(format!(
                "table {} expects {} values, got {}",
                self.schema.name,
                self.schema.arity(),
                row.len()
            )));
        }
        for (value, col) in row.iter().zip(&self.schema.columns) {
            if value.is_null() && !col.nullable {
                return Err(RelationError::SchemaViolation(format!(
                    "column {}.{} is not nullable",
                    self.schema.name, col.name
                )));
            }
            if !value.conforms_to(col.data_type) {
                return Err(RelationError::SchemaViolation(format!(
                    "column {}.{} expects {}, got {value:?}",
                    self.schema.name, col.name, col.data_type
                )));
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Inserts many rows (stops at the first invalid row).
    pub fn insert_all<I: IntoIterator<Item = Row>>(&mut self, rows: I) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Removes every row, keeping the schema.  Used by the warehouse delta
    /// layer to implement full-table replacement.
    pub fn truncate(&mut self) {
        self.rows.clear();
    }

    /// Value of `column` in row `row_index`.
    pub fn value(&self, row_index: usize, column: &str) -> Option<&Value> {
        let col = self.schema.column_index(column)?;
        self.rows.get(row_index).map(|r| &r[col])
    }

    /// Iterates over all values of a column.
    pub fn column_values<'a>(&'a self, column: &str) -> Option<impl Iterator<Item = &'a Value>> {
        let col = self.schema.column_index(column)?;
        Some(self.rows.iter().map(move |r| &r[col]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Date};

    fn table() -> Table {
        Table::new(
            TableSchema::builder("individual")
                .column("id", DataType::Int)
                .column("given_name", DataType::Text)
                .nullable_column("salary", DataType::Float)
                .column("birth_dt", DataType::Date)
                .primary_key("id")
                .build(),
        )
    }

    fn row(id: i64, name: &str) -> Row {
        vec![
            Value::Int(id),
            Value::from(name),
            Value::Float(100_000.0),
            Value::Date(Date::new(1981, 4, 23)),
        ]
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = table();
        t.insert(row(1, "Sara")).unwrap();
        t.insert(row(2, "Peter")).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(0, "given_name"), Some(&Value::from("Sara")));
        assert_eq!(t.value(1, "id"), Some(&Value::Int(2)));
        assert_eq!(t.value(5, "id"), None);
        assert_eq!(t.value(0, "missing"), None);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut t = table();
        let err = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, RelationError::SchemaViolation(_)));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut t = table();
        let mut r = row(1, "Sara");
        r[0] = Value::from("not an int");
        assert!(t.insert(r).is_err());
    }

    #[test]
    fn null_rules_are_enforced() {
        let mut t = table();
        let mut r = row(1, "Sara");
        r[2] = Value::Null; // nullable salary
        t.insert(r).unwrap();
        let mut r2 = row(2, "Peter");
        r2[1] = Value::Null; // non-nullable name
        assert!(t.insert(r2).is_err());
    }

    #[test]
    fn int_accepted_in_float_column() {
        let mut t = table();
        let mut r = row(1, "Sara");
        r[2] = Value::Int(90_000);
        t.insert(r).unwrap();
    }

    #[test]
    fn insert_all_counts_rows() {
        let mut t = table();
        let n = t.insert_all((1..=5).map(|i| row(i, "x"))).unwrap();
        assert_eq!(n, 5);
        assert_eq!(t.row_count(), 5);
    }

    #[test]
    fn column_values_iterates_in_row_order() {
        let mut t = table();
        t.insert(row(1, "a")).unwrap();
        t.insert(row(2, "b")).unwrap();
        let names: Vec<_> = t
            .column_values("given_name")
            .unwrap()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(t.column_values("missing").is_none());
    }
}
