//! In-memory table storage (row-oriented, copy-on-write).
//!
//! Rows live in two places: a list of immutable, `Arc`-shared **segments**
//! (frozen, in insertion order) and a small mutable **tail** that new
//! inserts land in.  The tail is sealed into a fresh segment once it
//! reaches [`Table::SEGMENT_ROWS`], so cloning a table — which the
//! copy-on-write [`Database`](crate::Database) does for every table an
//! ingest mutates — bumps one `Arc` per frozen segment and deep-copies at
//! most one segment's worth of tail rows, regardless of how large the
//! table has grown.  Reads go through the segment-aware [`Rows`] view,
//! which iterates frozen and tail rows in insertion order.

use std::ops::Index;
use std::sync::Arc;

use crate::error::{RelationError, Result};
use crate::schema::TableSchema;
use crate::value::Value;

/// A row of values; the order matches the table schema.
pub type Row = Vec<Value>;

/// An in-memory table: a schema plus rows stored as immutable shared
/// segments and a small mutable tail.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct Table {
    schema: TableSchema,
    /// Frozen row segments, oldest first; shared structurally between
    /// clones (`Arc` bump, no row copy).
    segments: Vec<Arc<[Row]>>,
    /// Rows held by the frozen segments (cached sum).
    frozen: usize,
    /// Mutable tail new inserts land in; sealed into a segment at
    /// [`Self::SEGMENT_ROWS`].
    tail: Vec<Row>,
}

impl Table {
    /// Rows per frozen segment — the most a clone of a mutated table ever
    /// deep-copies.  Small enough that copy-on-write stays O(delta), large
    /// enough that segment hopping is invisible to scans.
    pub const SEGMENT_ROWS: usize = 1024;

    /// Creates an empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Self {
            schema,
            segments: Vec::new(),
            frozen: 0,
            tail: Vec::new(),
        }
    }

    /// Table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.frozen + self.tail.len()
    }

    /// All rows, in insertion order, as a segment-aware view: iterable,
    /// indexable and comparable like the row slice it replaced.
    pub fn rows(&self) -> Rows<'_> {
        Rows {
            segments: &self.segments,
            tail: &self.tail,
            len: self.row_count(),
        }
    }

    /// Number of frozen (structurally shared) segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Rows currently in the mutable tail — what a clone of this table
    /// would deep-copy.
    pub fn tail_rows(&self) -> usize {
        self.tail.len()
    }

    /// True when `self` and `other` share every frozen segment allocation
    /// — the structural-sharing invariant copy-on-write clones preserve
    /// for untouched tables.
    pub fn shares_segments_with(&self, other: &Table) -> bool {
        self.segments.len() == other.segments.len()
            && self
                .segments
                .iter()
                .zip(&other.segments)
                .all(|(a, b)| Arc::ptr_eq(a, b))
    }

    /// Inserts one row, validating arity, types and NULLability.
    pub fn insert(&mut self, row: Row) -> Result<()> {
        if row.len() != self.schema.arity() {
            return Err(RelationError::SchemaViolation(format!(
                "table {} expects {} values, got {}",
                self.schema.name,
                self.schema.arity(),
                row.len()
            )));
        }
        for (value, col) in row.iter().zip(&self.schema.columns) {
            if value.is_null() && !col.nullable {
                return Err(RelationError::SchemaViolation(format!(
                    "column {}.{} is not nullable",
                    self.schema.name, col.name
                )));
            }
            if !value.conforms_to(col.data_type) {
                return Err(RelationError::SchemaViolation(format!(
                    "column {}.{} expects {}, got {value:?}",
                    self.schema.name, col.name, col.data_type
                )));
            }
        }
        self.tail.push(row);
        if self.tail.len() >= Self::SEGMENT_ROWS {
            self.seal_tail();
        }
        Ok(())
    }

    /// Inserts many rows (stops at the first invalid row).
    pub fn insert_all<I: IntoIterator<Item = Row>>(&mut self, rows: I) -> Result<usize> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Removes every row, keeping the schema.  Used by the warehouse delta
    /// layer to implement full-table replacement — the old segments are
    /// only released, never copied (clones holding them keep serving).
    pub fn truncate(&mut self) {
        self.segments.clear();
        self.frozen = 0;
        self.tail.clear();
    }

    /// Freezes the current tail into an immutable shared segment.  Only
    /// ever called at exactly [`Self::SEGMENT_ROWS`] tail rows, so every
    /// frozen segment has that fixed length — the invariant that makes
    /// [`Rows::get`] a constant-time div/mod instead of a segment walk.
    fn seal_tail(&mut self) {
        debug_assert_eq!(self.tail.len(), Self::SEGMENT_ROWS);
        let segment: Arc<[Row]> = std::mem::take(&mut self.tail).into();
        self.frozen += segment.len();
        self.segments.push(segment);
    }

    /// Value of `column` in row `row_index`.
    pub fn value(&self, row_index: usize, column: &str) -> Option<&Value> {
        let col = self.schema.column_index(column)?;
        self.rows().get(row_index).map(|r| &r[col])
    }

    /// Iterates over all values of a column.
    pub fn column_values<'a>(&'a self, column: &str) -> Option<impl Iterator<Item = &'a Value>> {
        let col = self.schema.column_index(column)?;
        Some(self.rows().iter().map(move |r| &r[col]))
    }
}

/// A borrowed, segment-aware view over a table's rows in insertion order.
///
/// Behaves like the `&[Row]` it replaced: [`iter`](Self::iter),
/// [`len`](Self::len), `rows[i]` indexing, equality and
/// [`to_vec`](Self::to_vec) all work unchanged at the call sites.
/// Positioned iteration ([`iter_from`](Self::iter_from), or
/// `iter().skip(n)` — the iterator's `nth` hops whole segments) is
/// O(segments + rows read), which keeps side-log appends proportional to
/// the new rows, not the table.
#[derive(Clone, Copy)]
pub struct Rows<'a> {
    segments: &'a [Arc<[Row]>],
    tail: &'a [Row],
    len: usize,
}

impl<'a> Rows<'a> {
    /// Number of rows in the view.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The row at `index`, if any.  Constant time: every frozen segment
    /// holds exactly [`Table::SEGMENT_ROWS`] rows (sealed at the boundary,
    /// never resized), so the owning segment is a div/mod away — the probe
    /// path resolves candidate postings to cell values through here.
    pub fn get(&self, index: usize) -> Option<&'a Row> {
        let frozen = self.segments.len() * Table::SEGMENT_ROWS;
        if index < frozen {
            Some(&self.segments[index / Table::SEGMENT_ROWS][index % Table::SEGMENT_ROWS])
        } else {
            self.tail.get(index - frozen)
        }
    }

    /// Iterates every row in insertion order.
    pub fn iter(&self) -> RowsIter<'a> {
        RowsIter {
            front: [].iter(),
            segments: self.segments.iter(),
            tail: Some(self.tail),
            remaining: self.len,
        }
    }

    /// Iterates rows `start..`, skipping whole segments to get there —
    /// O(segments) positioning instead of O(start).
    pub fn iter_from(&self, start: usize) -> RowsIter<'a> {
        let mut iter = self.iter();
        if start > 0 {
            iter.nth(start - 1);
        }
        iter
    }

    /// Deep-copies the view into an owned row vector (the adapter for call
    /// sites that genuinely need contiguous owned rows, e.g. SQL binding).
    pub fn to_vec(&self) -> Vec<Row> {
        let mut rows = Vec::with_capacity(self.len);
        rows.extend(self.iter().cloned());
        rows
    }
}

impl Index<usize> for Rows<'_> {
    type Output = Row;

    fn index(&self, index: usize) -> &Row {
        self.get(index)
            .unwrap_or_else(|| panic!("row index {index} out of bounds (len {})", self.len))
    }
}

impl<'a> IntoIterator for Rows<'a> {
    type Item = &'a Row;
    type IntoIter = RowsIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl<'a> IntoIterator for &Rows<'a> {
    type Item = &'a Row;
    type IntoIter = RowsIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl PartialEq for Rows<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for Rows<'_> {}

impl PartialEq<[Row]> for Rows<'_> {
    fn eq(&self, other: &[Row]) -> bool {
        self.len == other.len() && self.iter().eq(other.iter())
    }
}

impl PartialEq<Vec<Row>> for Rows<'_> {
    fn eq(&self, other: &Vec<Row>) -> bool {
        self == other.as_slice()
    }
}

impl std::fmt::Debug for Rows<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

/// Iterator over a [`Rows`] view: insertion order, exact-sized, with a
/// segment-hopping `nth` so `skip(n)` never touches the skipped rows.
pub struct RowsIter<'a> {
    /// The chunk currently being drained.
    front: std::slice::Iter<'a, Row>,
    /// Frozen segments not yet started.
    segments: std::slice::Iter<'a, Arc<[Row]>>,
    /// The mutable tail, consumed after the last frozen segment.
    tail: Option<&'a [Row]>,
    remaining: usize,
}

impl<'a> RowsIter<'a> {
    /// Moves `front` to the next chunk; false when exhausted.
    fn advance_chunk(&mut self) -> bool {
        if let Some(segment) = self.segments.next() {
            self.front = segment.iter();
            true
        } else if let Some(tail) = self.tail.take() {
            self.front = tail.iter();
            true
        } else {
            false
        }
    }
}

impl<'a> Iterator for RowsIter<'a> {
    type Item = &'a Row;

    fn next(&mut self) -> Option<&'a Row> {
        loop {
            if let Some(row) = self.front.next() {
                self.remaining -= 1;
                return Some(row);
            }
            if !self.advance_chunk() {
                return None;
            }
        }
    }

    fn nth(&mut self, mut n: usize) -> Option<&'a Row> {
        loop {
            let chunk = self.front.len();
            if n < chunk {
                self.remaining -= n + 1;
                return self.front.nth(n);
            }
            n -= chunk;
            self.remaining -= chunk;
            self.front = [].iter();
            if !self.advance_chunk() {
                return None;
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RowsIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Date};

    fn table() -> Table {
        Table::new(
            TableSchema::builder("individual")
                .column("id", DataType::Int)
                .column("given_name", DataType::Text)
                .nullable_column("salary", DataType::Float)
                .column("birth_dt", DataType::Date)
                .primary_key("id")
                .build(),
        )
    }

    fn row(id: i64, name: &str) -> Row {
        vec![
            Value::Int(id),
            Value::from(name),
            Value::Float(100_000.0),
            Value::Date(Date::new(1981, 4, 23)),
        ]
    }

    /// A two-column table whose rows are cheap to generate in bulk —
    /// segment tests need more than [`Table::SEGMENT_ROWS`] of them.
    fn wide() -> Table {
        Table::new(
            TableSchema::builder("t")
                .column("id", DataType::Int)
                .column("label", DataType::Text)
                .build(),
        )
    }

    fn wide_row(i: usize) -> Row {
        vec![Value::Int(i as i64), Value::from(format!("label{i}"))]
    }

    #[test]
    fn insert_and_read_back() {
        let mut t = table();
        t.insert(row(1, "Sara")).unwrap();
        t.insert(row(2, "Peter")).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(0, "given_name"), Some(&Value::from("Sara")));
        assert_eq!(t.value(1, "id"), Some(&Value::Int(2)));
        assert_eq!(t.value(5, "id"), None);
        assert_eq!(t.value(0, "missing"), None);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut t = table();
        let err = t.insert(vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, RelationError::SchemaViolation(_)));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut t = table();
        let mut r = row(1, "Sara");
        r[0] = Value::from("not an int");
        assert!(t.insert(r).is_err());
    }

    #[test]
    fn null_rules_are_enforced() {
        let mut t = table();
        let mut r = row(1, "Sara");
        r[2] = Value::Null; // nullable salary
        t.insert(r).unwrap();
        let mut r2 = row(2, "Peter");
        r2[1] = Value::Null; // non-nullable name
        assert!(t.insert(r2).is_err());
    }

    #[test]
    fn int_accepted_in_float_column() {
        let mut t = table();
        let mut r = row(1, "Sara");
        r[2] = Value::Int(90_000);
        t.insert(r).unwrap();
    }

    #[test]
    fn insert_all_counts_rows() {
        let mut t = table();
        let n = t.insert_all((1..=5).map(|i| row(i, "x"))).unwrap();
        assert_eq!(n, 5);
        assert_eq!(t.row_count(), 5);
    }

    #[test]
    fn column_values_iterates_in_row_order() {
        let mut t = table();
        t.insert(row(1, "a")).unwrap();
        t.insert(row(2, "b")).unwrap();
        let names: Vec<_> = t
            .column_values("given_name")
            .unwrap()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(t.column_values("missing").is_none());
    }

    #[test]
    fn tail_seals_into_segments_at_the_boundary() {
        let mut t = wide();
        let n = Table::SEGMENT_ROWS * 2 + 7;
        t.insert_all((0..n).map(wide_row)).unwrap();
        assert_eq!(t.row_count(), n);
        assert_eq!(t.segment_count(), 2);
        assert_eq!(t.tail_rows(), 7);
        // Order is stable across the seams, by iterator and by index.
        for (i, r) in t.rows().iter().enumerate() {
            assert_eq!(r[0], Value::Int(i as i64), "iterator order at {i}");
        }
        for i in [0, 1023, 1024, 2047, 2048, n - 1] {
            assert_eq!(t.rows()[i][0], Value::Int(i as i64), "index order at {i}");
        }
        assert!(t.rows().get(n).is_none());
        assert_eq!(t.rows().iter().len(), n);
    }

    #[test]
    fn clone_shares_frozen_segments_and_copies_only_the_tail() {
        let mut t = wide();
        t.insert_all((0..Table::SEGMENT_ROWS + 3).map(wide_row))
            .unwrap();
        let copy = t.clone();
        assert!(copy.shares_segments_with(&t));
        assert_eq!(copy.rows(), t.rows());
        // Mutating the copy's tail leaves the original untouched…
        let mut copy = copy;
        copy.insert(wide_row(9_999)).unwrap();
        assert_eq!(t.row_count(), Table::SEGMENT_ROWS + 3);
        assert_eq!(copy.row_count(), Table::SEGMENT_ROWS + 4);
        // …and the frozen segment is still the same allocation.
        assert!(copy.shares_segments_with(&t));
    }

    #[test]
    fn truncate_drops_segments_without_touching_clones() {
        let mut t = wide();
        t.insert_all((0..Table::SEGMENT_ROWS + 1).map(wide_row))
            .unwrap();
        let kept = t.clone();
        t.truncate();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.segment_count(), 0);
        assert!(t.rows().is_empty());
        // The clone keeps serving the pre-truncate rows.
        assert_eq!(kept.row_count(), Table::SEGMENT_ROWS + 1);
        assert_eq!(kept.rows()[0], wide_row(0));
        // Replacement after truncate starts a fresh tail.
        t.insert(wide_row(42)).unwrap();
        assert_eq!(t.rows().to_vec(), vec![wide_row(42)]);
    }

    #[test]
    fn iter_from_skips_whole_segments() {
        let mut t = wide();
        let n = Table::SEGMENT_ROWS * 3 + 5;
        t.insert_all((0..n).map(wide_row)).unwrap();
        for start in [0, 1, 1023, 1024, 2048, n - 1, n] {
            let got: Vec<i64> = t
                .rows()
                .iter_from(start)
                .map(|r| match r[0] {
                    Value::Int(i) => i,
                    _ => unreachable!(),
                })
                .collect();
            let expected: Vec<i64> = (start..n).map(|i| i as i64).collect();
            assert_eq!(got, expected, "iter_from({start})");
        }
        // `skip` positions through `nth`, which hops segments the same way.
        let via_skip: Vec<&Row> = t.rows().iter().skip(2_500).collect();
        assert_eq!(via_skip.len(), n - 2_500);
        assert_eq!(via_skip[0][0], Value::Int(2_500));
    }

    #[test]
    fn rows_view_compares_like_a_slice() {
        let mut a = wide();
        let mut b = wide();
        a.insert_all((0..3).map(wide_row)).unwrap();
        b.insert_all((0..3).map(wide_row)).unwrap();
        assert_eq!(a.rows(), b.rows());
        assert_eq!(a.rows(), (0..3).map(wide_row).collect::<Vec<_>>());
        b.insert(wide_row(3)).unwrap();
        assert_ne!(a.rows(), b.rows());
        assert_eq!(
            format!("{:?}", a.rows()),
            format!("{:?}", a.rows().to_vec())
        );
    }
}
